//! # oml — Object Migration for non-monolithic distributed applications
//!
//! A full reproduction of *Object Migration in Non-Monolithic Distributed
//! Applications* (O. Ciupke, D. Kottmann, H.-D. Walter; ICDCS 1996).
//!
//! Non-monolithic applications are systems assembled from autonomously
//! developed components that share mutable objects. The paper shows that
//! conventional object-migration support — unconditional `move()` and
//! transitive `attach()` — degrades such systems badly, and proposes two
//! remedies: **transient placement** (migrate-if-unlocked with an explicit
//! `end()` release) and **alliance-scoped (A-transitive) attachment**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`des`] — deterministic discrete-event simulation engine and statistics,
//! * [`net`] — topologies and message latency models,
//! * [`core`] — migration policies, attachment graphs, alliances, cost model,
//! * [`sim`] — the paper's §4 simulation model,
//! * [`runtime`] — a real threads-and-channels distributed object runtime,
//! * [`workload`] — scenario/workload generators for every figure,
//! * [`experiments`] — the harness that regenerates every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use oml::prelude::*;
//!
//! // Fig. 8 setup at one sweep point, run with the placement policy.
//! let scenario = ScenarioConfig::fig8(30.0);
//! let outcome = run_scenario(
//!     &scenario,
//!     PolicyKind::TransientPlacement,
//!     AttachmentMode::Unrestricted,
//!     StoppingRule::quick(),
//!     42,
//! );
//! assert!(outcome.metrics.comm_time_per_call() > 0.0);
//! ```

pub use oml_core as core;
pub use oml_des as des;
pub use oml_experiments as experiments;
pub use oml_net as net;
pub use oml_runtime as runtime;
pub use oml_sim as sim;
pub use oml_workload as workload;

/// The most common imports in one line.
pub mod prelude {
    pub use oml_core::attach::AttachmentMode;
    pub use oml_core::policy::PolicyKind;
    pub use oml_des::stats::StoppingRule;
    pub use oml_des::{SimRng, SimTime};
    pub use oml_sim::metrics::SimMetrics;
    pub use oml_workload::run_scenario;
    pub use oml_workload::scenario::ScenarioConfig;
}
