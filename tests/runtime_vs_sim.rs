//! Cross-substrate consistency: the simulator and the real runtime enforce
//! the same policy semantics, because they share the same
//! `oml_core::policy::MovePolicy` objects.

use oml_core::attach::AttachmentMode;
use oml_core::ids::NodeId;
use oml_core::policy::PolicyKind;
use oml_net::{LatencyModel, Network, Topology};
use oml_runtime::{Cluster, MobileObject};
use oml_sim::{BlockParams, SimulationBuilder};

struct Blob;
impl MobileObject for Blob {
    fn type_tag(&self) -> &'static str {
        "blob"
    }
    fn invoke(&mut self, _m: &str, _p: &[u8]) -> Result<Vec<u8>, String> {
        Ok(Vec::new())
    }
    fn linearize(&self) -> Vec<u8> {
        Vec::new()
    }
}

fn blob_cluster(policy: PolicyKind, mode: AttachmentMode, nodes: u32) -> Cluster {
    let cluster = Cluster::builder()
        .nodes(nodes)
        .policy(policy)
        .attachment_mode(mode)
        .build();
    cluster.register_type("blob", |_| Box::new(Blob));
    cluster
}

/// Placement: in both substrates the second concurrent mover is denied and
/// the object stays with the first.
#[test]
fn placement_denial_agrees_across_substrates() {
    // runtime
    let cluster = blob_cluster(
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
        3,
    );
    let obj = cluster.create(NodeId::new(0), Box::new(Blob)).unwrap();
    let first = cluster.move_block(obj, NodeId::new(1)).unwrap();
    let second = cluster.move_block(obj, NodeId::new(2)).unwrap();
    assert!(first.granted() && !second.granted());
    assert!(cluster.is_resident(obj, NodeId::new(1)));
    drop((first, second));
    cluster.shutdown();

    // simulator: under heavy contention the placement policy must deny a
    // substantial share of moves while conventional migration denies none
    let run = |policy: PolicyKind| {
        let mut b = SimulationBuilder::new(Network::paper(3))
            .policy(policy)
            .warmup(100.0)
            .seed(5);
        let s = b.add_object(NodeId::new(2));
        for i in 0..3 {
            b.add_client(NodeId::new(i), vec![s], BlockParams::paper(2.0));
        }
        let mut sim = b.build();
        sim.run_for(20_000.0).metrics
    };
    let placement = run(PolicyKind::TransientPlacement);
    assert!(placement.moves_denied > 0, "contention must cause denials");
    let conventional = run(PolicyKind::ConventionalMigration);
    assert_eq!(conventional.moves_denied, 0);
    assert!(conventional.migrations > placement.migrations);
}

/// Conventional migration: in both substrates the second mover steals the
/// object.
#[test]
fn conventional_steal_agrees_across_substrates() {
    let cluster = blob_cluster(
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
        3,
    );
    let obj = cluster.create(NodeId::new(0), Box::new(Blob)).unwrap();
    let first = cluster.move_block(obj, NodeId::new(1)).unwrap();
    let second = cluster.move_block(obj, NodeId::new(2)).unwrap();
    assert!(first.granted() && second.granted());
    assert!(
        cluster.is_resident(obj, NodeId::new(2)),
        "stolen by the second mover"
    );
    drop((first, second));
    cluster.shutdown();
}

/// A-transitive closures select the same members in both substrates.
#[test]
fn a_transitive_closures_agree() {
    // runtime
    let cluster = blob_cluster(
        PolicyKind::ConventionalMigration,
        AttachmentMode::ATransitive,
        2,
    );
    let front = cluster.create(NodeId::new(0), Box::new(Blob)).unwrap();
    let a_member = cluster.create(NodeId::new(0), Box::new(Blob)).unwrap();
    let b_member = cluster.create(NodeId::new(0), Box::new(Blob)).unwrap();
    let a = cluster.create_alliance("a");
    let b = cluster.create_alliance("b");
    for o in [front, a_member] {
        cluster.join_alliance(a, o).unwrap();
    }
    for o in [front, b_member] {
        cluster.join_alliance(b, o).unwrap();
    }
    cluster.attach(a_member, front, Some(a)).unwrap();
    cluster.attach(b_member, front, Some(b)).unwrap();
    let g = cluster
        .move_block_in(front, NodeId::new(1), Some(a))
        .unwrap();
    assert!(g.granted());
    drop(g);
    assert!(cluster.is_resident(front, NodeId::new(1)));
    assert!(cluster.is_resident(a_member, NodeId::new(1)));
    assert!(cluster.is_resident(b_member, NodeId::new(0)));
    cluster.shutdown();

    // simulator: the same structure moves the same closure
    let net = Network::new(
        Topology::FullMesh { nodes: 2 },
        LatencyModel::Deterministic { value: 1.0 },
    );
    let mut builder = SimulationBuilder::new(net)
        .policy(PolicyKind::ConventionalMigration)
        .attachment_mode(AttachmentMode::ATransitive)
        .warmup(0.0)
        .seed(6);
    let front_s = builder.add_object(NodeId::new(1));
    let a_s = builder.add_object(NodeId::new(1));
    let b_s = builder.add_object(NodeId::new(1));
    let ally_a = builder.create_alliance("a");
    let ally_b = builder.create_alliance("b");
    for o in [front_s, a_s] {
        builder.join_alliance(ally_a, o);
    }
    for o in [front_s, b_s] {
        builder.join_alliance(ally_b, o);
    }
    builder.attach(a_s, front_s, Some(ally_a)).unwrap();
    builder.attach(b_s, front_s, Some(ally_b)).unwrap();
    builder.set_move_context(front_s, Some(ally_a));
    builder.add_client(
        NodeId::new(0),
        vec![front_s],
        BlockParams {
            mean_calls: 0.0,
            mean_think: 0.0,
            mean_gap: 1e12,
        },
    );
    let mut sim = builder.build();
    let _ = sim.run_for(1e5);
    assert_eq!(sim.object_node(front_s), Some(NodeId::new(0)));
    assert_eq!(sim.object_node(a_s), Some(NodeId::new(0)));
    assert_eq!(sim.object_node(b_s), Some(NodeId::new(1)));
}

/// Fixing is honoured identically: fixed objects never move, in either
/// substrate.
#[test]
fn fixing_agrees_across_substrates() {
    let cluster = blob_cluster(
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
        2,
    );
    let obj = cluster.create(NodeId::new(0), Box::new(Blob)).unwrap();
    cluster.fix(obj);
    assert!(!cluster.move_block(obj, NodeId::new(1)).unwrap().granted());
    cluster.shutdown();

    let net = Network::new(
        Topology::FullMesh { nodes: 2 },
        LatencyModel::Deterministic { value: 1.0 },
    );
    let mut b = SimulationBuilder::new(net)
        .policy(PolicyKind::ConventionalMigration)
        .warmup(0.0)
        .seed(7);
    let s = b.add_object(NodeId::new(1));
    b.fix_object(s);
    b.add_client(
        NodeId::new(0),
        vec![s],
        BlockParams {
            mean_calls: 0.0,
            mean_think: 0.0,
            mean_gap: 1.0,
        },
    );
    let mut sim = b.build();
    let out = sim.run_for(500.0);
    assert_eq!(out.metrics.migrations, 0);
    assert_eq!(sim.object_node(s), Some(NodeId::new(1)));
}
