//! Integration tests asserting the paper's qualitative claims end-to-end.
//!
//! Each test runs the actual experiment pipeline (workload → simulator →
//! metrics) at reduced precision and checks the *shape* the paper reports:
//! who wins, in which regime, and by how much — not absolute values.

use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_workload::{run_scenario, ScenarioConfig};

fn smoke() -> StoppingRule {
    StoppingRule {
        relative_precision: 0.03,
        confidence: 0.95,
        min_batches: 10,
        max_samples: 60_000,
    }
}

fn comm(config: &ScenarioConfig, policy: PolicyKind, mode: AttachmentMode, seed: u64) -> f64 {
    run_scenario(config, policy, mode, smoke(), seed)
        .metrics
        .comm_time_per_call()
}

/// §4.2.1 sanity anchor: the sedentary mean call time is 4/3 when D = C =
/// S1 = 3 ("it consists of a call and a result message and the chance that
/// the callee is local … is 1/C = 1/3").
#[test]
fn sedentary_mean_is_four_thirds() {
    let c = comm(
        &ScenarioConfig::fig8(30.0),
        PolicyKind::Sedentary,
        AttachmentMode::Unrestricted,
        1,
    );
    assert!((c - 4.0 / 3.0).abs() < 0.06, "got {c}");
}

/// Fig. 8: migration improves over sedentary at low concurrency, and
/// placement dominates migration once moves conflict.
#[test]
fn fig8_orderings() {
    // low concurrency (t_m = 100): both migration policies beat sedentary
    let low = ScenarioConfig::fig8(100.0);
    let sed = comm(&low, PolicyKind::Sedentary, AttachmentMode::Unrestricted, 2);
    let mig = comm(
        &low,
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
        3,
    );
    let plc = comm(
        &low,
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
        4,
    );
    assert!(mig < sed, "migration {mig} vs sedentary {sed}");
    assert!(plc < sed, "placement {plc} vs sedentary {sed}");

    // high concurrency (t_m = 5): placement clearly beats migration
    let high = ScenarioConfig::fig8(5.0);
    let mig = comm(
        &high,
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
        5,
    );
    let plc = comm(
        &high,
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
        6,
    );
    assert!(
        plc < mig * 0.9,
        "under contention placement ({plc}) must beat migration ({mig})"
    );
}

/// Fig. 12: conventional migration crosses the sedentary baseline early;
/// placement is still winning at the same client count, and the break-even
/// ordering (migration's << placement's) holds.
#[test]
fn fig12_break_even_ordering() {
    let at = |c: u32, policy: PolicyKind, seed: u64| {
        comm(
            &ScenarioConfig::fig12(c),
            policy,
            AttachmentMode::Unrestricted,
            seed,
        )
    };
    let sed = at(12, PolicyKind::Sedentary, 7);
    let mig12 = at(12, PolicyKind::ConventionalMigration, 8);
    let plc12 = at(12, PolicyKind::TransientPlacement, 9);
    // by 12 clients conventional migration is already worse than sedentary…
    assert!(mig12 > sed, "migration {mig12} vs sedentary {sed}");
    // …while placement is still clearly better
    assert!(plc12 < sed, "placement {plc12} vs sedentary {sed}");

    // migration degrades roughly linearly: doubling clients adds real cost
    let mig6 = at(6, PolicyKind::ConventionalMigration, 10);
    assert!(mig12 > mig6 * 1.3, "{mig6} → {mig12}");
}

/// Fig. 14: the dynamic strategies differ from conservative placement only
/// marginally (the paper: "only minor performance gains").
#[test]
fn fig14_dynamic_gains_are_marginal() {
    let config = ScenarioConfig::fig14(12);
    let plc = comm(
        &config,
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
        11,
    );
    let cmp = comm(
        &config,
        PolicyKind::CompareNodes,
        AttachmentMode::Unrestricted,
        12,
    );
    let rei = comm(
        &config,
        PolicyKind::CompareAndReinstantiate,
        AttachmentMode::Unrestricted,
        13,
    );
    for (label, v) in [("compare-nodes", cmp), ("reinstantiate", rei)] {
        let rel = (v - plc).abs() / plc;
        assert!(
            rel < 0.25,
            "{label} ({v}) should stay within 25% of placement ({plc})"
        );
    }
}

/// Fig. 16: the five-curve ordering under overlapping working sets.
#[test]
fn fig16_attachment_ordering() {
    let config = ScenarioConfig::fig16(8);
    let sed = comm(
        &config,
        PolicyKind::Sedentary,
        AttachmentMode::Unrestricted,
        14,
    );
    let mig_unr = comm(
        &config,
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
        15,
    );
    let mig_atr = comm(
        &config,
        PolicyKind::ConventionalMigration,
        AttachmentMode::ATransitive,
        16,
    );
    let plc_unr = comm(
        &config,
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
        17,
    );
    let plc_atr = comm(
        &config,
        PolicyKind::TransientPlacement,
        AttachmentMode::ATransitive,
        18,
    );

    // "applying conventional migration together with unrestricted
    // attachments has a devastating effect": worst of all, above baseline
    assert!(mig_unr > sed, "mig+unr {mig_unr} vs sedentary {sed}");
    assert!(mig_unr > mig_atr, "{mig_unr} vs {mig_atr}");
    assert!(mig_unr > plc_unr, "{mig_unr} vs {plc_unr}");
    // placement+unrestricted is "a first improvement"
    assert!(plc_unr < mig_unr);
    // a-transitive attachment recovers performance below the baseline
    assert!(mig_atr < sed, "{mig_atr} vs {sed}");
    assert!(plc_atr < sed, "{plc_atr} vs {sed}");
    // the best combination is placement + a-transitive
    for other in [mig_unr, mig_atr, plc_unr, sed] {
        assert!(plc_atr <= other * 1.02, "{plc_atr} vs {other}");
    }
}

/// §3.4: exclusive attachment also yields disjoint working sets and beats
/// unrestricted attachment under conflict.
#[test]
fn exclusive_attachment_helps() {
    let config = ScenarioConfig::fig16(8);
    let unr = comm(
        &config,
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
        19,
    );
    let exc = comm(
        &config,
        PolicyKind::ConventionalMigration,
        AttachmentMode::Exclusive,
        20,
    );
    assert!(exc < unr, "exclusive {exc} vs unrestricted {unr}");
}

/// §4.1: "we also performed simulations for other structures. But this had
/// no effects on the results." With flat per-message latency the topology
/// does not change the placement ordering.
#[test]
fn topology_does_not_change_the_story() {
    use oml_core::ids::NodeId;
    use oml_net::{LatencyModel, Network, Topology};
    use oml_sim::{BlockParams, SimulationBuilder};

    let run = |topo: Topology, policy: PolicyKind, seed: u64| {
        let mut b =
            SimulationBuilder::new(Network::new(topo, LatencyModel::Exponential { mean: 1.0 }))
                .policy(policy)
                .stopping(smoke())
                .warmup(300.0)
                .seed(seed);
        let servers: Vec<_> = (0..3).map(|j| b.add_object(NodeId::new(2 - j))).collect();
        for i in 0..3 {
            b.add_client(NodeId::new(i), servers.clone(), BlockParams::paper(10.0));
        }
        b.build().run().metrics.comm_time_per_call()
    };

    let mesh_p = run(
        Topology::FullMesh { nodes: 3 },
        PolicyKind::TransientPlacement,
        21,
    );
    let mesh_m = run(
        Topology::FullMesh { nodes: 3 },
        PolicyKind::ConventionalMigration,
        22,
    );
    for topo in [Topology::Star { nodes: 3 }, Topology::Ring { nodes: 3 }] {
        let p = run(topo.clone(), PolicyKind::TransientPlacement, 23);
        let m = run(topo, PolicyKind::ConventionalMigration, 24);
        // same winner, and values close to the full-mesh ones
        assert!(p < m);
        assert!((p - mesh_p).abs() / mesh_p < 0.15, "{p} vs {mesh_p}");
        assert!((m - mesh_m).abs() / mesh_m < 0.15, "{m} vs {mesh_m}");
    }
}
