//! The simulator is anchored to the closed-form predictions of
//! `oml_core::cost` — where a quantity can be computed by hand, the
//! simulation must land on it.

use oml_core::attach::AttachmentMode;
use oml_core::cost::{sedentary_call_time, uncontended_block_cost_per_call, CostModel};
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_workload::{run_scenario, ScenarioConfig};

fn precise() -> StoppingRule {
    StoppingRule {
        relative_precision: 0.01,
        confidence: 0.99,
        min_batches: 20,
        max_samples: 300_000,
    }
}

/// Fig. 8 world (one server per node): the sedentary baseline must match
/// `2·(1 − 1/3) = 4/3` to within its confidence interval.
#[test]
fn fig8_sedentary_matches_closed_form() {
    let out = run_scenario(
        &ScenarioConfig::fig8(30.0),
        PolicyKind::Sedentary,
        AttachmentMode::Unrestricted,
        precise(),
        101,
    );
    let predicted = sedentary_call_time(3, 1, 1.0);
    let measured = out.metrics.comm_time_per_call();
    assert!(
        (measured - predicted).abs() < 0.03,
        "measured {measured} vs predicted {predicted}"
    );
}

/// Fig. 12 world (27 nodes, servers away from most clients): the baseline
/// approaches `2·(1 − 0) = 2` as the local-pick probability vanishes.
#[test]
fn fig12_sedentary_approaches_two() {
    let out = run_scenario(
        &ScenarioConfig::fig12(10),
        PolicyKind::Sedentary,
        AttachmentMode::Unrestricted,
        precise(),
        102,
    );
    let predicted = sedentary_call_time(3, 0, 1.0);
    let measured = out.metrics.comm_time_per_call();
    assert!(
        (measured - predicted).abs() < 0.05,
        "measured {measured} vs predicted {predicted}"
    );
}

/// A single migrating client on the Fig. 8 world: in steady state each
/// block pays `(M + C)` only when its uniformly picked server is not already
/// at the client (2/3 of the time), amortized over N calls — because once a
/// server has been pulled over it stays until another block picks a
/// different one.
#[test]
fn single_client_migration_cost_matches_closed_form() {
    let mut config = ScenarioConfig::fig8(30.0);
    config.clients = 1;
    let out = run_scenario(
        &config,
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
        precise(),
        103,
    );
    let m = &out.metrics;
    // the three servers gravitate to the single client's node; in the
    // steady state at most two can be elsewhere (the ones picked less
    // recently never move back), so eventually *all* are local and blocks
    // cost nothing
    let measured = m.comm_time_per_call();
    let worst_case = uncontended_block_cost_per_call(&CostModel::paper(), 8, 2.0 / 3.0);
    assert!(
        measured < worst_case,
        "steady-state cost {measured} must undercut the transient bound {worst_case}"
    );
    assert_eq!(m.moves_denied, 0, "no contention, no denials");
    // after the transient, all servers live with the client: migrations stop
    assert!(
        (m.migrations as f64) < (m.blocks_completed as f64) * 0.05,
        "{} migrations across {} blocks",
        m.migrations,
        m.blocks_completed
    );
}
