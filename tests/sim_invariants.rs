//! Property-based invariants of the simulator over randomized scenarios.

use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_workload::{build_scenario, ScenarioConfig};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

fn any_mode() -> impl Strategy<Value = AttachmentMode> {
    prop::sample::select(vec![
        AttachmentMode::Unrestricted,
        AttachmentMode::ATransitive,
        AttachmentMode::Exclusive,
    ])
}

fn any_scenario() -> impl Strategy<Value = ScenarioConfig> {
    (
        2u32..8,   // nodes
        1u32..6,   // clients
        1u32..4,   // servers1
        0u32..4,   // servers2
        0u32..3,   // working set
        1.0..30.0, // mean gap
    )
        .prop_map(|(nodes, clients, s1, s2, ws, gap)| {
            let mut cfg = ScenarioConfig::fig8(gap);
            cfg.name = "random".into();
            cfg.nodes = nodes;
            cfg.clients = clients;
            cfg.servers1 = s1;
            cfg.servers2 = s2;
            cfg.working_set = if s2 == 0 { 0 } else { ws.min(s2) };
            cfg.warmup_time = 50.0;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random scenario runs without panicking, conserves every object
    /// (all installed somewhere or legitimately in transit), and produces
    /// internally consistent metrics.
    #[test]
    fn random_scenarios_hold_invariants(
        cfg in any_scenario(),
        policy in any_policy(),
        mode in any_mode(),
        seed in 0u64..1_000,
    ) {
        let mut sim = build_scenario(
            &cfg,
            policy,
            mode,
            StoppingRule {
                relative_precision: 0.2,
                confidence: 0.9,
                min_batches: 2,
                max_samples: 3_000,
            },
            seed,
        );
        let out = sim.run_for(2_000.0);
        let m = &out.metrics;

        // metric identities
        let sum = m.call_time_per_call() + m.migration_time_per_call() + m.control_time_per_call();
        prop_assert!((m.comm_time_per_call() - sum).abs() < 1e-9);
        prop_assert!(m.moves_granted + m.moves_denied <= m.moves_issued + 8,
            "decisions {} vs issued {}", m.moves_granted + m.moves_denied, m.moves_issued);
        prop_assert!(m.total_transfer_load >= m.total_migration_time - 1e-9);
        prop_assert!(m.objects_migrated >= m.migrations);

        // the sedentary baseline truly never migrates or issues moves
        if policy == PolicyKind::Sedentary {
            prop_assert_eq!(m.migrations, 0);
            prop_assert_eq!(m.moves_issued, 0);
        }

        // non-negative times
        prop_assert!(m.total_call_time >= 0.0);
        prop_assert!(m.total_migration_time >= 0.0);
        prop_assert!(m.total_control_time >= 0.0);

        // progress: with at least one client and finite gaps, work happened
        prop_assert!(m.calls > 0 || out.sim_time < 2_000.0);
    }

    /// Same seed, same scenario → bit-identical headline metric.
    #[test]
    fn runs_are_reproducible(seed in 0u64..500) {
        let cfg = ScenarioConfig::fig8(20.0);
        let run = || {
            let mut sim = build_scenario(
                &cfg,
                PolicyKind::TransientPlacement,
                AttachmentMode::Unrestricted,
                StoppingRule {
                    relative_precision: 0.2,
                    confidence: 0.9,
                    min_batches: 2,
                    max_samples: 2_000,
                },
                seed,
            );
            let out = sim.run_for(1_000.0);
            (out.metrics.calls, out.metrics.comm_time_per_call(), out.events)
        };
        prop_assert_eq!(run(), run());
    }
}
