//! The simulator agrees with the §3.2 closed-form cost model in the
//! deterministic limit.

use oml_core::cost::CostModel;
use oml_core::ids::NodeId;
use oml_core::policy::PolicyKind;
use oml_net::{LatencyModel, Network, Topology};
use oml_sim::{BlockParams, SimulationBuilder};

fn deterministic_net(nodes: u32) -> Network {
    Network::new(
        Topology::FullMesh { nodes },
        LatencyModel::Deterministic { value: 1.0 },
    )
}

/// One uncontended move-block with deterministic unit messages costs
/// exactly `M + C` (move-request message + migration; the calls and the end
/// are local and free) — the model's `uncontended_move`.
#[test]
fn uncontended_block_costs_m_plus_c() {
    let model = CostModel::paper();
    let mut b = SimulationBuilder::new(deterministic_net(2))
        .policy(PolicyKind::TransientPlacement)
        .warmup(0.0)
        .seed(1);
    let s = b.add_object(NodeId::new(1));
    b.add_client(
        NodeId::new(0),
        vec![s],
        BlockParams {
            mean_calls: 0.0, // exactly one call per block
            mean_think: 0.0,
            mean_gap: 1e12, // effectively a single block
        },
    );
    let mut sim = b.build();
    let out = sim.run_for(1e5);

    assert_eq!(out.metrics.blocks_completed, 1);
    let block_cost = out.metrics.total_call_time
        + out.metrics.total_migration_time
        + out.metrics.total_control_time;
    assert!(
        (block_cost - model.uncontended_move(1)).abs() < 1e-9,
        "block cost {block_cost} vs analytic {}",
        model.uncontended_move(1)
    );
}

/// A denied block with `n` remote calls costs `2n·C` in call time plus one
/// denial round trip — matching `remote_block(n)` for the call component.
#[test]
fn denied_block_call_time_matches_remote_block() {
    let model = CostModel::paper();
    // a sedentary-policy world would skip moves entirely; use a fixed
    // object under conventional migration so every move is denied with an
    // indication message.
    let mut b = SimulationBuilder::new(deterministic_net(2))
        .policy(PolicyKind::ConventionalMigration)
        .warmup(0.0)
        .seed(2);
    let s = b.add_object(NodeId::new(1));
    b.fix_object(s);
    b.add_client(
        NodeId::new(0),
        vec![s],
        BlockParams {
            mean_calls: 0.0,
            mean_think: 0.0,
            mean_gap: 1e12,
        },
    );
    let mut sim = b.build();
    let out = sim.run_for(1e5);

    assert_eq!(out.metrics.blocks_completed, 1);
    assert!((out.metrics.total_call_time - model.remote_block(1)).abs() < 1e-9);
    // move-request + denial indication: two control messages
    assert!((out.metrics.total_control_time - 2.0).abs() < 1e-9);
    assert_eq!(out.metrics.total_migration_time, 0.0);
}

/// The §3.2 inequality transfers to the simulator: under a scripted
/// two-mover conflict, total placement cost is below the conventional
/// worst case for the same parameters.
#[test]
fn conflict_costs_respect_the_analytic_ordering() {
    let model = CostModel::paper();
    let n_calls = 8u64;

    let run = |policy: PolicyKind, seed: u64| {
        let mut b = SimulationBuilder::new(deterministic_net(3))
            .policy(policy)
            .warmup(0.0)
            .seed(seed);
        let s = b.add_object(NodeId::new(2));
        for i in 0..2 {
            b.add_client(
                NodeId::new(i),
                vec![s],
                BlockParams {
                    mean_calls: n_calls as f64,
                    mean_think: 1.0,
                    mean_gap: 40.0,
                },
            );
        }
        let mut sim = b.build();
        let out = sim.run_for(30_000.0);
        (
            out.metrics.comm_time_per_call(),
            out.metrics.blocks_completed,
        )
    };

    let (placement, pb) = run(PolicyKind::TransientPlacement, 3);
    let (conventional, cb) = run(PolicyKind::ConventionalMigration, 4);
    assert!(pb > 100 && cb > 100);
    assert!(
        placement <= conventional + 1e-9,
        "sim: placement {placement} vs conventional {conventional}"
    );
    // and the analytic model predicts the same direction
    assert!(model.placement_conflict(n_calls) < model.conventional_conflict_worst(n_calls));
}
