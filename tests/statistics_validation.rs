//! Statistical validation: the batch-means machinery behind the paper's
//! stopping rule is cross-checked against independent replications.

use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_des::stats::{autocorrelation, replicate, StoppingRule};
use oml_workload::{run_scenario, ScenarioConfig};

fn fixed_budget(samples: u64) -> StoppingRule {
    StoppingRule {
        relative_precision: 1e-12, // never met: run to the cap
        confidence: 0.99,
        min_batches: u64::MAX,
        max_samples: samples,
    }
}

/// The batch-means point estimate from one long run agrees with the mean of
/// independent replications — i.e. the estimator is unbiased across the two
/// classical output-analysis methods.
#[test]
fn batch_means_agrees_with_replications() {
    let config = ScenarioConfig::fig8(20.0);

    // 12 short independent replications
    let reps = replicate(12, 1234, |seed| {
        run_scenario(
            &config,
            PolicyKind::TransientPlacement,
            AttachmentMode::Unrestricted,
            fixed_budget(6_000),
            seed,
        )
        .metrics
        .comm_time_per_call()
    });

    // one long batch-means run
    let long = run_scenario(
        &config,
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
        fixed_budget(72_000),
        999,
    );
    let long_mean = long.metrics.comm_time_per_call();

    let rep_ci = reps.confidence_interval(0.99).expect("12 replications");
    let diff = (rep_ci.mean - long_mean).abs();
    // the two estimates agree within a generous multiple of the replication CI
    assert!(
        diff < 3.0 * rep_ci.half_width.max(0.01),
        "replications {} ± {} vs long run {}",
        rep_ci.mean,
        rep_ci.half_width,
        long_mean
    );
}

/// The batch size used by the simulator (500 calls) is large enough: the
/// batch means of a contended run are essentially uncorrelated at lag 1,
/// which is the precondition for the normal-theory interval the stopping
/// rule computes.
#[test]
fn batch_means_are_nearly_uncorrelated() {
    let config = ScenarioConfig::fig8(10.0);
    let out = run_scenario(
        &config,
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
        fixed_budget(60_000),
        7,
    );
    // reconstruct batch means from the raw per-call distribution is not
    // possible (streaming); instead check the raw-sample lag-k correlation
    // decays: per-call samples are correlated, but far-apart samples are not.
    let m = &out.metrics;
    assert!(m.samples.batch_count() >= 100);
    // sanity on the CI machinery itself
    let ci = m.confidence_interval(0.99).expect("enough batches");
    assert!(ci.half_width > 0.0);
    assert!(ci.relative_half_width() < 0.2);
}

/// Direct check of the batch-size justification on a synthetic AR-like
/// stream: raw samples are strongly lag-1 correlated, their 500-batch means
/// are not.
#[test]
fn batching_removes_autocorrelation() {
    use oml_des::SimRng;
    let mut rng = SimRng::seed_from(5);
    let mut x = 0.0_f64;
    let raw: Vec<f64> = (0..100_000)
        .map(|_| {
            // AR(1) with strong dependence
            x = 0.95 * x + rng.exp(1.0) - 1.0;
            x
        })
        .collect();
    let raw_r1 = autocorrelation(&raw, 1).unwrap();
    assert!(
        raw_r1 > 0.9,
        "raw stream must be strongly correlated: {raw_r1}"
    );

    let batch_means: Vec<f64> = raw
        .chunks(500)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let bm_r1 = autocorrelation(&batch_means, 1).unwrap();
    assert!(
        bm_r1 < 0.35,
        "batch means must be nearly uncorrelated: {bm_r1}"
    );
}
