//! Hot-spot servers: find the break-even points of Fig. 12.
//!
//! "The common knowledge that it is better not to migrate such objects can
//! clearly be inferred from Figure 12" — this example regenerates that
//! figure at smoke precision and reports where conventional migration and
//! transient placement stop paying off.
//!
//! ```text
//! cargo run --release --example hotspot_contention
//! ```

use oml_experiments::experiments::{fig12, RunOptions};

fn main() {
    println!("sweeping 1..25 clients against 3 hot-spot servers on 27 nodes…\n");
    let result = fig12(&RunOptions::quick());
    print!("{}", result.to_ascii_table());

    println!();
    match result.crossover("migration", "without migration") {
        Some(x) => println!(
            "conventional migration stops paying off at ≈ {x:.1} concurrent clients (paper: ~6)"
        ),
        None => println!("conventional migration never crossed the baseline in this sweep"),
    }
    match result.crossover("transient placement", "without migration") {
        Some(x) => println!(
            "transient placement keeps winning until ≈ {x:.1} concurrent clients (paper: ~20)"
        ),
        None => println!("transient placement never crossed the baseline in this sweep"),
    }
    println!(
        "\nplacement's curve grows sublinearly: a bigger calls-per-migration ratio (N/M) moves"
    );
    println!("its break-even out over-proportionally, exactly as §4.2.2 argues.");
}
