//! Quickstart: the paper's core finding in thirty lines.
//!
//! Three clients on three nodes hammer three shared servers with
//! move-blocks. Under conventional `move()` semantics they steal the
//! servers from each other; under transient placement the first mover wins
//! and the others work remotely. Run it:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oml::prelude::*;
use oml_core::ids::NodeId;
use oml_net::Network;
use oml_sim::SimulationBuilder;

fn run(policy: PolicyKind) -> f64 {
    let mut b = SimulationBuilder::new(Network::paper(3))
        .policy(policy)
        .stopping(StoppingRule::quick())
        .seed(42);
    let servers: Vec<_> = (0..3).map(|i| b.add_object(NodeId::new(2 - i))).collect();
    for i in 0..3 {
        // mean gap 5 → high contention on the shared servers
        b.add_client(
            NodeId::new(i),
            servers.clone(),
            oml_sim::BlockParams::paper(5.0),
        );
    }
    b.build().run().metrics.comm_time_per_call()
}

fn main() {
    println!("mean communication time per call (lower is better):\n");
    let sedentary = run(PolicyKind::Sedentary);
    let migration = run(PolicyKind::ConventionalMigration);
    let placement = run(PolicyKind::TransientPlacement);
    println!("  without migration     {sedentary:.3}");
    println!("  conventional move     {migration:.3}");
    println!("  transient placement   {placement:.3}\n");
    assert!(
        placement < migration,
        "the paper's claim should reproduce on any seed"
    );
    println!(
        "transient placement beats conventional migration by {:.0}% under contention,",
        (1.0 - placement / migration) * 100.0
    );
    println!("because conflicting movers get a denial instead of stealing the object (§3.2).");
}
