//! Office automation — the paper's motivating setting (§1), on the *real*
//! runtime.
//!
//! Two autonomously developed applications — an editor suite and a nightly
//! indexer — share a document archive. Each was written assuming it is
//! alone: each attaches the documents it works on to its own coordinator
//! and issues move-blocks. We run the same workload twice:
//!
//! 1. conventional migration + unrestricted attachment (the §2.4 hazard),
//! 2. transient placement + alliance-scoped (A-transitive) attachment
//!    (the paper's remedy).
//!
//! ```text
//! cargo run --release --example office_automation
//! ```

use oml_core::attach::AttachmentMode;
use oml_core::ids::{NodeId, ObjectId};
use oml_core::policy::PolicyKind;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, MobileObject};

/// A document: a revision counter plus a body size.
struct Document {
    revision: u64,
    words: u64,
}

impl MobileObject for Document {
    fn type_tag(&self) -> &'static str {
        "document"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "edit" => {
                let mut r = WireReader::new(payload);
                self.words += r.u64()?;
                self.revision += 1;
                Ok(WireWriter::new().u64(self.revision).finish().to_vec())
            }
            "index" => Ok(WireWriter::new()
                .u64(self.words)
                .u64(self.revision)
                .finish()
                .to_vec()),
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new()
            .u64(self.revision)
            .u64(self.words)
            .finish()
            .to_vec()
    }
}

fn register(cluster: &Cluster) {
    cluster.register_type("document", |bytes| {
        let mut r = WireReader::new(bytes);
        let revision = r.u64().expect("document state");
        let words = r.u64().expect("document state");
        Box::new(Document { revision, words })
    });
}

const EDITOR_NODE: NodeId = NodeId::new(0);
const INDEXER_NODE: NodeId = NodeId::new(1);
const ARCHIVE_NODE: NodeId = NodeId::new(2);

struct Archive {
    docs: Vec<ObjectId>,
}

fn build_archive(cluster: &Cluster) -> Archive {
    let docs = (0..4)
        .map(|i| {
            cluster
                .create(
                    ARCHIVE_NODE,
                    Box::new(Document {
                        revision: 0,
                        words: 100 * (i + 1),
                    }),
                )
                .expect("create document")
        })
        .collect();
    Archive { docs }
}

/// The editor's working session: move a document here, edit it a few times.
fn editor_session(
    cluster: &Cluster,
    doc: ObjectId,
    ctx: Option<oml_core::ids::AllianceId>,
) -> bool {
    let guard = cluster
        .move_block_in(doc, EDITOR_NODE, ctx)
        .expect("move request");
    for _ in 0..3 {
        let _ = cluster.invoke(doc, "edit", &WireWriter::new().u64(5).finish());
    }
    guard.granted()
}

/// The indexer's sweep: move each document to the indexer node and scan it.
fn indexer_sweep(
    cluster: &Cluster,
    archive: &Archive,
    ctx: Option<oml_core::ids::AllianceId>,
) -> usize {
    let mut granted = 0;
    for &doc in &archive.docs {
        let guard = cluster
            .move_block_in(doc, INDEXER_NODE, ctx)
            .expect("move request");
        let _ = cluster.invoke(doc, "index", &[]);
        if guard.granted() {
            granted += 1;
        }
    }
    granted
}

fn scenario(policy: PolicyKind, mode: AttachmentMode) -> (usize, usize, Vec<Option<NodeId>>) {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(policy)
        .attachment_mode(mode)
        .build();
    register(&cluster);
    let archive = build_archive(&cluster);

    // Each application attaches "its" documents to a coordinator document —
    // autonomously, without knowing about the other application.
    let editor_ctx = match mode {
        AttachmentMode::ATransitive => {
            let a = cluster.create_alliance("editor-suite");
            for &d in &archive.docs {
                cluster.join_alliance(a, d).unwrap();
            }
            Some(a)
        }
        _ => None,
    };
    let indexer_ctx = match mode {
        AttachmentMode::ATransitive => {
            let a = cluster.create_alliance("nightly-indexer");
            for &d in &archive.docs {
                cluster.join_alliance(a, d).unwrap();
            }
            Some(a)
        }
        _ => None,
    };
    // the editor works on docs 0 and 1 and latches doc 1 to doc 0
    cluster
        .attach(archive.docs[1], archive.docs[0], editor_ctx)
        .unwrap();
    // the indexer chains everything for its sweep: 1→2, 2→3
    cluster
        .attach(archive.docs[2], archive.docs[1], indexer_ctx)
        .unwrap();
    cluster
        .attach(archive.docs[3], archive.docs[2], indexer_ctx)
        .unwrap();

    // The probe: the editor opens a session on *its* document. How much of
    // the archive follows it to the editor's node?
    let granted = editor_session(&cluster, archive.docs[0], editor_ctx);
    let dragged: Vec<Option<NodeId>> = archive
        .docs
        .iter()
        .map(|&d| cluster.location_of(d))
        .collect();
    let pulled_along = dragged
        .iter()
        .skip(1)
        .filter(|l| **l == Some(EDITOR_NODE))
        .count();

    // then the indexer sweeps as usual
    let mut indexer_grants = 0;
    if granted {
        indexer_grants += indexer_sweep(&cluster, &archive, indexer_ctx);
    }
    cluster.shutdown();
    (usize::from(granted), indexer_grants + pulled_along, dragged)
}

fn main() {
    println!("office automation: an editor suite and a nightly indexer share 4 documents\n");

    println!(
        "the editor attached doc1 to doc0 (its pair); the indexer chained doc2→doc1, doc3→doc2."
    );
    println!("now the editor opens a session on doc0 and pulls it to its node…\n");

    let (_, _, locs) = scenario(
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
    );
    let dragged = locs.iter().filter(|l| **l == Some(EDITOR_NODE)).count();
    println!("conventional migration + unrestricted attachment:");
    println!("  after the editor's move, document locations: {locs:?}");
    println!("  {dragged}/4 documents landed at the editor — the indexer's chain silently");
    println!("  enlarged the editor's working set, so it migrated the whole archive (§2.4)\n");

    let (_, _, locs) = scenario(PolicyKind::TransientPlacement, AttachmentMode::ATransitive);
    let dragged = locs.iter().filter(|l| **l == Some(EDITOR_NODE)).count();
    println!("transient placement + a-transitive attachment (alliances):");
    println!("  after the editor's move, document locations: {locs:?}");
    println!("  only {dragged}/4 documents moved — the move dragged exactly the editor");
    println!("  alliance's working set; the indexer's chain stayed put (§3.4)");
}
