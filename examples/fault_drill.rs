//! Fault drill — the robustness layer on the real runtime.
//!
//! A four-node cluster runs under a seeded fault plan (8 % message loss,
//! small delays, duplicated messages, half of all end-requests dropped)
//! while a client keeps working. We then crash a node mid-traffic, watch
//! deadlines fire instead of calls hanging, restart it, and show that
//! leases reclaim every placement lock that a lost end-request or the
//! crash orphaned. Finally the same seed is replayed to show the fault
//! schedule is deterministic.
//!
//! ```text
//! cargo run --release --example fault_drill
//! ```

use std::time::Duration;

use oml_core::ids::NodeId;
use oml_core::policy::PolicyKind;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, FaultPlan, MobileObject, RuntimeError};

/// A job queue depth counter standing in for any mobile service object.
struct Queue(u64);

impl MobileObject for Queue {
    fn type_tag(&self) -> &'static str {
        "queue"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "push" => {
                self.0 += WireReader::new(payload).u64()?;
                Ok(WireWriter::new().u64(self.0).finish().to_vec())
            }
            "depth" => Ok(WireWriter::new().u64(self.0).finish().to_vec()),
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.0).finish().to_vec()
    }
}

fn drill(seed: u64, chatty: bool) -> Vec<String> {
    let plan = FaultPlan::seeded(seed)
        .drop_probability(0.08)
        .duplicate_probability(0.05)
        .delay_probability(0.10, 3)
        .drop_end_requests(0.5);
    let cluster = Cluster::builder()
        .nodes(4)
        .policy(PolicyKind::TransientPlacement)
        .faults(plan)
        .call_timeout(Duration::from_millis(100))
        .invoke_retries(2)
        .lease_ms(1_000)
        .manual_clock()
        .build();
    cluster.register_type("queue", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Queue(r.u64().expect("queue state")))
    });
    let queue = cluster
        .create(NodeId::new(1), Box::new(Queue(0)))
        .expect("create rides the reliable state channel");

    let mut acknowledged = 0u64;
    let mut timeouts = 0u64;
    for i in 0..30u64 {
        if i == 12 {
            cluster.crash_node(NodeId::new(1)).expect("crash");
            if chatty {
                println!("  !! node n1 crashed (its objects are stashed)");
            }
        }
        if i == 18 {
            cluster.restart_node(NodeId::new(1)).expect("restart");
            if chatty {
                println!("  !! node n1 restarted (stash reclaimed)");
            }
        }
        if i % 5 == 0 {
            // a move whose end-request may be dropped → orphaned lock
            if let Ok(guard) = cluster.move_block(queue, NodeId::new((i % 4) as u32)) {
                drop(guard);
            }
        }
        match cluster.invoke(queue, "push", &WireWriter::new().u64(1).finish()) {
            Ok(_) => acknowledged += 1,
            Err(RuntimeError::Timeout { waited_ms }) => {
                timeouts += 1;
                if chatty {
                    println!(
                        "  .. push #{i} timed out after {waited_ms} ms (deadline, not a hang)"
                    );
                }
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    // recovery: let every orphaned lease expire, then read the queue
    let locks_before = cluster.held_locks().len();
    cluster.advance_clock(2_000);
    let reclaimed = cluster.sweep_leases();
    let out = cluster
        .invoke(queue, "depth", &[])
        .expect("post-recovery read");
    let depth = WireReader::new(&out).u64().expect("payload");
    let stats = cluster.stats();

    if chatty {
        println!();
        println!("  pushes acknowledged      {acknowledged}");
        println!("  deadline timeouts        {timeouts}");
        println!("  retries spent            {}", stats.retries);
        println!("  locks held pre-expiry    {locks_before}");
        println!("  leases reclaimed         {}", reclaimed.len());
        println!("  final queue depth        {depth} (≥ acknowledged: at-least-once)");
        assert!(depth >= acknowledged, "an acknowledged push vanished");
        assert!(
            cluster.held_locks().is_empty(),
            "a lock leaked past its lease"
        );
    }

    let trace = cluster.fault_trace();
    cluster.shutdown();
    trace
}

fn main() {
    println!("== fault drill: seeded chaos on the live runtime ==\n");
    let trace = drill(7, true);

    println!("\n  injected fault events ({}):", trace.len());
    for line in trace.iter().take(8) {
        println!("    {line}");
    }
    if trace.len() > 8 {
        println!("    … {} more", trace.len() - 8);
    }

    println!("\n== replaying the same seed ==\n");
    let replay = drill(7, false);
    println!(
        "  traces identical: {} ({} events)",
        trace == replay,
        replay.len()
    );
    assert_eq!(trace, replay, "a seeded fault schedule must replay exactly");
    println!("\nSame seed, same faults, same outcome — chaos you can put in a test.");
}
