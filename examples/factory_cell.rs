//! Factory automation — the intro's second motivating domain, on the real
//! runtime with the §2.3 linguistic layer.
//!
//! A scheduler object assigns jobs to work cells. The classic GOM
//! declaration from the paper's Fig. 1 drives the parameter passing:
//!
//! ```text
//! declare assign: visit job, move schedule -> bool;
//! ```
//!
//! The *job* visits the scheduler (and returns to its cell); the *schedule*
//! moves to the scheduler and stays. Run it:
//!
//! ```text
//! cargo run --release --example factory_cell
//! ```

use oml_core::ids::NodeId;
use oml_core::lang::OperationDecl;
use oml_core::policy::PolicyKind;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, MobileObject};

/// The scheduler: counts assignments.
struct Scheduler {
    assigned: u64,
}

impl MobileObject for Scheduler {
    fn type_tag(&self) -> &'static str {
        "scheduler"
    }
    fn invoke(&mut self, method: &str, _payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "assign" => {
                self.assigned += 1;
                Ok(WireWriter::new().u64(self.assigned).finish().to_vec())
            }
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.assigned).finish().to_vec()
    }
}

/// A job or a schedule: an opaque revision-counted document.
struct Artifact {
    revision: u64,
}

impl MobileObject for Artifact {
    fn type_tag(&self) -> &'static str {
        "artifact"
    }
    fn invoke(&mut self, method: &str, _payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "touch" => {
                self.revision += 1;
                Ok(WireWriter::new().u64(self.revision).finish().to_vec())
            }
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.revision).finish().to_vec()
    }
}

const CELL_A: NodeId = NodeId::new(0);
const CELL_B: NodeId = NodeId::new(1);
const PLANNING: NodeId = NodeId::new(2);

fn main() {
    let cluster = Cluster::builder()
        .nodes(3)
        .policy(PolicyKind::TransientPlacement)
        .build();
    cluster.register_type("scheduler", |bytes| {
        let assigned = WireReader::new(bytes).u64().expect("state");
        Box::new(Scheduler { assigned })
    });
    cluster.register_type("artifact", |bytes| {
        let revision = WireReader::new(bytes).u64().expect("state");
        Box::new(Artifact { revision })
    });

    // the scheduler lives (fixed) on the planning node
    let scheduler = cluster
        .create(PLANNING, Box::new(Scheduler { assigned: 0 }))
        .expect("create scheduler");
    cluster.fix(scheduler);

    // each work cell owns a job; the schedule starts at cell A
    let job_a = cluster
        .create(CELL_A, Box::new(Artifact { revision: 0 }))
        .unwrap();
    let job_b = cluster
        .create(CELL_B, Box::new(Artifact { revision: 0 }))
        .unwrap();
    let schedule = cluster
        .create(CELL_A, Box::new(Artifact { revision: 0 }))
        .unwrap();

    // the paper's Fig. 1 declaration, parsed from its concrete syntax
    let decl: OperationDecl = "declare assign: visit job, move schedule -> bool"
        .parse()
        .expect("well-formed declaration");
    println!("operation: {decl}\n");

    for (label, job) in [("cell A", job_a), ("cell B", job_b)] {
        let out = cluster
            .invoke_with_decl(scheduler, &decl, &[job, schedule], &[])
            .expect("assign");
        let total = WireReader::new(&out).u64().unwrap();
        println!(
            "{label}: assignment #{total} — job back at {:?}, schedule now at {:?}",
            cluster.location_of(job).unwrap(),
            cluster.location_of(schedule).unwrap(),
        );
    }

    let stats = cluster.stats();
    println!(
        "\ncluster stats: {} invocations, {} grants, {} denials, {} objects shipped",
        stats.invocations, stats.moves_granted, stats.moves_denied, stats.objects_migrated
    );

    assert!(cluster.is_resident(job_a, CELL_A), "visit returned job A");
    assert!(cluster.is_resident(job_b, CELL_B), "visit returned job B");
    assert!(
        cluster.is_resident(schedule, PLANNING),
        "move left the schedule with the scheduler"
    );
    println!("\nvisit parameters went home; the move parameter stayed with the scheduler —");
    println!("call-by-visit and call-by-move exactly as Fig. 1 declares them.");
    cluster.shutdown();
}
