//! A tour of all five migration policies on one contended scenario.
//!
//! Shows the whole §4 story in one table: the aggressive policy thrashes,
//! the conservative one wins, and the "intelligent" dynamic refinements buy
//! almost nothing over plain placement (§4.3) — before even paying their
//! bookkeeping overhead.
//!
//! ```text
//! cargo run --release --example policy_tour
//! ```

use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_workload::{run_scenario, ScenarioConfig};

fn main() {
    // Fig. 14's world: 3 nodes, 3 servers, 12 clients, t_m ~ exp(30)
    let config = ScenarioConfig::fig14(12);
    let stopping = StoppingRule::quick();

    println!("12 clients on 3 nodes contending for 3 servers (M=6, N~exp(8), t_m~exp(30))\n");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "policy", "comm/call", "call time", "migr time", "granted", "denied"
    );
    for kind in PolicyKind::ALL {
        let out = run_scenario(&config, kind, AttachmentMode::Unrestricted, stopping, 99);
        let m = &out.metrics;
        println!(
            "{:<28} {:>10.3} {:>10.3} {:>10.3} {:>9} {:>9}",
            kind.to_string(),
            m.comm_time_per_call(),
            m.call_time_per_call(),
            m.migration_time_per_call(),
            m.moves_granted,
            m.moves_denied,
        );
    }

    println!();
    println!("reading guide:");
    println!("  sedentary        — every call remote: the flat baseline");
    println!("  migration        — grants everything; concurrent movers steal mid-block");
    println!("  placement        — first mover locks; conflicts fall back to remote calls");
    println!("  compare-*        — placement plus open-move counters: only marginal gains,");
    println!("                     which is why §4.3 judges them not worth their overhead");
}
