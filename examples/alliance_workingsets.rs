//! Overlapping working sets and what alliances buy you (Fig. 16).
//!
//! Six first-layer servers each work on an overlapping window of six
//! second-layer servers. Every working set is attached together — by
//! applications that don't know about each other. This example compares all
//! three attachment semantics under both migration policies and prints the
//! closure sizes that make unrestricted attachment so devastating.
//!
//! ```text
//! cargo run --release --example alliance_workingsets
//! ```

use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_workload::{run_scenario, ScenarioConfig};

fn main() {
    let config = ScenarioConfig::fig16(8);
    let stopping = StoppingRule::quick();
    println!(
        "8 clients, 6 front servers with overlapping working sets over 6 second-layer servers\n"
    );
    println!(
        "{:<46} {:>10} {:>12} {:>14}",
        "policy + attachment", "comm/call", "mean closure", "transfer load"
    );

    let cases = [
        (
            "migration + unrestricted",
            PolicyKind::ConventionalMigration,
            AttachmentMode::Unrestricted,
        ),
        (
            "migration + a-transitive (alliances)",
            PolicyKind::ConventionalMigration,
            AttachmentMode::ATransitive,
        ),
        (
            "migration + exclusive (first-come)",
            PolicyKind::ConventionalMigration,
            AttachmentMode::Exclusive,
        ),
        (
            "placement + unrestricted",
            PolicyKind::TransientPlacement,
            AttachmentMode::Unrestricted,
        ),
        (
            "placement + a-transitive (alliances)",
            PolicyKind::TransientPlacement,
            AttachmentMode::ATransitive,
        ),
        (
            "placement + exclusive (first-come)",
            PolicyKind::TransientPlacement,
            AttachmentMode::Exclusive,
        ),
    ];

    let mut best = (f64::INFINITY, "");
    let mut worst = (0.0_f64, "");
    for (label, policy, mode) in cases {
        let out = run_scenario(&config, policy, mode, stopping, 7);
        let m = &out.metrics;
        println!(
            "{:<46} {:>10.3} {:>12.2} {:>14.3}",
            label,
            m.comm_time_per_call(),
            m.mean_closure_size(),
            m.transfer_load_per_call(),
        );
        if m.comm_time_per_call() < best.0 {
            best = (m.comm_time_per_call(), label);
        }
        if m.comm_time_per_call() > worst.0 {
            worst = (m.comm_time_per_call(), label);
        }
    }

    println!();
    println!(
        "worst: {} — overlapping attachments chain every working set into one",
        worst.1
    );
    println!("       closure, so each steal migrates (and blocks) almost the whole system.");
    println!(
        "best:  {} — each move drags exactly the working set its",
        best.1
    );
    println!("       cooperation context (alliance) defines, as §3.4 prescribes.");
}
