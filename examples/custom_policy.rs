//! Writing your own migration policy.
//!
//! The paper frames migration support as "a small set of primitives as
//! building blocks for more complex mechanisms" (§2.3); the library's
//! equivalent is the `MovePolicy` trait. This example plugs in the
//! anti-thrashing `CooldownFixing` extension (conventional migration plus
//! the transient fixing §2.2 suggests "to avoid thrashing") and sweeps its
//! cooldown length on a contended scenario — interpolating between pure
//! conventional migration and placement-like conservatism.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use oml_core::ids::NodeId;
use oml_core::policies::CooldownFixing;
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_net::Network;
use oml_sim::{BlockParams, SimulationBuilder};

fn base_builder(seed: u64) -> SimulationBuilder {
    let mut b = SimulationBuilder::new(Network::paper(3))
        .stopping(StoppingRule::quick())
        .warmup(300.0)
        .seed(seed);
    let servers: Vec<_> = (0..3).map(|i| b.add_object(NodeId::new(2 - i))).collect();
    for i in 0..3 {
        b.add_client(NodeId::new(i), servers.clone(), BlockParams::paper(5.0));
    }
    b
}

fn main() {
    println!("three clients contending for three servers (t_m ~ exp(5))\n");
    println!("{:<32} {:>10} {:>12}", "policy", "comm/call", "migrations");

    let conventional = base_builder(1)
        .policy(PolicyKind::ConventionalMigration)
        .build()
        .run();
    println!(
        "{:<32} {:>10.3} {:>12}",
        "conventional migration",
        conventional.metrics.comm_time_per_call(),
        conventional.metrics.migrations
    );

    for cooldown in [1u32, 2, 4, 8] {
        let out = base_builder(1)
            .policy_custom(CooldownFixing::new(cooldown))
            .build()
            .run();
        println!(
            "{:<32} {:>10.3} {:>12}",
            format!("cooldown fixing (k={cooldown})"),
            out.metrics.comm_time_per_call(),
            out.metrics.migrations
        );
    }

    let placement = base_builder(1)
        .policy(PolicyKind::TransientPlacement)
        .build()
        .run();
    println!(
        "{:<32} {:>10.3} {:>12}",
        "transient placement",
        placement.metrics.comm_time_per_call(),
        placement.metrics.migrations
    );

    println!();
    println!("increasing the cooldown suppresses thrashing migrations and approaches");
    println!("placement's behaviour — but placement still wins, because its lock is");
    println!("scoped to the *block* (releasing exactly when locality stops mattering)");
    println!("rather than to an arbitrary request count.");
}
