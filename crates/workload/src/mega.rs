//! The `mega` standing scale scenario: millions of objects, thousands of
//! nodes, one sharded multi-core world.
//!
//! This scenario exists to exercise the scale axis the paper could not: a
//! [`ShardedEngine`] world with **≥ 1M objects on ≥ 1000 nodes**, driven by
//!
//! * **Zipf object popularity** — callers pick targets by rank through
//!   [`crate::zipf::Zipf`], so a hot head of objects sees most traffic
//!   while a huge cold tail mostly sits in memory (which is the point:
//!   peak RSS is part of the report),
//! * **diurnal traffic phases** — tick rates are modulated by a sinusoid,
//!   so the world breathes through busy and quiet phases instead of
//!   holding one stationary load,
//! * **migration domains** — nodes are partitioned into shards (contiguous
//!   blocks); objects migrate freely *within* their domain while calls and
//!   replies cross domains as network messages. Cross-shard messages ride
//!   a shifted-exponential latency whose offset is the engine's
//!   conservative lookahead (`Network::min_remote_delay` semantics — a
//!   bare exponential would have lookahead 0 and no parallelism).
//!
//! Everything is seeded: per-shard RNG streams derive from the scenario
//! seed via [`oml_des::stats::replication_seed`], and the sharded engine's
//! window protocol keeps results bit-identical at any thread count.

use oml_des::shard::{ShardCtx, ShardHandler, ShardedEngine};
use oml_des::stats::{replication_seed, OnlineStats};
use oml_des::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::zipf::Zipf;

/// Parameters of the mega scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MegaConfig {
    /// Total objects in the world (the standing target is ≥ 1M).
    pub objects: u64,
    /// Nodes, partitioned evenly into `shards` migration domains.
    pub nodes: u32,
    /// Shards (= event queues = maximum useful worker threads).
    pub shards: usize,
    /// Zipf popularity exponent over object ranks.
    pub zipf_exponent: f64,
    /// Mean think time between an node's consecutive ticks at base load.
    pub mean_gap: f64,
    /// Period of the diurnal load sinusoid (simulated time units).
    pub diurnal_period: f64,
    /// Relative amplitude of the diurnal modulation, in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Minimum network latency — the offset of the shifted-exponential
    /// message delay and the engine's conservative lookahead.
    pub latency_offset: f64,
    /// Mean of the exponential tail on top of the offset.
    pub latency_tail: f64,
    /// Probability that serving a call migrates the object inside its domain.
    pub migrate_probability: f64,
    /// Extra service delay a migration adds to the reply.
    pub migration_duration: f64,
    /// Simulated duration of the run.
    pub duration: f64,
}

impl MegaConfig {
    /// The standing scale target: 2²⁰ objects on 1024 nodes in 64 domains.
    #[must_use]
    pub fn standing() -> Self {
        MegaConfig {
            objects: 1 << 20,
            nodes: 1024,
            shards: 64,
            zipf_exponent: 1.0,
            mean_gap: 1.0,
            diurnal_period: 500.0,
            diurnal_amplitude: 0.5,
            latency_offset: 0.5,
            latency_tail: 0.5,
            migrate_probability: 0.02,
            migration_duration: 6.0,
            duration: 2_500.0,
        }
    }

    /// A miniature world with the same shape, for tests and smokes.
    #[must_use]
    pub fn smoke() -> Self {
        MegaConfig {
            objects: 20_000,
            nodes: 64,
            shards: 8,
            duration: 60.0,
            ..MegaConfig::standing()
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.objects == 0 {
            return Err("objects must be positive".into());
        }
        if self.shards == 0 || self.nodes == 0 {
            return Err("nodes and shards must be positive".into());
        }
        if !(self.nodes as usize).is_multiple_of(self.shards) {
            return Err(format!(
                "shards ({}) must divide nodes ({}) evenly",
                self.shards, self.nodes
            ));
        }
        if !(self.zipf_exponent.is_finite() && self.zipf_exponent > 0.0) {
            return Err("zipf exponent must be positive".into());
        }
        if !(self.latency_offset.is_finite() && self.latency_offset > 0.0) {
            return Err("latency offset must be positive: it is the lookahead".into());
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err("diurnal amplitude must be in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.migrate_probability) {
            return Err("migrate probability must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// Events of the mega world.
#[derive(Debug)]
enum MegaEvent {
    /// A node's traffic source fires: pick an object, issue a call.
    Tick { node: u32 },
    /// A call arrives at the target object's home domain.
    Call { rank: u64, caller: u32, issued: f64 },
    /// The result arrives back at the caller.
    Reply { issued: f64 },
}

/// Per-domain counters, merged across shards at the end of a run.
#[derive(Debug, Clone, Default)]
struct DomainStats {
    ticks: u64,
    calls_issued: u64,
    calls_completed: u64,
    local_calls: u64,
    migrations: u64,
    response: OnlineStats,
}

/// One migration domain: a block of nodes and the objects homed on them.
struct Domain {
    cfg: MegaConfig,
    /// First node of this domain's contiguous block.
    node_lo: u32,
    /// Nodes per domain (`nodes / shards`).
    span: u32,
    rng: SimRng,
    zipf: Zipf,
    /// Current node of every object homed here, indexed by local slot.
    location: Vec<u32>,
    stats: DomainStats,
}

impl Domain {
    /// Local slot of object rank `rank` (homed in this domain).
    fn slot(&self, rank: u64) -> usize {
        let o = rank - 1;
        let node = (o % u64::from(self.cfg.nodes)) as u32;
        let row = o / u64::from(self.cfg.nodes);
        (row * u64::from(self.span) + u64::from(node - self.node_lo)) as usize
    }

    /// Domain (= shard) of a node.
    fn domain_of(&self, node: u32) -> usize {
        (node / self.span) as usize
    }

    /// Home node of an object rank.
    fn home_of(&self, rank: u64) -> u32 {
        ((rank - 1) % u64::from(self.cfg.nodes)) as u32
    }

    /// Diurnal load factor at time `t` (mean 1 over a full period).
    fn load(&self, t: f64) -> f64 {
        1.0 + self.cfg.diurnal_amplitude
            * (std::f64::consts::TAU * t / self.cfg.diurnal_period).sin()
    }

    /// One network latency draw (offset + exponential tail ≥ lookahead).
    fn net_delay(&mut self) -> f64 {
        self.cfg.latency_offset + self.rng.exp(self.cfg.latency_tail)
    }
}

impl ShardHandler for Domain {
    type Event = MegaEvent;

    fn handle(&mut self, now: SimTime, event: MegaEvent, ctx: &mut ShardCtx<'_, MegaEvent>) {
        match event {
            MegaEvent::Tick { node } => {
                self.stats.ticks += 1;
                // breathe: the gap shrinks in busy phases, grows at night
                let gap = self.rng.exp(self.cfg.mean_gap) / self.load(now.as_f64());
                ctx.schedule_in(gap, MegaEvent::Tick { node });

                let rank = self.zipf.sample(&mut self.rng);
                self.stats.calls_issued += 1;
                let home = self.home_of(rank);
                let dest = self.domain_of(home);
                if dest == ctx.shard() {
                    let cur = self.location[self.slot(rank)];
                    if cur == node {
                        // same node: local actions are free (§4.1)
                        self.stats.local_calls += 1;
                        self.stats.calls_completed += 1;
                        self.stats.response.push(0.0);
                        return;
                    }
                }
                let delay = self.net_delay();
                let call = MegaEvent::Call {
                    rank,
                    caller: node,
                    issued: now.as_f64(),
                };
                ctx.send(dest, delay, call);
            }
            MegaEvent::Call {
                rank,
                caller,
                issued,
            } => {
                let slot = self.slot(rank);
                let mut service = 0.0;
                if self.rng.unit() < self.cfg.migrate_probability {
                    // migrate within the domain — pulled toward the caller
                    // if it lives here, otherwise to a random domain node
                    let target = if self.domain_of(caller) == ctx.shard() {
                        caller
                    } else {
                        self.node_lo + self.rng.below(self.span as usize) as u32
                    };
                    if target != self.location[slot] {
                        self.location[slot] = target;
                        self.stats.migrations += 1;
                        service = self.cfg.migration_duration;
                    }
                }
                let delay = service + self.net_delay();
                ctx.send(self.domain_of(caller), delay, MegaEvent::Reply { issued });
            }
            MegaEvent::Reply { issued } => {
                self.stats.calls_completed += 1;
                self.stats.response.push(now.as_f64() - issued);
            }
        }
    }
}

/// The result of one mega run — everything BENCH_03's mega section needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MegaReport {
    /// Objects in the world.
    pub objects: u64,
    /// Nodes in the world.
    pub nodes: u32,
    /// Shards (migration domains).
    pub shards: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Simulated duration.
    pub sim_time: f64,
    /// Events the sharded engine delivered.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Delivered events per wall-clock second.
    pub events_per_sec: f64,
    /// Traffic-source firings.
    pub ticks: u64,
    /// Calls issued.
    pub calls_issued: u64,
    /// Calls completed (issued minus in-flight at the horizon).
    pub calls_completed: u64,
    /// Calls answered on the caller's own node, for free.
    pub local_calls: u64,
    /// Intra-domain migrations performed.
    pub migrations: u64,
    /// Mean call response time.
    pub mean_response: f64,
    /// Peak resident set size of this process, in bytes (0 if unknown).
    pub peak_rss_bytes: u64,
}

/// Builds and runs the mega scenario.
///
/// Deterministic for a given `(cfg, seed)` at any `threads`; wall time and
/// events/s are the only fields that vary across thread counts.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn run_mega(cfg: &MegaConfig, seed: u64, threads: usize) -> MegaReport {
    cfg.validate().expect("invalid mega config");
    let span = cfg.nodes / cfg.shards as u32;
    let rows = cfg.objects.div_ceil(u64::from(cfg.nodes));

    let domains: Vec<Domain> = (0..cfg.shards)
        .map(|s| {
            let node_lo = s as u32 * span;
            let mut location = vec![0u32; (rows * u64::from(span)) as usize];
            for (slot, loc) in location.iter_mut().enumerate() {
                // every object starts at its home node
                *loc = node_lo + (slot as u32 % span);
            }
            Domain {
                cfg: cfg.clone(),
                node_lo,
                span,
                rng: SimRng::seed_from(replication_seed(seed, s as u64)),
                zipf: Zipf::new(cfg.objects, cfg.zipf_exponent),
                location,
                stats: DomainStats::default(),
            }
        })
        .collect();

    let mut engine = ShardedEngine::new(domains, cfg.latency_offset, threads);
    for node in 0..cfg.nodes {
        // deterministic stagger spreads the sources across the first gaps
        let at = SimTime::new(f64::from(node % 101) * cfg.mean_gap / 101.0);
        engine.schedule((node / span) as usize, at, MegaEvent::Tick { node });
    }

    let start = std::time::Instant::now();
    engine.run_until(SimTime::new(cfg.duration));
    let wall_s = start.elapsed().as_secs_f64();

    let events = engine.events_handled();
    let mut merged = DomainStats::default();
    for d in engine.handlers() {
        merged.ticks += d.stats.ticks;
        merged.calls_issued += d.stats.calls_issued;
        merged.calls_completed += d.stats.calls_completed;
        merged.local_calls += d.stats.local_calls;
        merged.migrations += d.stats.migrations;
        merged.response.merge(&d.stats.response);
    }

    MegaReport {
        objects: cfg.objects,
        nodes: cfg.nodes,
        shards: cfg.shards,
        threads,
        sim_time: cfg.duration,
        events,
        wall_s,
        events_per_sec: if wall_s > 0.0 {
            events as f64 / wall_s
        } else {
            0.0
        },
        ticks: merged.ticks,
        calls_issued: merged.calls_issued,
        calls_completed: merged.calls_completed,
        local_calls: merged.local_calls,
        migrations: merged.migrations,
        mean_response: merged.response.mean(),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Peak resident set size of the current process, in bytes.
///
/// Reads `VmHWM` from `/proc/self/status` on Linux; returns 0 where that
/// is unavailable (no extra dependencies, no unsafe).
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_world_produces_traffic() {
        let report = run_mega(&MegaConfig::smoke(), 0x5eed, 1);
        assert!(report.ticks > 1_000, "ticks: {}", report.ticks);
        assert!(report.calls_completed > 1_000);
        assert!(report.migrations > 0, "some calls must migrate objects");
        assert!(report.local_calls > 0, "the Zipf head hits home nodes");
        assert!(report.mean_response > 0.0);
        assert!(report.events > report.ticks);
    }

    #[test]
    fn mega_is_thread_count_invariant() {
        let one = run_mega(&MegaConfig::smoke(), 7, 1);
        for threads in [2, 4] {
            let many = run_mega(&MegaConfig::smoke(), 7, threads);
            assert_eq!(many.events, one.events, "threads = {threads}");
            assert_eq!(many.ticks, one.ticks);
            assert_eq!(many.calls_completed, one.calls_completed);
            assert_eq!(many.migrations, one.migrations);
            assert_eq!(
                many.mean_response.to_bits(),
                one.mean_response.to_bits(),
                "metrics must be bit-identical, not just close"
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_mega(&MegaConfig::smoke(), 1, 1);
        let b = run_mega(&MegaConfig::smoke(), 2, 1);
        assert_ne!(a.calls_completed, b.calls_completed);
    }

    #[test]
    fn validation_rejects_ragged_sharding() {
        let mut cfg = MegaConfig::smoke();
        cfg.shards = 7; // does not divide 64 nodes
        assert!(cfg.validate().is_err());
        cfg.shards = 8;
        cfg.latency_offset = 0.0; // zero lookahead: no conservative window
        assert!(cfg.validate().is_err());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_observable() {
        assert!(peak_rss_bytes() > 0);
    }
}
