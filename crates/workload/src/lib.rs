//! # oml-workload — scenario generators for the paper's evaluation
//!
//! Builds the inter-object communication structures of §4.1:
//!
//! * **Fig. 6** (basic): `C` sedentary clients, each using every first-layer
//!   server; move-blocks operate inside the clients.
//! * **Fig. 7** (attachments): a second layer of servers; each first-layer
//!   server works on an (overlapping) working set of second-layer servers,
//!   attached together — one alliance per working set.
//!
//! A [`scenario::ScenarioConfig`] captures Table 1's parameters; constructors
//! exist for every figure. [`run_scenario`] turns a config plus a policy and
//! an attachment mode into a finished simulation run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// Table 1 parameters cross between counts and rates constantly; the rest
// are deliberate style choices
#![allow(
    clippy::assigning_clones,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::elidable_lifetime_names,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::manual_midpoint,
    clippy::missing_panics_doc,
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    clippy::similar_names,
    clippy::unreadable_literal,
    clippy::wildcard_imports
)]

pub mod scenario;
pub mod table1;

pub use scenario::ScenarioConfig;

use oml_core::attach::AttachmentMode;
use oml_core::ids::{NodeId, ObjectId};
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_net::{FaultConfig, Network};
use oml_sim::metrics::SimOutcome;
use oml_sim::{BlockParams, Simulation, SimulationBuilder};

/// Builds the simulation a scenario describes (without running it).
///
/// Placement conventions:
///
/// * client `i` sits on node `i mod D` (clients are sedentary, §4.1),
/// * servers fill nodes from the top (`D-1` downwards), so that in the
///   small worlds of Figs. 8/14 every node hosts one server — which yields
///   the paper's `1/C` chance of a local callee — while in the large worlds
///   of Figs. 12/16 servers and clients start mostly apart,
/// * working set `i` is the circular window `{S2[i], …, S2[i+w-1]}`, so
///   adjacent working sets overlap whenever `w > 1` — the §3.4 hazard,
/// * every attachment edge is tagged with working set `i`'s alliance, and
///   moves of `S1[i]` are invoked in that alliance (A-transitive mode uses
///   the tags; unrestricted mode ignores them; exclusive mode already
///   ignores second and later attachments per object).
///
/// # Panics
///
/// Panics if the scenario is inconsistent (see
/// [`scenario::ScenarioConfig::validate`]).
pub fn build_scenario(
    config: &ScenarioConfig,
    policy: PolicyKind,
    attachment: AttachmentMode,
    stopping: StoppingRule,
    seed: u64,
) -> Simulation {
    config.validate().expect("invalid scenario");

    let network = Network::paper(config.nodes).with_faults(
        FaultConfig::new(config.loss_probability, config.retransmit_timeout)
            .expect("scenario validation matches FaultConfig's rules"),
    );
    let mut b = SimulationBuilder::new(network)
        .policy(policy)
        .attachment_mode(attachment)
        .migration_duration(config.migration_duration)
        .stopping(stopping)
        .warmup(config.warmup_time)
        .seed(seed);

    let top = |j: u32| NodeId::new(config.nodes - 1 - (j % config.nodes));

    // first-layer servers
    let s1: Vec<ObjectId> = (0..config.servers1).map(|j| b.add_object(top(j))).collect();
    // second-layer servers continue filling from the top
    let s2: Vec<ObjectId> = (0..config.servers2)
        .map(|j| b.add_object(top(config.servers1 + j)))
        .collect();

    // working sets (Fig. 7): one alliance per first-layer server
    if !s2.is_empty() && config.working_set > 0 {
        for (i, &front) in s1.iter().enumerate() {
            let alliance = b.create_alliance(&format!("working-set-{i}"));
            b.join_alliance(alliance, front);
            let mut ws = Vec::new();
            for k in 0..config.working_set {
                let member = s2[(i + k as usize) % s2.len()];
                ws.push(member);
                b.join_alliance(alliance, member);
                // latch the second-layer server to its first-layer user;
                // under exclusive attachment later (overlapping) latches of
                // the same object are silently ignored — that is the policy.
                let _ = b
                    .attach(member, front, Some(alliance))
                    .expect("working-set attachment is well-formed");
            }
            b.set_nested_targets(front, ws);
            b.set_move_context(front, Some(alliance));
        }
    }

    for i in 0..config.clients {
        b.add_client(
            NodeId::new(i % config.nodes),
            s1.clone(),
            BlockParams {
                mean_calls: config.mean_calls,
                mean_think: config.mean_think,
                mean_gap: config.mean_gap,
            },
        );
    }

    b.build()
}

/// Builds and runs a scenario to completion (stopping rule or caps).
pub fn run_scenario(
    config: &ScenarioConfig,
    policy: PolicyKind,
    attachment: AttachmentMode,
    stopping: StoppingRule,
    seed: u64,
) -> SimOutcome {
    build_scenario(config, policy, attachment, stopping, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_sedentary_mean_is_four_thirds() {
        // §4.2.1: with D = C = S1 = 3 and one server per node, the mean
        // sedentary call time is 4/3 (2 messages, local with chance 1/3).
        let config = ScenarioConfig::fig8(30.0);
        let out = run_scenario(
            &config,
            PolicyKind::Sedentary,
            AttachmentMode::Unrestricted,
            StoppingRule {
                relative_precision: 0.01,
                confidence: 0.99,
                min_batches: 20,
                max_samples: 400_000,
            },
            11,
        );
        let mean = out.metrics.comm_time_per_call();
        assert!(
            (mean - 4.0 / 3.0).abs() < 0.03,
            "sedentary mean {mean} should be ≈ 4/3"
        );
    }

    #[test]
    fn build_scenario_places_clients_round_robin() {
        let config = ScenarioConfig::fig12(5);
        let sim = build_scenario(
            &config,
            PolicyKind::Sedentary,
            AttachmentMode::Unrestricted,
            StoppingRule::quick(),
            0,
        );
        // servers fill from the top of the 27 nodes
        assert_eq!(sim.object_node(ObjectId::new(0)), Some(NodeId::new(26)));
        assert_eq!(sim.object_node(ObjectId::new(1)), Some(NodeId::new(25)));
        assert_eq!(sim.object_node(ObjectId::new(2)), Some(NodeId::new(24)));
    }

    #[test]
    fn fig16_has_two_layers_and_alliances() {
        let config = ScenarioConfig::fig16(4);
        assert_eq!(config.servers1, 6);
        assert_eq!(config.servers2, 6);
        let sim = build_scenario(
            &config,
            PolicyKind::TransientPlacement,
            AttachmentMode::ATransitive,
            StoppingRule::quick(),
            0,
        );
        // 6 + 6 objects exist
        assert!(sim.object_node(ObjectId::new(11)).is_some());
    }

    #[test]
    fn run_scenario_produces_calls() {
        let mut cfg = ScenarioConfig::fig8(10.0);
        cfg.warmup_time = 0.0;
        let out = run_scenario(
            &cfg,
            PolicyKind::TransientPlacement,
            AttachmentMode::Unrestricted,
            StoppingRule::quick(),
            3,
        );
        assert!(out.metrics.calls > 1_000);
        assert!(out.metrics.comm_time_per_call() > 0.0);
    }
}
