//! # oml-workload — scenario generators for the paper's evaluation
//!
//! Builds the inter-object communication structures of §4.1:
//!
//! * **Fig. 6** (basic): `C` sedentary clients, each using every first-layer
//!   server; move-blocks operate inside the clients.
//! * **Fig. 7** (attachments): a second layer of servers; each first-layer
//!   server works on an (overlapping) working set of second-layer servers,
//!   attached together — one alliance per working set.
//!
//! A [`scenario::ScenarioConfig`] captures Table 1's parameters; constructors
//! exist for every figure. [`run_scenario`] turns a config plus a policy and
//! an attachment mode into a finished simulation run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// Table 1 parameters cross between counts and rates constantly; the rest
// are deliberate style choices
#![allow(
    clippy::assigning_clones,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::elidable_lifetime_names,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::manual_midpoint,
    clippy::missing_panics_doc,
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    clippy::similar_names,
    clippy::unreadable_literal,
    clippy::wildcard_imports
)]

pub mod mega;
pub mod scenario;
pub mod table1;
pub mod zipf;

pub use scenario::ScenarioConfig;

use oml_core::attach::AttachmentMode;
use oml_core::ids::{NodeId, ObjectId};
use oml_core::policy::PolicyKind;
use oml_des::par::parallel_map;
use oml_des::stats::{replication_seed, StoppingRule};
use oml_net::{FaultConfig, Network};
use oml_sim::metrics::{ReplicationAggregate, SimOutcome};
use oml_sim::{BlockParams, Simulation, SimulationBuilder};

/// Builds the simulation a scenario describes (without running it).
///
/// Placement conventions:
///
/// * client `i` sits on node `i mod D` (clients are sedentary, §4.1),
/// * servers fill nodes from the top (`D-1` downwards), so that in the
///   small worlds of Figs. 8/14 every node hosts one server — which yields
///   the paper's `1/C` chance of a local callee — while in the large worlds
///   of Figs. 12/16 servers and clients start mostly apart,
/// * working set `i` is the circular window `{S2[i], …, S2[i+w-1]}`, so
///   adjacent working sets overlap whenever `w > 1` — the §3.4 hazard,
/// * every attachment edge is tagged with working set `i`'s alliance, and
///   moves of `S1[i]` are invoked in that alliance (A-transitive mode uses
///   the tags; unrestricted mode ignores them; exclusive mode already
///   ignores second and later attachments per object).
///
/// # Panics
///
/// Panics if the scenario is inconsistent (see
/// [`scenario::ScenarioConfig::validate`]).
pub fn build_scenario(
    config: &ScenarioConfig,
    policy: PolicyKind,
    attachment: AttachmentMode,
    stopping: StoppingRule,
    seed: u64,
) -> Simulation {
    config.validate().expect("invalid scenario");

    let network = Network::paper(config.nodes).with_faults(
        FaultConfig::new(config.loss_probability, config.retransmit_timeout)
            .expect("scenario validation matches FaultConfig's rules"),
    );
    let mut b = SimulationBuilder::new(network)
        .policy(policy)
        .attachment_mode(attachment)
        .migration_duration(config.migration_duration)
        .stopping(stopping)
        .warmup(config.warmup_time)
        .seed(seed);

    let top = |j: u32| NodeId::new(config.nodes - 1 - (j % config.nodes));

    // first-layer servers
    let s1: Vec<ObjectId> = (0..config.servers1).map(|j| b.add_object(top(j))).collect();
    // second-layer servers continue filling from the top
    let s2: Vec<ObjectId> = (0..config.servers2)
        .map(|j| b.add_object(top(config.servers1 + j)))
        .collect();

    // working sets (Fig. 7): one alliance per first-layer server
    if !s2.is_empty() && config.working_set > 0 {
        for (i, &front) in s1.iter().enumerate() {
            let alliance = b.create_alliance(&format!("working-set-{i}"));
            b.join_alliance(alliance, front);
            let mut ws = Vec::new();
            for k in 0..config.working_set {
                let member = s2[(i + k as usize) % s2.len()];
                ws.push(member);
                b.join_alliance(alliance, member);
                // latch the second-layer server to its first-layer user;
                // under exclusive attachment later (overlapping) latches of
                // the same object are silently ignored — that is the policy.
                let _ = b
                    .attach(member, front, Some(alliance))
                    .expect("working-set attachment is well-formed");
            }
            b.set_nested_targets(front, ws);
            b.set_move_context(front, Some(alliance));
        }
    }

    for i in 0..config.clients {
        b.add_client(
            NodeId::new(i % config.nodes),
            s1.clone(),
            BlockParams {
                mean_calls: config.mean_calls,
                mean_think: config.mean_think,
                mean_gap: config.mean_gap,
            },
        );
    }

    b.build()
}

/// Builds and runs a scenario to completion (stopping rule or caps).
pub fn run_scenario(
    config: &ScenarioConfig,
    policy: PolicyKind,
    attachment: AttachmentMode,
    stopping: StoppingRule,
    seed: u64,
) -> SimOutcome {
    build_scenario(config, policy, attachment, stopping, seed).run()
}

/// Replications launched per round of the parallel replication runner.
///
/// A fixed round width keeps the set of replications — and therefore the
/// merged statistics — independent of the worker count; it is also the
/// natural parallel grain (8 saturates the default thread cap).
pub const REPLICATIONS_PER_ROUND: u64 = 8;

/// The per-call sample batch size `build_scenario` worlds use (the
/// `SimulationBuilder` default).
pub const SCENARIO_BATCH_SIZE: u64 = 500;

/// Samples each replication contributes before the round is re-evaluated.
///
/// Chunks are whole multiples of the batch size, so every replication hands
/// the aggregate only *completed* batches and the merged batch means are
/// exact (see `BatchMeans::merge`). The chunk adapts to the rule's sample
/// cap so quick runs stay quick while paper-precision runs amortize their
/// per-replication warm-up.
#[must_use]
pub fn replication_chunk(stopping: &StoppingRule) -> u64 {
    (stopping.max_samples / 16)
        .max(4 * SCENARIO_BATCH_SIZE)
        .div_ceil(SCENARIO_BATCH_SIZE)
        * SCENARIO_BATCH_SIZE
}

/// Runs a scenario as **independent replications fanned across threads**,
/// merged into one estimate — the multi-core counterpart of
/// [`run_scenario`].
///
/// Replication `i` runs the full scenario under seed
/// [`replication_seed`]`(seed, i)` with a fixed sample chunk
/// ([`replication_chunk`]); rounds of [`REPLICATIONS_PER_ROUND`] run via
/// [`parallel_map`] until the merged batch means satisfy `stopping` (its
/// precision on the pooled confidence interval, its `max_samples` as the
/// pooled cap). Because the replication set, their seeds, and the merge
/// order depend only on `(config, stopping, seed)` — never on `threads` —
/// the returned aggregate is **bit-identical at any thread count**; see
/// DESIGN.md §13 for the full argument.
///
/// Compared to the single-run batch-means path this pays one warm-up per
/// replication but decorrelates the batches (independent seeds), and it
/// scales to as many cores as a round has replications.
///
/// # Panics
///
/// Panics if the scenario is inconsistent.
#[must_use]
pub fn run_scenario_replicated(
    config: &ScenarioConfig,
    policy: PolicyKind,
    attachment: AttachmentMode,
    stopping: StoppingRule,
    seed: u64,
    threads: usize,
) -> ReplicationAggregate {
    let chunk = replication_chunk(&stopping);
    // each replication runs exactly `chunk` samples: precision is judged on
    // the pooled estimate only, so the per-run rule is just the cap
    let per_rep = StoppingRule {
        min_batches: u64::MAX,
        max_samples: chunk,
        ..stopping
    };
    let mut agg = ReplicationAggregate::new();
    let mut next_rep: u64 = 0;
    loop {
        let outs = parallel_map(REPLICATIONS_PER_ROUND as usize, threads, |j| {
            let rep_seed = replication_seed(seed, next_rep + j as u64);
            run_scenario(config, policy, attachment, per_rep, rep_seed)
        });
        for out in &outs {
            agg.absorb(out);
        }
        next_rep += REPLICATIONS_PER_ROUND;
        if agg.should_stop(&stopping) {
            return agg;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_sedentary_mean_is_four_thirds() {
        // §4.2.1: with D = C = S1 = 3 and one server per node, the mean
        // sedentary call time is 4/3 (2 messages, local with chance 1/3).
        let config = ScenarioConfig::fig8(30.0);
        let out = run_scenario(
            &config,
            PolicyKind::Sedentary,
            AttachmentMode::Unrestricted,
            StoppingRule {
                relative_precision: 0.01,
                confidence: 0.99,
                min_batches: 20,
                max_samples: 400_000,
            },
            11,
        );
        let mean = out.metrics.comm_time_per_call();
        assert!(
            (mean - 4.0 / 3.0).abs() < 0.03,
            "sedentary mean {mean} should be ≈ 4/3"
        );
    }

    #[test]
    fn build_scenario_places_clients_round_robin() {
        let config = ScenarioConfig::fig12(5);
        let sim = build_scenario(
            &config,
            PolicyKind::Sedentary,
            AttachmentMode::Unrestricted,
            StoppingRule::quick(),
            0,
        );
        // servers fill from the top of the 27 nodes
        assert_eq!(sim.object_node(ObjectId::new(0)), Some(NodeId::new(26)));
        assert_eq!(sim.object_node(ObjectId::new(1)), Some(NodeId::new(25)));
        assert_eq!(sim.object_node(ObjectId::new(2)), Some(NodeId::new(24)));
    }

    #[test]
    fn fig16_has_two_layers_and_alliances() {
        let config = ScenarioConfig::fig16(4);
        assert_eq!(config.servers1, 6);
        assert_eq!(config.servers2, 6);
        let sim = build_scenario(
            &config,
            PolicyKind::TransientPlacement,
            AttachmentMode::ATransitive,
            StoppingRule::quick(),
            0,
        );
        // 6 + 6 objects exist
        assert!(sim.object_node(ObjectId::new(11)).is_some());
    }

    #[test]
    fn replicated_runner_is_thread_count_invariant() {
        let config = ScenarioConfig::fig8(10.0);
        let rule = StoppingRule {
            relative_precision: 1e-9,
            confidence: 0.99,
            min_batches: u64::MAX,
            max_samples: 4_000,
        };
        let run = |threads| {
            run_scenario_replicated(
                &config,
                PolicyKind::ConventionalMigration,
                AttachmentMode::Unrestricted,
                rule,
                0xfeed,
                threads,
            )
        };
        let one = run(1);
        assert_eq!(one.replications, REPLICATIONS_PER_ROUND);
        assert!(one.sample_count() >= rule.max_samples);
        for threads in [2, 4] {
            let many = run(threads);
            assert_eq!(many.events, one.events, "threads = {threads}");
            assert_eq!(many.replications, one.replications);
            assert_eq!(many.sample_count(), one.sample_count());
            let (a, b) = (one.row(), many.row());
            assert_eq!(a.comm_time.to_bits(), b.comm_time.to_bits());
            assert_eq!(a.call_p95.to_bits(), b.call_p95.to_bits());
            assert_eq!(
                a.ci_half_width.map(f64::to_bits),
                b.ci_half_width.map(f64::to_bits)
            );
            assert_eq!(a.calls, b.calls);
        }
    }

    #[test]
    fn run_scenario_produces_calls() {
        let mut cfg = ScenarioConfig::fig8(10.0);
        cfg.warmup_time = 0.0;
        let out = run_scenario(
            &cfg,
            PolicyKind::TransientPlacement,
            AttachmentMode::Unrestricted,
            StoppingRule::quick(),
            3,
        );
        assert!(out.metrics.calls > 1_000);
        assert!(out.metrics.comm_time_per_call() > 0.0);
    }
}
