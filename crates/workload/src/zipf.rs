//! Zipf-distributed object popularity.
//!
//! The mega scenario needs a popularity law over millions of objects:
//! `P(rank = k) ∝ k^{-s}`. A CDF table at that scale costs memory and cache
//! misses, so this sampler uses **rejection inversion** (Hörmann &
//! Derflinger, "Rejection-inversion to generate variates from monotone
//! discrete distributions", 1996): invert the integral of the continuous
//! envelope `h(x) = x^{-s}`, round to the nearest integer rank, and accept
//! with a test that is exact for the discrete target. Setup is O(1), each
//! sample is O(1) expected with a handful of float ops, and the only input
//! is the simulation's own seeded [`SimRng`] — so the sample stream is a
//! pure function of the seed.

use oml_des::SimRng;

/// A sampler for `P(rank = k) ∝ k^{-s}` over ranks `1..=n`.
///
/// # Example
///
/// ```
/// use oml_des::SimRng;
/// use oml_workload::zipf::Zipf;
///
/// let zipf = Zipf::new(1_000, 1.0);
/// let mut rng = SimRng::seed_from(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1_000).contains(&rank));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    /// `H(1.5) - h(1)`: the left edge of the inversion interval.
    h_x1: f64,
    /// `H(n + 0.5)`: the right edge of the inversion interval.
    h_n: f64,
    /// Shortcut acceptance threshold `2 - H⁻¹(H(2.5) - h(2))`.
    shortcut: f64,
}

impl Zipf {
    /// Creates a sampler over ranks `1..=n` with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the exponent is not a positive, finite number.
    #[must_use]
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n > 0, "a Zipf law needs at least one rank");
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "Zipf exponent must be positive and finite, got {exponent}"
        );
        let mut z = Zipf {
            n,
            exponent,
            h_x1: 0.0,
            h_n: 0.0,
            shortcut: 0.0,
        };
        z.h_x1 = z.h_integral(1.5) - z.h(1.0);
        z.h_n = z.h_integral(n as f64 + 0.5);
        z.shortcut = 2.0 - z.h_integral_inverse(z.h_integral(2.5) - z.h(2.0));
        z
    }

    /// Number of ranks.
    #[must_use]
    pub fn ranks(&self) -> u64 {
        self.n
    }

    /// The exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The envelope density `h(x) = x^{-s}`.
    fn h(&self, x: f64) -> f64 {
        x.powf(-self.exponent)
    }

    /// `H(x) = ∫ h`, continuous and strictly increasing.
    fn h_integral(&self, x: f64) -> f64 {
        if self.exponent == 1.0 {
            x.ln()
        } else {
            (x.powf(1.0 - self.exponent) - 1.0) / (1.0 - self.exponent)
        }
    }

    /// `H⁻¹(u)`, the inverse of [`Zipf::h_integral`].
    fn h_integral_inverse(&self, u: f64) -> f64 {
        if self.exponent == 1.0 {
            u.exp()
        } else {
            // clamp guards the tail against rounding below the domain edge
            let t = (u * (1.0 - self.exponent)).max(-1.0);
            (1.0 + t).powf(1.0 / (1.0 - self.exponent))
        }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            // u uniform on (h_x1, h_n]; H⁻¹ maps it back onto the envelope
            let u = self.h_n + rng.unit() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inverse(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // the shortcut accepts the bulk; the exact test handles the rest
            if k - x <= self.shortcut || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn frequencies(n: u64, exponent: f64, samples: u64, seed: u64) -> Vec<u64> {
        let zipf = Zipf::new(n, exponent);
        let mut rng = SimRng::seed_from(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            counts[(zipf.sample(&mut rng) - 1) as usize] += 1;
        }
        counts
    }

    #[test]
    fn rank_frequency_follows_the_power_law() {
        // with s = 1, rank 1 should be ~2x rank 2 and ~4x rank 4
        let counts = frequencies(1_000, 1.0, 200_000, 0x5eed);
        let ratio21 = counts[0] as f64 / counts[1] as f64;
        let ratio41 = counts[0] as f64 / counts[3] as f64;
        assert!((ratio21 - 2.0).abs() < 0.2, "f(1)/f(2) = {ratio21}");
        assert!((ratio41 - 4.0).abs() < 0.4, "f(1)/f(4) = {ratio41}");
    }

    #[test]
    fn steeper_exponent_concentrates_mass() {
        let flat = frequencies(100, 0.5, 50_000, 1);
        let steep = frequencies(100, 2.0, 50_000, 1);
        assert!(steep[0] > flat[0], "steeper law must favor rank 1 more");
        // s = 2 puts ~61% of all mass on rank 1 (1/ζ(2) ≈ 0.608)
        assert!(steep[0] as f64 / 50_000.0 > 0.55);
    }

    #[test]
    fn single_rank_is_degenerate() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn million_rank_sampling_is_cheap_and_in_range() {
        let zipf = Zipf::new(1_000_000, 1.0);
        let mut rng = SimRng::seed_from(9);
        let mut max_seen = 0;
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=1_000_000).contains(&k));
            max_seen = max_seen.max(k);
        }
        // the tail is thin but not dead: some sample lands past rank 10⁴
        assert!(max_seen > 10_000, "max rank seen: {max_seen}");
    }

    proptest! {
        #[test]
        fn samples_stay_in_range_and_replay_exactly(
            n in 1u64..50_000,
            exponent in 0.2f64..3.0,
            seed in any::<u64>(),
        ) {
            let zipf = Zipf::new(n, exponent);
            let mut a = SimRng::seed_from(seed);
            let mut b = SimRng::seed_from(seed);
            for _ in 0..64 {
                let ka = zipf.sample(&mut a);
                let kb = zipf.sample(&mut b);
                // deterministic: the same seed yields the same rank stream
                prop_assert_eq!(ka, kb);
                prop_assert!((1..=n).contains(&ka));
            }
        }

        #[test]
        fn head_outweighs_tail(seed in any::<u64>()) {
            // rank-frequency sanity under any seed: the first decile of
            // ranks collects most samples at s = 1.2
            let counts = frequencies(100, 1.2, 2_000, seed);
            let head: u64 = counts[..10].iter().sum();
            let tail: u64 = counts[10..].iter().sum();
            prop_assert!(head > tail, "head {} vs tail {}", head, tail);
        }
    }
}
