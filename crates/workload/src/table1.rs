//! Table 1 of the paper: the simulation-parameter glossary, as data.

use crate::ScenarioConfig;
use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The paper's symbol (D, C, S₁, S₂, M, N, t_i, t_m, —).
    pub symbol: &'static str,
    /// Description.
    pub description: &'static str,
    /// Distribution ("fixed" or "exp.").
    pub distribution: &'static str,
}

/// The rows of Table 1, in the paper's order.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            symbol: "D",
            description: "Number of Nodes",
            distribution: "fixed",
        },
        Table1Row {
            symbol: "C",
            description: "Number of clients",
            distribution: "fixed",
        },
        Table1Row {
            symbol: "S1",
            description: "Number of 1st layer servers",
            distribution: "fixed",
        },
        Table1Row {
            symbol: "S2",
            description: "Number of 2nd layer servers",
            distribution: "fixed",
        },
        Table1Row {
            symbol: "M",
            description: "Migration duration for servers",
            distribution: "fixed",
        },
        Table1Row {
            symbol: "N",
            description: "Number of calls in a move-block",
            distribution: "exp.",
        },
        Table1Row {
            symbol: "t_i",
            description: "Time between two calls in a block",
            distribution: "exp.",
        },
        Table1Row {
            symbol: "t_m",
            description: "Time between two move blocks",
            distribution: "exp.",
        },
        Table1Row {
            symbol: "-",
            description: "Duration of a remote call",
            distribution: "exp. (1)",
        },
    ]
}

/// The value a scenario assigns to a Table 1 symbol, rendered for display.
#[must_use]
pub fn value_for(config: &ScenarioConfig, symbol: &str) -> String {
    match symbol {
        "D" => config.nodes.to_string(),
        "C" => config.clients.to_string(),
        "S1" => config.servers1.to_string(),
        "S2" => config.servers2.to_string(),
        "M" => format!("{}", config.migration_duration),
        "N" => format!("mean({})", config.mean_calls),
        "t_i" => format!("mean({})", config.mean_think),
        "t_m" => format!("mean({})", config.mean_gap),
        "-" => "mean(1)".to_owned(),
        other => format!("<unknown symbol {other}>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_nine_rows_like_the_paper() {
        assert_eq!(table1().len(), 9);
    }

    #[test]
    fn symbols_are_unique() {
        let rows = table1();
        let mut symbols: Vec<&str> = rows.iter().map(|r| r.symbol).collect();
        symbols.sort_unstable();
        symbols.dedup();
        assert_eq!(symbols.len(), rows.len());
    }

    #[test]
    fn values_render_for_every_symbol() {
        let cfg = ScenarioConfig::fig16(4);
        for row in table1() {
            let v = value_for(&cfg, row.symbol);
            assert!(!v.contains("unknown"), "{}: {v}", row.symbol);
        }
        assert_eq!(value_for(&cfg, "D"), "24");
        assert_eq!(value_for(&cfg, "N"), "mean(6)");
    }

    #[test]
    fn unknown_symbol_is_flagged() {
        let cfg = ScenarioConfig::fig8(1.0);
        assert!(value_for(&cfg, "X").contains("unknown"));
    }
}
