//! Scenario configurations: Table 1's parameters plus each figure's values.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The complete parameterization of one simulated world (Table 1).
///
/// | Field | Table 1 | Meaning |
/// |---|---|---|
/// | `nodes` | D | number of nodes (fixed) |
/// | `clients` | C | number of clients (fixed) |
/// | `servers1` | S₁ | first-layer servers (fixed) |
/// | `servers2` | S₂ | second-layer servers (fixed) |
/// | `migration_duration` | M | migration duration for servers (fixed) |
/// | `mean_calls` | N | calls per move-block (exponential) |
/// | `mean_think` | t_i | time between two calls in a block (exponential) |
/// | `mean_gap` | t_m | time between two move-blocks (exponential) |
///
/// The remote-call duration is fixed by normalization: exponential with
/// mean 1 (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Human-readable scenario name.
    pub name: String,
    /// `D` — number of nodes.
    pub nodes: u32,
    /// `C` — number of clients.
    pub clients: u32,
    /// `S₁` — first-layer servers.
    pub servers1: u32,
    /// `S₂` — second-layer servers (0 for the basic Fig. 6 structure).
    pub servers2: u32,
    /// `M` — migration duration of a unit-size server.
    pub migration_duration: f64,
    /// `N` — mean calls per move-block.
    pub mean_calls: f64,
    /// `t_i` — mean think time between calls.
    pub mean_think: f64,
    /// `t_m` — mean gap between move-blocks.
    pub mean_gap: f64,
    /// Size `w` of each first-layer server's second-layer working set;
    /// adjacent working sets overlap when `w > 1` (§3.4's hazard).
    pub working_set: u32,
    /// Simulated warm-up time excluded from metrics.
    pub warmup_time: f64,
    /// Probability that one remote message transmission is lost (each lost
    /// attempt costs [`ScenarioConfig::retransmit_timeout`]); 0 = the
    /// paper's reliable network.
    #[serde(default)]
    pub loss_probability: f64,
    /// Sender's retransmission timeout, in normalized message-time units.
    #[serde(default)]
    pub retransmit_timeout: f64,
}

impl ScenarioConfig {
    /// Figs. 8–11 (parameters of Fig. 9): `D=3, C=3, S₁=3, S₂=0, M=6,
    /// N~exp(8), t_i~exp(1)`, `t_m` swept along the x-axis.
    #[must_use]
    pub fn fig8(mean_gap: f64) -> Self {
        ScenarioConfig {
            name: format!("fig8(t_m={mean_gap})"),
            nodes: 3,
            clients: 3,
            servers1: 3,
            servers2: 0,
            migration_duration: 6.0,
            mean_calls: 8.0,
            mean_think: 1.0,
            mean_gap,
            working_set: 0,
            warmup_time: 500.0,
            loss_probability: 0.0,
            retransmit_timeout: 0.0,
        }
    }

    /// Figs. 12–13: `D=27, S₁=3, S₂=0, M=6, N~exp(8), t_i~exp(1),
    /// t_m~exp(30)`, the client count swept along the x-axis.
    #[must_use]
    pub fn fig12(clients: u32) -> Self {
        ScenarioConfig {
            name: format!("fig12(C={clients})"),
            nodes: 27,
            clients,
            servers1: 3,
            servers2: 0,
            migration_duration: 6.0,
            mean_calls: 8.0,
            mean_think: 1.0,
            mean_gap: 30.0,
            working_set: 0,
            warmup_time: 500.0,
            loss_probability: 0.0,
            retransmit_timeout: 0.0,
        }
    }

    /// Figs. 14–15 (dynamic policies): like Fig. 12 but on the small
    /// three-node world (`D=3`).
    #[must_use]
    pub fn fig14(clients: u32) -> Self {
        ScenarioConfig {
            name: format!("fig14(C={clients})"),
            nodes: 3,
            clients,
            servers1: 3,
            servers2: 0,
            migration_duration: 6.0,
            mean_calls: 8.0,
            mean_think: 1.0,
            mean_gap: 30.0,
            working_set: 0,
            warmup_time: 500.0,
            loss_probability: 0.0,
            retransmit_timeout: 0.0,
        }
    }

    /// Figs. 16–17 (attachments): `D=24, S₁=6, S₂=6, M=6, N~exp(6),
    /// t_i~exp(1), t_m~exp(30)`, overlapping working sets of size 2.
    #[must_use]
    pub fn fig16(clients: u32) -> Self {
        ScenarioConfig {
            name: format!("fig16(C={clients})"),
            nodes: 24,
            clients,
            servers1: 6,
            servers2: 6,
            migration_duration: 6.0,
            mean_calls: 6.0,
            mean_think: 1.0,
            mean_gap: 30.0,
            working_set: 2,
            warmup_time: 500.0,
            loss_probability: 0.0,
            retransmit_timeout: 0.0,
        }
    }

    /// Builder-style: degrade the network with message loss — each remote
    /// transmission is lost with probability `loss` and retransmitted after
    /// `retransmit_timeout` normalized time units (see
    /// [`oml_net::FaultConfig`]).
    #[must_use]
    pub fn with_loss(mut self, loss: f64, retransmit_timeout: f64) -> Self {
        self.loss_probability = loss;
        self.retransmit_timeout = retransmit_timeout;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.nodes == 0 {
            return Err(ScenarioError("a scenario needs at least one node"));
        }
        if self.clients == 0 {
            return Err(ScenarioError("a scenario needs at least one client"));
        }
        if self.servers1 == 0 {
            return Err(ScenarioError("a scenario needs first-layer servers"));
        }
        if self.working_set > 0 && self.servers2 == 0 {
            return Err(ScenarioError("working sets require second-layer servers"));
        }
        if self.working_set as usize > self.servers2.max(1) as usize {
            return Err(ScenarioError("working sets cannot exceed the second layer"));
        }
        if !(self.migration_duration.is_finite() && self.migration_duration > 0.0) {
            return Err(ScenarioError("migration duration must be positive"));
        }
        for (v, what) in [
            (self.mean_calls, "mean calls"),
            (self.mean_think, "mean think time"),
            (self.mean_gap, "mean gap"),
            (self.warmup_time, "warm-up time"),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(ScenarioError(match what {
                    "mean calls" => "mean calls must be non-negative",
                    "mean think time" => "mean think time must be non-negative",
                    "mean gap" => "mean gap must be non-negative",
                    _ => "warm-up time must be non-negative",
                }));
            }
        }
        // The paper's sensibility requirement is "mean N bigger than M"
        // (§4.1) — yet its own Fig. 17 parameters use N = mean(6) with
        // M = 6, so `≥` is what the paper actually enforces.
        if self.mean_calls > 0.0 && self.mean_calls < self.migration_duration {
            return Err(ScenarioError(
                "move-blocks must be sensible: mean calls must reach the migration duration",
            ));
        }
        // mirror oml_net::FaultConfig::new's rules so a config file fails
        // here, not when the network is built
        if !(0.0..1.0).contains(&self.loss_probability) {
            return Err(ScenarioError("loss probability must lie in [0, 1)"));
        }
        if !(self.retransmit_timeout.is_finite() && self.retransmit_timeout >= 0.0) {
            return Err(ScenarioError("retransmit timeout must be non-negative"));
        }
        if self.loss_probability > 0.0 && self.retransmit_timeout == 0.0 {
            return Err(ScenarioError(
                "a lossy network needs a positive retransmit timeout",
            ));
        }
        Ok(())
    }
}

impl ScenarioConfig {
    /// Serializes to a simple `key = value` text format (one key per line,
    /// `#` comments) — a dependency-free way to keep scenarios in files.
    ///
    /// # Example
    ///
    /// ```
    /// use oml_workload::ScenarioConfig;
    ///
    /// let cfg = ScenarioConfig::fig16(8);
    /// let text = cfg.to_config_text();
    /// let back = ScenarioConfig::from_config_text(&text).unwrap();
    /// assert_eq!(cfg, back);
    /// ```
    #[must_use]
    pub fn to_config_text(&self) -> String {
        format!(
            "# oml scenario (Table 1 parameters)\n\
             name = {}\n\
             nodes = {}\n\
             clients = {}\n\
             servers1 = {}\n\
             servers2 = {}\n\
             migration_duration = {}\n\
             mean_calls = {}\n\
             mean_think = {}\n\
             mean_gap = {}\n\
             working_set = {}\n\
             warmup_time = {}\n\
             loss_probability = {}\n\
             retransmit_timeout = {}\n",
            self.name,
            self.nodes,
            self.clients,
            self.servers1,
            self.servers2,
            self.migration_duration,
            self.mean_calls,
            self.mean_think,
            self.mean_gap,
            self.working_set,
            self.warmup_time,
            self.loss_probability,
            self.retransmit_timeout,
        )
    }

    /// Parses the `key = value` format written by
    /// [`ScenarioConfig::to_config_text`]. Unknown keys are rejected,
    /// missing keys fall back to the Fig. 8 defaults, and the result is
    /// validated.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] for malformed lines, unknown keys, bad
    /// numbers or an inconsistent scenario.
    pub fn from_config_text(text: &str) -> Result<ScenarioConfig, ScenarioError> {
        let mut cfg = ScenarioConfig::fig8(30.0);
        cfg.name = "custom".to_owned();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(ScenarioError("expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            let parse_u32 = |v: &str| {
                v.parse::<u32>()
                    .map_err(|_| ScenarioError("bad integer value"))
            };
            let parse_f64 = |v: &str| {
                v.parse::<f64>()
                    .map_err(|_| ScenarioError("bad numeric value"))
            };
            match key {
                "name" => cfg.name = value.to_owned(),
                "nodes" => cfg.nodes = parse_u32(value)?,
                "clients" => cfg.clients = parse_u32(value)?,
                "servers1" => cfg.servers1 = parse_u32(value)?,
                "servers2" => cfg.servers2 = parse_u32(value)?,
                "migration_duration" => cfg.migration_duration = parse_f64(value)?,
                "mean_calls" => cfg.mean_calls = parse_f64(value)?,
                "mean_think" => cfg.mean_think = parse_f64(value)?,
                "mean_gap" => cfg.mean_gap = parse_f64(value)?,
                "working_set" => cfg.working_set = parse_u32(value)?,
                "warmup_time" => cfg.warmup_time = parse_f64(value)?,
                "loss_probability" => cfg.loss_probability = parse_f64(value)?,
                "retransmit_timeout" => cfg.retransmit_timeout = parse_f64(value)?,
                _ => return Err(ScenarioError("unknown scenario key")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// A scenario-consistency violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioError(&'static str);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_constructors_match_the_parameter_boxes() {
        let f8 = ScenarioConfig::fig8(42.0);
        assert_eq!(
            (f8.nodes, f8.clients, f8.servers1, f8.servers2),
            (3, 3, 3, 0)
        );
        assert_eq!(f8.migration_duration, 6.0);
        assert_eq!(f8.mean_calls, 8.0);
        assert_eq!(f8.mean_gap, 42.0);

        let f12 = ScenarioConfig::fig12(10);
        assert_eq!((f12.nodes, f12.clients, f12.servers1), (27, 10, 3));
        assert_eq!(f12.mean_gap, 30.0);

        let f14 = ScenarioConfig::fig14(7);
        assert_eq!((f14.nodes, f14.clients), (3, 7));

        let f16 = ScenarioConfig::fig16(12);
        assert_eq!((f16.nodes, f16.servers1, f16.servers2), (24, 6, 6));
        assert_eq!(f16.mean_calls, 6.0);
        assert_eq!(f16.working_set, 2);
    }

    #[test]
    fn all_figure_configs_validate() {
        for cfg in [
            ScenarioConfig::fig8(0.0),
            ScenarioConfig::fig8(100.0),
            ScenarioConfig::fig12(25),
            ScenarioConfig::fig14(24),
            ScenarioConfig::fig16(12),
        ] {
            cfg.validate().expect("figure configs are valid");
        }
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut c = ScenarioConfig::fig8(10.0);
        c.clients = 0;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::fig8(10.0);
        c.mean_calls = 3.0; // not sensible vs M = 6
        assert!(c.validate().unwrap_err().to_string().contains("sensible"));

        let mut c = ScenarioConfig::fig16(3);
        c.working_set = 9; // exceeds S2 = 6
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::fig8(10.0);
        c.servers2 = 0;
        c.working_set = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn loss_parameters_validate_and_round_trip() {
        let cfg = ScenarioConfig::fig8(30.0).with_loss(0.1, 4.0);
        cfg.validate().unwrap();
        let back = ScenarioConfig::from_config_text(&cfg.to_config_text()).unwrap();
        assert_eq!(cfg, back);

        assert!(ScenarioConfig::fig8(30.0)
            .with_loss(1.0, 4.0)
            .validate()
            .is_err());
        assert!(ScenarioConfig::fig8(30.0)
            .with_loss(-0.1, 4.0)
            .validate()
            .is_err());
        let err = ScenarioConfig::fig8(30.0)
            .with_loss(0.1, 0.0)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("retransmit"), "{err}");
    }

    #[test]
    fn config_text_round_trips_every_preset() {
        for cfg in [
            ScenarioConfig::fig8(42.0),
            ScenarioConfig::fig12(7),
            ScenarioConfig::fig14(3),
            ScenarioConfig::fig16(5).with_loss(0.05, 6.0),
        ] {
            let text = cfg.to_config_text();
            let back = ScenarioConfig::from_config_text(&text).unwrap();
            assert_eq!(cfg, back, "{text}");
        }
    }

    #[test]
    fn config_text_accepts_comments_and_partial_keys() {
        let cfg = ScenarioConfig::from_config_text(
            "# my scenario\n\
             clients = 5\n\
             \n\
             mean_gap = 12.5\n",
        )
        .unwrap();
        assert_eq!(cfg.clients, 5);
        assert_eq!(cfg.mean_gap, 12.5);
        // everything else keeps the fig8 defaults
        assert_eq!(cfg.nodes, 3);
        assert_eq!(cfg.mean_calls, 8.0);
    }

    #[test]
    fn config_text_rejects_garbage() {
        assert!(ScenarioConfig::from_config_text("nonsense line").is_err());
        assert!(ScenarioConfig::from_config_text("wibble = 3").is_err());
        assert!(ScenarioConfig::from_config_text("clients = many").is_err());
        // parses but fails validation (insensible block)
        assert!(ScenarioConfig::from_config_text("mean_calls = 1").is_err());
    }

    #[test]
    fn configs_serialize_round_trip() {
        let cfg = ScenarioConfig::fig16(8);
        let json = serde_json_like(&cfg);
        assert!(json.contains("fig16"));
    }

    // serde_json is not among the allowed dependencies; exercise Serialize
    // through the Debug representation instead (the derive is still used by
    // downstream tooling).
    fn serde_json_like(cfg: &ScenarioConfig) -> String {
        format!("{cfg:?}")
    }
}
