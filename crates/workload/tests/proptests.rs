//! Property-based tests over scenario configuration.

use oml_workload::ScenarioConfig;
use proptest::prelude::*;

fn any_valid_config() -> impl Strategy<Value = ScenarioConfig> {
    (
        1u32..40,   // nodes
        1u32..30,   // clients
        1u32..8,    // servers1
        0u32..8,    // servers2
        1.0..10.0,  // migration duration
        0.0..4.0,   // think
        0.0..100.0, // gap
        0u32..4,    // working set
        "[a-z]{1,12}",
    )
        .prop_map(
            |(nodes, clients, s1, s2, m, think, gap, ws, name)| ScenarioConfig {
                name,
                nodes,
                clients,
                servers1: s1,
                servers2: s2,
                migration_duration: m,
                // keep the sensibility invariant N ≥ M
                mean_calls: m + 2.0,
                mean_think: think,
                mean_gap: gap,
                working_set: if s2 == 0 { 0 } else { ws.min(s2) },
                warmup_time: 10.0,
                loss_probability: 0.0,
                retransmit_timeout: 0.0,
            },
        )
}

proptest! {
    /// Every generated config validates and round-trips through the
    /// key = value text format losslessly.
    #[test]
    fn config_text_round_trips(cfg in any_valid_config()) {
        cfg.validate().expect("generated configs are valid");
        let text = cfg.to_config_text();
        let back = ScenarioConfig::from_config_text(&text).expect("parses back");
        prop_assert_eq!(cfg, back);
    }

    /// Parsing is insensitive to whitespace and comment noise.
    #[test]
    fn config_text_survives_noise(cfg in any_valid_config(), noise in "[ \t]{0,4}") {
        let noisy: String = cfg
            .to_config_text()
            .lines()
            .flat_map(|l| [format!("{noise}{l}{noise}"), "# noise".to_owned()])
            .collect::<Vec<_>>()
            .join("\n");
        let back = ScenarioConfig::from_config_text(&noisy).expect("parses back");
        prop_assert_eq!(cfg, back);
    }

    /// Table 1 values render for every symbol on every config.
    #[test]
    fn table1_values_always_render(cfg in any_valid_config()) {
        for row in oml_workload::table1::table1() {
            let v = oml_workload::table1::value_for(&cfg, row.symbol);
            prop_assert!(!v.is_empty());
            prop_assert!(!v.contains("unknown"));
        }
    }
}
