//! Property-based tests over topologies and latency models.

use oml_core::ids::NodeId;
use oml_des::SimRng;
use oml_net::{LatencyModel, Network, Topology};
use proptest::prelude::*;

fn any_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (3u32..12).prop_map(|n| Topology::FullMesh { nodes: n }),
        (3u32..12).prop_map(|n| Topology::Star { nodes: n }),
        (3u32..12).prop_map(|n| Topology::Ring { nodes: n }),
        (2u32..5, 2u32..5).prop_map(|(w, h)| Topology::Torus {
            width: w,
            height: h
        }),
        (3u32..12).prop_map(|n| Topology::Line { nodes: n }),
        (3u32..10, 0u32..8, any::<u64>()).prop_map(|(n, e, s)| Topology::random(n, e, s)),
    ]
}

proptest! {
    /// Hops are a metric-like function: zero iff equal, symmetric, bounded
    /// by the diameter, and satisfy the triangle inequality.
    #[test]
    fn hops_behave_like_a_metric(topo in any_topology()) {
        let d = topo.diameter();
        for a in topo.nodes() {
            for b in topo.nodes() {
                let h = topo.hops(a, b);
                prop_assert_eq!(h == 0, a == b);
                prop_assert_eq!(h, topo.hops(b, a));
                prop_assert!(h <= d, "{h} > diameter {d}");
                for c in topo.nodes() {
                    prop_assert!(
                        topo.hops(a, c) <= h + topo.hops(b, c),
                        "triangle inequality violated"
                    );
                }
            }
        }
    }

    /// The diameter is attained by some pair.
    #[test]
    fn diameter_is_attained(topo in any_topology()) {
        let d = topo.diameter();
        let max = topo
            .nodes()
            .flat_map(|a| topo.nodes().map(move |b| (a, b)))
            .map(|(a, b)| topo.hops(a, b))
            .max()
            .unwrap();
        prop_assert_eq!(d, max);
    }

    /// Message delays are non-negative, zero for self-messages, and
    /// deterministic per seed.
    #[test]
    fn message_delays_are_sane(
        topo in any_topology(),
        seed in any::<u64>(),
        hop_scaled in any::<bool>(),
    ) {
        let base = Network::new(topo, LatencyModel::Exponential { mean: 1.0 });
        let net = if hop_scaled { base.with_hop_scaling() } else { base };
        let mut r1 = SimRng::seed_from(seed);
        let mut r2 = SimRng::seed_from(seed);
        for a in 0..net.len() {
            for b in 0..net.len() {
                let d1 = net.message_delay(NodeId::new(a), NodeId::new(b), &mut r1);
                let d2 = net.message_delay(NodeId::new(a), NodeId::new(b), &mut r2);
                prop_assert!(d1 >= 0.0);
                prop_assert_eq!(d1, d2);
                if a == b {
                    prop_assert_eq!(d1, 0.0);
                }
            }
        }
    }

    /// Every latency model's sample mean converges on its declared mean.
    #[test]
    fn latency_means_are_truthful(seed in any::<u64>(), which in 0u8..4) {
        let model = match which {
            0 => LatencyModel::Exponential { mean: 2.0 },
            1 => LatencyModel::Deterministic { value: 2.0 },
            2 => LatencyModel::Uniform { lo: 1.0, hi: 3.0 },
            _ => LatencyModel::ShiftedExponential { offset: 1.0, mean: 1.0 },
        };
        let mut rng = SimRng::seed_from(seed);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| model.sample(&mut rng)).sum();
        let sample_mean = sum / f64::from(n);
        prop_assert!(
            (sample_mean - model.mean()).abs() < 0.15,
            "{model:?}: {sample_mean} vs {}",
            model.mean()
        );
    }
}
