//! # oml-net — network substrate for the object-migration simulator
//!
//! The paper's evaluation (§4.1) assumes a **fully connected network** whose
//! messages have exponentially distributed duration with mean 1, and notes
//! that "we also performed simulations for other structures. But this had no
//! effects on the results." This crate provides both:
//!
//! * [`topology::Topology`] — full mesh plus the alternative structures used
//!   for the robustness ablation (star, ring, torus grid, line),
//! * [`latency::LatencyModel`] — exponential (the paper's model),
//!   deterministic and uniform per-message durations,
//! * [`Network`] — the combination: sample the delay of one message between
//!   two nodes, with optional hop-scaling for non-complete topologies.
//!
//! Saturation effects are deliberately absent: the object system "is assumed
//! to run concurrently with other applications", so its own traffic never
//! congests a link (§4.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// topology math casts between indices, counts and distances; the rest are
// deliberate style choices
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::elidable_lifetime_names,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::manual_midpoint,
    clippy::missing_panics_doc,
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    clippy::unreadable_literal,
    clippy::wildcard_imports
)]

pub mod latency;
pub mod topology;

pub use latency::{InvalidLatency, LatencyModel};
pub use topology::Topology;

use oml_core::ids::NodeId;
use oml_des::SimRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Message-loss faults for the simulated network.
///
/// The model is **loss with retransmission**: each remote message is lost
/// with `loss_probability`; every lost attempt costs the sender one
/// `retransmit_timeout` before the re-send, and the attempt that finally
/// gets through pays the normal sampled latency. (The simulator's virtual
/// "transport" retransmits forever, so messages are delayed, never
/// dropped — the paper's protocols assume reliable messaging, and this
/// keeps them comparable under degraded networks.)
///
/// Local (same-node) messages cannot be lost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that one message transmission attempt is lost.
    pub loss_probability: f64,
    /// Virtual time the sender waits before retransmitting a lost message.
    pub retransmit_timeout: f64,
}

/// An unusable [`FaultConfig`], reported at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidFaultConfig(String);

impl fmt::Display for InvalidFaultConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault config: {}", self.0)
    }
}

impl std::error::Error for InvalidFaultConfig {}

impl FaultConfig {
    /// A fault-free network (the default).
    #[must_use]
    pub fn none() -> Self {
        FaultConfig {
            loss_probability: 0.0,
            retransmit_timeout: 0.0,
        }
    }

    /// A validated loss model.
    ///
    /// # Errors
    ///
    /// `loss_probability` must lie in `[0, 1)` (a probability of 1 would
    /// retransmit forever) and `retransmit_timeout` must be finite,
    /// non-negative, and positive whenever loss is possible.
    pub fn new(loss_probability: f64, retransmit_timeout: f64) -> Result<Self, InvalidFaultConfig> {
        if !(0.0..1.0).contains(&loss_probability) {
            return Err(InvalidFaultConfig(format!(
                "loss probability {loss_probability} outside [0, 1)"
            )));
        }
        if !retransmit_timeout.is_finite() || retransmit_timeout < 0.0 {
            return Err(InvalidFaultConfig(format!(
                "retransmit timeout {retransmit_timeout} not a finite non-negative duration"
            )));
        }
        if loss_probability > 0.0 && retransmit_timeout == 0.0 {
            return Err(InvalidFaultConfig(
                "lossy network needs a positive retransmit timeout".to_owned(),
            ));
        }
        Ok(FaultConfig {
            loss_probability,
            retransmit_timeout,
        })
    }

    /// Whether this config injects nothing.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.loss_probability == 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// A network: a topology plus a latency model.
///
/// # Example
///
/// ```
/// use oml_net::{LatencyModel, Network, Topology};
/// use oml_core::ids::NodeId;
/// use oml_des::SimRng;
///
/// let net = Network::paper(3);
/// let mut rng = SimRng::seed_from(1);
/// // local messages are free…
/// assert_eq!(net.message_delay(NodeId::new(0), NodeId::new(0), &mut rng), 0.0);
/// // …remote ones cost a (random, mean-1) duration.
/// assert!(net.message_delay(NodeId::new(0), NodeId::new(1), &mut rng) >= 0.0);
/// assert_eq!(net.topology(), &Topology::FullMesh { nodes: 3 });
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    topology: Topology,
    latency: LatencyModel,
    /// Whether a message's delay is multiplied by the hop count (only
    /// meaningful for non-complete topologies).
    scale_by_hops: bool,
    /// Message-loss model; [`FaultConfig::none`] by default.
    #[serde(default)]
    faults: FaultConfig,
}

impl Network {
    /// Creates a network from a topology and a latency model, without hop
    /// scaling.
    ///
    /// # Panics
    ///
    /// Panics if the latency model's parameters are invalid — use
    /// [`Network::try_new`] to handle that gracefully.
    #[must_use]
    pub fn new(topology: Topology, latency: LatencyModel) -> Self {
        Network::try_new(topology, latency).expect("invalid latency model")
    }

    /// Creates a network, validating the latency model at construction
    /// instead of panicking mid-simulation.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLatency`] for non-finite/negative parameters or an
    /// inverted uniform range.
    pub fn try_new(topology: Topology, latency: LatencyModel) -> Result<Self, InvalidLatency> {
        latency.validate()?;
        Ok(Network {
            topology,
            latency,
            scale_by_hops: false,
            faults: FaultConfig::none(),
        })
    }

    /// The paper's network: a full mesh of `nodes` with Exp(1) messages.
    #[must_use]
    pub fn paper(nodes: u32) -> Self {
        Network::new(
            Topology::FullMesh { nodes },
            LatencyModel::Exponential { mean: 1.0 },
        )
    }

    /// Builder-style: multiply each message's delay by its route's hop count
    /// (used by the topology ablation).
    #[must_use]
    pub fn with_hop_scaling(mut self) -> Self {
        self.scale_by_hops = true;
        self
    }

    /// Builder-style: installs a message-loss model (see [`FaultConfig`]).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// The installed loss model.
    #[must_use]
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// The topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The latency model.
    #[must_use]
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.topology.len()
    }

    /// Whether the network has no nodes (never true for valid topologies).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.topology.len() == 0
    }

    /// Lower bound on the delay of any **remote** message in this network.
    ///
    /// This is the conservative lookahead of a sharded simulation over this
    /// network: no node can influence another faster than this. Local
    /// messages are free and irrelevant (they never cross shards). Hop
    /// scaling only multiplies (`hops ≥ 1`) and fault retransmissions only
    /// add, so [`LatencyModel::min_latency`] is the bound either way.
    #[must_use]
    pub fn min_remote_delay(&self) -> f64 {
        self.latency.min_latency()
    }

    /// Samples the duration of one message from `from` to `to`.
    ///
    /// Local messages (same node) take zero time — local actions are "about
    /// 4 orders of magnitude below the duration of a remote action" (§4.1)
    /// and are neglected, exactly as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the topology.
    pub fn message_delay(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> f64 {
        let hops = self.topology.hops(from, to);
        if hops == 0 {
            return 0.0;
        }
        let base = self.latency.sample(rng);
        let base = if self.scale_by_hops {
            base * hops as f64
        } else {
            base
        };
        if self.faults.is_noop() {
            // no extra RNG draws: fault-free runs keep their exact
            // pre-fault random streams (and their published figures)
            return base;
        }
        // geometric retransmissions: every lost attempt costs one timeout
        let mut penalty = 0.0;
        while rng.unit() < self.faults.loss_probability {
            penalty += self.faults.retransmit_timeout;
        }
        base + penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_network_properties() {
        let net = Network::paper(27);
        assert_eq!(net.len(), 27);
        assert!(!net.is_empty());
        assert_eq!(net.latency(), &LatencyModel::Exponential { mean: 1.0 });
    }

    #[test]
    fn local_messages_are_free() {
        let net = Network::paper(4);
        let mut rng = SimRng::seed_from(0);
        for i in 0..4 {
            assert_eq!(
                net.message_delay(NodeId::new(i), NodeId::new(i), &mut rng),
                0.0
            );
        }
    }

    #[test]
    fn remote_messages_have_mean_one() {
        let net = Network::paper(2);
        let mut rng = SimRng::seed_from(9);
        let n = 100_000;
        let total: f64 = (0..n)
            .map(|_| net.message_delay(NodeId::new(0), NodeId::new(1), &mut rng))
            .sum();
        let mean = total / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn hop_scaling_multiplies_deterministic_latency() {
        let net = Network::new(
            Topology::Ring { nodes: 8 },
            LatencyModel::Deterministic { value: 1.0 },
        )
        .with_hop_scaling();
        let mut rng = SimRng::seed_from(0);
        // nodes 0 and 4 are 4 hops apart on an 8-ring
        assert_eq!(
            net.message_delay(NodeId::new(0), NodeId::new(4), &mut rng),
            4.0
        );
    }

    #[test]
    fn fault_config_validates_its_parameters() {
        assert!(FaultConfig::new(0.1, 4.0).is_ok());
        assert!(FaultConfig::new(0.0, 0.0).is_ok());
        assert!(FaultConfig::new(1.0, 4.0).is_err(), "p=1 never delivers");
        assert!(FaultConfig::new(-0.1, 4.0).is_err());
        assert!(FaultConfig::new(0.1, 0.0).is_err(), "loss needs a timeout");
        assert!(FaultConfig::new(0.1, f64::NAN).is_err());
        assert!(FaultConfig::none().is_noop());
    }

    #[test]
    fn try_new_rejects_invalid_latency() {
        let err = Network::try_new(
            Topology::FullMesh { nodes: 2 },
            LatencyModel::Uniform { lo: 3.0, hi: 1.0 },
        )
        .unwrap_err();
        assert!(err.to_string().contains("uniform range"), "{err}");
    }

    #[test]
    fn message_loss_adds_retransmit_penalties() {
        let loss = 0.25;
        let timeout = 4.0;
        let net = Network::new(
            Topology::FullMesh { nodes: 2 },
            LatencyModel::Deterministic { value: 1.0 },
        )
        .with_faults(FaultConfig::new(loss, timeout).unwrap());
        let mut rng = SimRng::seed_from(3);
        let n = 50_000;
        let total: f64 = (0..n)
            .map(|_| net.message_delay(NodeId::new(0), NodeId::new(1), &mut rng))
            .sum();
        // E[delay] = 1 + timeout * p/(1-p) — the mean of the geometric
        // retransmission count times the timeout
        let expected = 1.0 + timeout * loss / (1.0 - loss);
        let mean = total / n as f64;
        assert!((mean - expected).abs() < 0.05, "mean {mean} vs {expected}");
        // local messages never pay the loss penalty
        assert_eq!(
            net.message_delay(NodeId::new(0), NodeId::new(0), &mut rng),
            0.0
        );
    }

    #[test]
    fn noop_faults_leave_the_random_stream_untouched() {
        let plain = Network::paper(3);
        let with_noop = Network::paper(3).with_faults(FaultConfig::none());
        let mut r1 = SimRng::seed_from(7);
        let mut r2 = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(
                plain.message_delay(NodeId::new(0), NodeId::new(1), &mut r1),
                with_noop.message_delay(NodeId::new(0), NodeId::new(1), &mut r2)
            );
        }
    }

    #[test]
    fn without_hop_scaling_distance_is_flat() {
        let net = Network::new(
            Topology::Ring { nodes: 8 },
            LatencyModel::Deterministic { value: 2.0 },
        );
        let mut rng = SimRng::seed_from(0);
        assert_eq!(
            net.message_delay(NodeId::new(0), NodeId::new(4), &mut rng),
            2.0
        );
    }
}
