//! # oml-net — network substrate for the object-migration simulator
//!
//! The paper's evaluation (§4.1) assumes a **fully connected network** whose
//! messages have exponentially distributed duration with mean 1, and notes
//! that "we also performed simulations for other structures. But this had no
//! effects on the results." This crate provides both:
//!
//! * [`topology::Topology`] — full mesh plus the alternative structures used
//!   for the robustness ablation (star, ring, torus grid, line),
//! * [`latency::LatencyModel`] — exponential (the paper's model),
//!   deterministic and uniform per-message durations,
//! * [`Network`] — the combination: sample the delay of one message between
//!   two nodes, with optional hop-scaling for non-complete topologies.
//!
//! Saturation effects are deliberately absent: the object system "is assumed
//! to run concurrently with other applications", so its own traffic never
//! congests a link (§4.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod topology;

pub use latency::LatencyModel;
pub use topology::Topology;

use oml_core::ids::NodeId;
use oml_des::SimRng;
use serde::{Deserialize, Serialize};

/// A network: a topology plus a latency model.
///
/// # Example
///
/// ```
/// use oml_net::{LatencyModel, Network, Topology};
/// use oml_core::ids::NodeId;
/// use oml_des::SimRng;
///
/// let net = Network::paper(3);
/// let mut rng = SimRng::seed_from(1);
/// // local messages are free…
/// assert_eq!(net.message_delay(NodeId::new(0), NodeId::new(0), &mut rng), 0.0);
/// // …remote ones cost a (random, mean-1) duration.
/// assert!(net.message_delay(NodeId::new(0), NodeId::new(1), &mut rng) >= 0.0);
/// assert_eq!(net.topology(), &Topology::FullMesh { nodes: 3 });
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    topology: Topology,
    latency: LatencyModel,
    /// Whether a message's delay is multiplied by the hop count (only
    /// meaningful for non-complete topologies).
    scale_by_hops: bool,
}

impl Network {
    /// Creates a network from a topology and a latency model, without hop
    /// scaling.
    #[must_use]
    pub fn new(topology: Topology, latency: LatencyModel) -> Self {
        Network {
            topology,
            latency,
            scale_by_hops: false,
        }
    }

    /// The paper's network: a full mesh of `nodes` with Exp(1) messages.
    #[must_use]
    pub fn paper(nodes: u32) -> Self {
        Network::new(
            Topology::FullMesh { nodes },
            LatencyModel::Exponential { mean: 1.0 },
        )
    }

    /// Builder-style: multiply each message's delay by its route's hop count
    /// (used by the topology ablation).
    #[must_use]
    pub fn with_hop_scaling(mut self) -> Self {
        self.scale_by_hops = true;
        self
    }

    /// The topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The latency model.
    #[must_use]
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.topology.len()
    }

    /// Whether the network has no nodes (never true for valid topologies).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.topology.len() == 0
    }

    /// Samples the duration of one message from `from` to `to`.
    ///
    /// Local messages (same node) take zero time — local actions are "about
    /// 4 orders of magnitude below the duration of a remote action" (§4.1)
    /// and are neglected, exactly as in the paper.
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the topology.
    pub fn message_delay(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> f64 {
        let hops = self.topology.hops(from, to);
        if hops == 0 {
            return 0.0;
        }
        let base = self.latency.sample(rng);
        if self.scale_by_hops {
            base * hops as f64
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_network_properties() {
        let net = Network::paper(27);
        assert_eq!(net.len(), 27);
        assert!(!net.is_empty());
        assert_eq!(net.latency(), &LatencyModel::Exponential { mean: 1.0 });
    }

    #[test]
    fn local_messages_are_free() {
        let net = Network::paper(4);
        let mut rng = SimRng::seed_from(0);
        for i in 0..4 {
            assert_eq!(
                net.message_delay(NodeId::new(i), NodeId::new(i), &mut rng),
                0.0
            );
        }
    }

    #[test]
    fn remote_messages_have_mean_one() {
        let net = Network::paper(2);
        let mut rng = SimRng::seed_from(9);
        let n = 100_000;
        let total: f64 = (0..n)
            .map(|_| net.message_delay(NodeId::new(0), NodeId::new(1), &mut rng))
            .sum();
        let mean = total / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn hop_scaling_multiplies_deterministic_latency() {
        let net = Network::new(
            Topology::Ring { nodes: 8 },
            LatencyModel::Deterministic { value: 1.0 },
        )
        .with_hop_scaling();
        let mut rng = SimRng::seed_from(0);
        // nodes 0 and 4 are 4 hops apart on an 8-ring
        assert_eq!(
            net.message_delay(NodeId::new(0), NodeId::new(4), &mut rng),
            4.0
        );
    }

    #[test]
    fn without_hop_scaling_distance_is_flat() {
        let net = Network::new(
            Topology::Ring { nodes: 8 },
            LatencyModel::Deterministic { value: 2.0 },
        );
        let mut rng = SimRng::seed_from(0);
        assert_eq!(
            net.message_delay(NodeId::new(0), NodeId::new(4), &mut rng),
            2.0
        );
    }
}
