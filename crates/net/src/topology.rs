//! Network topologies.
//!
//! The paper's results use a full mesh; the other shapes exist to reproduce
//! its robustness claim ("we also performed simulations for other structures
//! — but this had no effects on the results").

use oml_core::ids::NodeId;
use serde::{Deserialize, Serialize};

/// The physical interconnection structure of the nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// Every node pair is directly connected (the paper's model).
    FullMesh {
        /// Number of nodes.
        nodes: u32,
    },
    /// All traffic is relayed through hub node 0.
    Star {
        /// Number of nodes (including the hub).
        nodes: u32,
    },
    /// A cycle; routes take the shorter way round.
    Ring {
        /// Number of nodes.
        nodes: u32,
    },
    /// A `width × height` torus (grid with wrap-around links).
    Torus {
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
    },
    /// A simple path `0 – 1 – … – n-1`.
    Line {
        /// Number of nodes.
        nodes: u32,
    },
    /// An arbitrary connected graph given by its precomputed hop matrix
    /// (row-major, `nodes × nodes`). Build one with [`Topology::random`] or
    /// [`Topology::from_edges`].
    Matrix {
        /// Number of nodes.
        nodes: u32,
        /// Row-major shortest-path hop counts.
        hops: Vec<u32>,
    },
}

impl Topology {
    /// Builds a [`Topology::Matrix`] from an undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= nodes` or the graph is not
    /// connected (some pair would have no route).
    #[must_use]
    pub fn from_edges(nodes: u32, edges: &[(u32, u32)]) -> Self {
        let n = nodes as usize;
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < nodes && b < nodes, "edge ({a},{b}) out of range");
            if a != b {
                adj[a as usize].push(b as usize);
                adj[b as usize].push(a as usize);
            }
        }
        let mut hops = vec![u32::MAX; n * n];
        for start in 0..n {
            // BFS from start
            hops[start * n + start] = 0;
            let mut frontier = std::collections::VecDeque::from([start]);
            while let Some(v) = frontier.pop_front() {
                let d = hops[start * n + v];
                for &w in &adj[v] {
                    if hops[start * n + w] == u32::MAX {
                        hops[start * n + w] = d + 1;
                        frontier.push_back(w);
                    }
                }
            }
        }
        assert!(
            hops.iter().all(|&h| h != u32::MAX),
            "graph must be connected"
        );
        Topology::Matrix { nodes, hops }
    }

    /// Builds a random connected topology: a ring (guaranteeing
    /// connectivity) plus `extra_edges` random chords, deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 3` (a ring needs three nodes).
    #[must_use]
    pub fn random(nodes: u32, extra_edges: u32, seed: u64) -> Self {
        assert!(nodes >= 3, "a random topology needs at least 3 nodes");
        let mut rng = oml_des::SimRng::seed_from(seed);
        let mut edges: Vec<(u32, u32)> = (0..nodes).map(|i| (i, (i + 1) % nodes)).collect();
        for _ in 0..extra_edges {
            let a = rng.below(nodes as usize) as u32;
            let b = rng.below(nodes as usize) as u32;
            if a != b {
                edges.push((a, b));
            }
        }
        Topology::from_edges(nodes, &edges)
    }
}

impl Topology {
    /// Number of nodes.
    ///
    /// # Example
    ///
    /// ```
    /// use oml_net::Topology;
    /// assert_eq!(Topology::Torus { width: 4, height: 3 }.len(), 12);
    /// ```
    #[must_use]
    pub fn len(&self) -> u32 {
        match *self {
            Topology::FullMesh { nodes }
            | Topology::Star { nodes }
            | Topology::Ring { nodes }
            | Topology::Line { nodes }
            | Topology::Matrix { nodes, .. } => nodes,
            Topology::Torus { width, height } => width * height,
        }
    }

    /// Whether the topology has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `node` exists in this topology.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        node.as_u32() < self.len()
    }

    /// Length (in hops) of the shortest route from `from` to `to`; `0` iff
    /// the nodes are equal.
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the topology.
    #[must_use]
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        assert!(
            self.contains(from) && self.contains(to),
            "node out of topology: {from} or {to} vs {} nodes",
            self.len()
        );
        if from == to {
            return 0;
        }
        let (a, b) = (from.as_u32(), to.as_u32());
        match self {
            Topology::FullMesh { .. } => 1,
            Topology::Star { .. } => {
                if a == 0 || b == 0 {
                    1
                } else {
                    2
                }
            }
            &Topology::Ring { nodes } => {
                let d = a.abs_diff(b);
                d.min(nodes - d)
            }
            &Topology::Torus { width, height } => {
                let (ax, ay) = (a % width, a / width);
                let (bx, by) = (b % width, b / width);
                let dx = ax.abs_diff(bx);
                let dy = ay.abs_diff(by);
                dx.min(width - dx) + dy.min(height - dy)
            }
            Topology::Line { .. } => a.abs_diff(b),
            Topology::Matrix { nodes, hops } => hops[(a * nodes + b) as usize],
        }
    }

    /// The largest hop count between any two nodes (the network diameter).
    #[must_use]
    pub fn diameter(&self) -> u32 {
        match self {
            &Topology::FullMesh { nodes } => u32::from(nodes > 1),
            &Topology::Star { nodes } => match nodes {
                0 | 1 => 0,
                2 => 1,
                _ => 2,
            },
            &Topology::Ring { nodes } => nodes / 2,
            &Topology::Torus { width, height } => width / 2 + height / 2,
            &Topology::Line { nodes } => nodes.saturating_sub(1),
            Topology::Matrix { hops, .. } => hops.iter().copied().max().unwrap_or(0),
        }
    }

    /// Iterates over all node ids of the topology.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len()).map(NodeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn full_mesh_is_one_hop() {
        let t = Topology::FullMesh { nodes: 5 };
        assert_eq!(t.hops(n(0), n(4)), 1);
        assert_eq!(t.hops(n(2), n(2)), 0);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn star_routes_through_hub() {
        let t = Topology::Star { nodes: 5 };
        assert_eq!(t.hops(n(0), n(3)), 1);
        assert_eq!(t.hops(n(3), n(0)), 1);
        assert_eq!(t.hops(n(1), n(4)), 2);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn ring_takes_the_short_way() {
        let t = Topology::Ring { nodes: 6 };
        assert_eq!(t.hops(n(0), n(1)), 1);
        assert_eq!(t.hops(n(0), n(5)), 1);
        assert_eq!(t.hops(n(0), n(3)), 3);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn torus_wraps_both_axes() {
        let t = Topology::Torus {
            width: 4,
            height: 4,
        };
        // node ids: y*width + x
        assert_eq!(t.hops(n(0), n(3)), 1); // (0,0) → (3,0): wraps
        assert_eq!(t.hops(n(0), n(12)), 1); // (0,0) → (0,3): wraps
        assert_eq!(t.hops(n(0), n(10)), 4); // (0,0) → (2,2): 2+2
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn line_is_absolute_distance() {
        let t = Topology::Line { nodes: 10 };
        assert_eq!(t.hops(n(0), n(9)), 9);
        assert_eq!(t.hops(n(4), n(6)), 2);
        assert_eq!(t.diameter(), 9);
    }

    #[test]
    fn hops_are_symmetric() {
        let topologies = [
            Topology::FullMesh { nodes: 7 },
            Topology::Star { nodes: 7 },
            Topology::Ring { nodes: 7 },
            Topology::Torus {
                width: 3,
                height: 3,
            },
            Topology::Line { nodes: 7 },
        ];
        for t in topologies {
            for a in 0..t.len() {
                for b in 0..t.len() {
                    assert_eq!(t.hops(n(a), n(b)), t.hops(n(b), n(a)), "{t:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn hops_zero_iff_equal() {
        let t = Topology::Ring { nodes: 9 };
        for a in 0..9 {
            for b in 0..9 {
                assert_eq!(t.hops(n(a), n(b)) == 0, a == b);
            }
        }
    }

    #[test]
    fn diameter_bounds_every_route() {
        let topologies = [
            Topology::Star { nodes: 6 },
            Topology::Ring { nodes: 6 },
            Topology::Torus {
                width: 4,
                height: 2,
            },
            Topology::Line { nodes: 6 },
        ];
        for t in topologies {
            let d = t.diameter();
            for a in t.nodes() {
                for b in t.nodes() {
                    assert!(t.hops(a, b) <= d, "{t:?}");
                }
            }
        }
    }

    #[test]
    fn contains_and_nodes_agree() {
        let t = Topology::Torus {
            width: 3,
            height: 2,
        };
        assert_eq!(t.nodes().count(), 6);
        assert!(t.contains(n(5)));
        assert!(!t.contains(n(6)));
    }

    #[test]
    #[should_panic(expected = "node out of topology")]
    fn out_of_range_node_panics() {
        let _ = Topology::FullMesh { nodes: 3 }.hops(n(0), n(3));
    }

    #[test]
    fn matrix_from_edges_computes_bfs_distances() {
        // a path 0-1-2-3 plus a chord 0-3
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_eq!(t.hops(n(0), n(1)), 1);
        assert_eq!(t.hops(n(0), n(2)), 2);
        assert_eq!(t.hops(n(0), n(3)), 1); // via the chord
        assert_eq!(t.hops(n(1), n(3)), 2);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn matrix_hops_are_symmetric_and_reflexive() {
        let t = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        for a in t.nodes() {
            assert_eq!(t.hops(a, a), 0);
            for b in t.nodes() {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn disconnected_graph_is_rejected() {
        let _ = Topology::from_edges(4, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_is_rejected() {
        let _ = Topology::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn random_topology_is_connected_and_deterministic() {
        let a = Topology::random(10, 5, 42);
        let b = Topology::random(10, 5, 42);
        assert_eq!(a, b);
        // connectivity: every pair has a finite route (from_edges asserts it,
        // but double-check the public surface)
        for x in a.nodes() {
            for y in a.nodes() {
                assert!(a.hops(x, y) <= a.diameter());
            }
        }
        // the ring backbone bounds the diameter
        assert!(a.diameter() <= 5);
        let c = Topology::random(10, 5, 43);
        assert_ne!(a, c);
    }
}
