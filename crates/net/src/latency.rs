//! Per-message latency models.

use oml_des::SimRng;
use serde::{Deserialize, Serialize};

/// How long one remote message takes.
///
/// The paper normalizes time "so that a remote object invocation \[message\]
/// has an exponentially distributed duration of 1" (§4.1); the other models
/// support deterministic unit tests and sensitivity ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Exponentially distributed with the given mean (the paper's model).
    Exponential {
        /// Mean message duration.
        mean: f64,
    },
    /// Every message takes exactly `value` (useful to compare the simulator
    /// against the §3.2 closed-form costs).
    Deterministic {
        /// Fixed message duration.
        value: f64,
    },
    /// Uniformly distributed on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// A fixed propagation `offset` plus an exponential queueing component —
    /// a coarse model of a network with background load (§4.1 assumes the
    /// object system shares the network with other applications).
    ShiftedExponential {
        /// Deterministic propagation component.
        offset: f64,
        /// Mean of the exponential queueing component.
        mean: f64,
    },
}

/// A latency model whose parameters cannot describe a distribution —
/// reported by [`LatencyModel::validate`] at *construction* time (e.g. by
/// [`crate::Network::try_new`]), not hours into a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidLatency(String);

impl std::fmt::Display for InvalidLatency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid latency model: {}", self.0)
    }
}

impl std::error::Error for InvalidLatency {}

impl LatencyModel {
    /// Checks the model's parameters: means, values and offsets must be
    /// finite and non-negative, uniform ranges must not be inverted.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLatency`] describing the offending parameter.
    pub fn validate(&self) -> Result<(), InvalidLatency> {
        let ok = |x: f64| x.is_finite() && x >= 0.0;
        match *self {
            LatencyModel::Exponential { mean } => ok(mean)
                .then_some(())
                .ok_or_else(|| InvalidLatency(format!("exponential mean {mean}"))),
            LatencyModel::Deterministic { value } => ok(value)
                .then_some(())
                .ok_or_else(|| InvalidLatency(format!("deterministic value {value}"))),
            LatencyModel::Uniform { lo, hi } => (ok(lo) && ok(hi) && lo <= hi)
                .then_some(())
                .ok_or_else(|| InvalidLatency(format!("uniform range [{lo}, {hi})"))),
            LatencyModel::ShiftedExponential { offset, mean } => {
                (ok(offset) && ok(mean)).then_some(()).ok_or_else(|| {
                    InvalidLatency(format!("shifted-exponential offset {offset} / mean {mean}"))
                })
            }
        }
    }

    /// Draws one message duration.
    ///
    /// Parameters are checked by [`LatencyModel::validate`] when the model
    /// enters a [`crate::Network`]; here only a debug assertion remains, so
    /// an unvalidated model cannot panic a release-mode simulation
    /// mid-flight.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        debug_assert!(self.validate().is_ok(), "{:?}", self.validate());
        match *self {
            LatencyModel::Exponential { mean } => rng.exp(mean),
            LatencyModel::Deterministic { value } => value,
            LatencyModel::Uniform { lo, hi } => lo + rng.unit() * (hi - lo),
            LatencyModel::ShiftedExponential { offset, mean } => offset + rng.exp(mean),
        }
    }

    /// Draws one message duration **as wall-clock milliseconds** — the
    /// bridge from simulated transmission policy to a real transport: the
    /// oml-runtime socket transport paces its batch writes by sampling
    /// this, so the same configured model that delays simulated messages
    /// delays real ones (time unit = 1 ms). Negative or non-finite samples
    /// clamp to zero rather than panic the writer thread.
    pub fn sample_ms(&self, rng: &mut SimRng) -> std::time::Duration {
        let x = self.sample(rng);
        if x.is_finite() && x > 0.0 {
            std::time::Duration::from_secs_f64(x / 1_000.0)
        } else {
            std::time::Duration::ZERO
        }
    }

    /// The expected message duration under this model.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Exponential { mean } => mean,
            LatencyModel::Deterministic { value } => value,
            LatencyModel::Uniform { lo, hi } => (lo + hi) / 2.0,
            LatencyModel::ShiftedExponential { offset, mean } => offset + mean,
        }
    }

    /// The infimum of the latency distribution — no sample is ever smaller.
    ///
    /// This is the conservative lookahead a sharded simulation may assume
    /// between nodes: a bare exponential admits arbitrarily short messages
    /// (minimum 0, no safe window), while a shifted exponential guarantees
    /// at least its `offset`.
    #[must_use]
    pub fn min_latency(&self) -> f64 {
        match *self {
            LatencyModel::Exponential { .. } => 0.0,
            LatencyModel::Deterministic { value } => value,
            LatencyModel::Uniform { lo, .. } => lo,
            LatencyModel::ShiftedExponential { offset, .. } => offset,
        }
    }
}

impl Default for LatencyModel {
    /// The paper's normalization: Exp(1).
    fn default() -> Self {
        LatencyModel::Exponential { mean: 1.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_is_constant() {
        let m = LatencyModel::Deterministic { value: 2.5 };
        let mut rng = SimRng::seed_from(0);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 2.5);
        }
        assert_eq!(m.mean(), 2.5);
    }

    #[test]
    fn uniform_stays_in_range_and_has_right_mean() {
        let m = LatencyModel::Uniform { lo: 1.0, hi: 3.0 };
        let mut rng = SimRng::seed_from(4);
        let mut sum = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let x = m.sample(&mut rng);
            assert!((1.0..3.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 2.0).abs() < 0.02);
        assert_eq!(m.mean(), 2.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let m = LatencyModel::default();
        assert_eq!(m.mean(), 1.0);
        let mut rng = SimRng::seed_from(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        assert!((sum / n as f64 - 1.0).abs() < 0.02);
    }

    #[test]
    fn invalid_models_fail_validation_at_construction() {
        let bad = [
            LatencyModel::Uniform { lo: 3.0, hi: 1.0 },
            LatencyModel::Exponential { mean: -1.0 },
            LatencyModel::Deterministic { value: f64::NAN },
            LatencyModel::ShiftedExponential {
                offset: f64::INFINITY,
                mean: 1.0,
            },
        ];
        for m in bad {
            let err = m.validate().unwrap_err();
            assert!(err.to_string().contains("invalid latency model"), "{err}");
        }
        assert!(LatencyModel::default().validate().is_ok());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "uniform range")]
    fn inverted_uniform_range_panics_in_debug_sampling() {
        // the release-mode contract is validate-at-construction; in debug
        // builds sampling an unvalidated model still trips an assertion
        let mut rng = SimRng::seed_from(0);
        let _ = LatencyModel::Uniform { lo: 3.0, hi: 1.0 }.sample(&mut rng);
    }

    #[test]
    fn sample_ms_interprets_time_units_as_milliseconds() {
        let mut rng = SimRng::seed_from(3);
        let d = LatencyModel::Deterministic { value: 250.0 }.sample_ms(&mut rng);
        assert_eq!(d, std::time::Duration::from_millis(250));
        // zero-delay models clamp cleanly instead of panicking
        let z = LatencyModel::Deterministic { value: 0.0 }.sample_ms(&mut rng);
        assert_eq!(z, std::time::Duration::ZERO);
    }

    #[test]
    fn shifted_exponential_respects_offset_and_mean() {
        let m = LatencyModel::ShiftedExponential {
            offset: 0.5,
            mean: 1.5,
        };
        assert_eq!(m.mean(), 2.0);
        let mut rng = SimRng::seed_from(12);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = m.sample(&mut rng);
            assert!(x >= 0.5, "never below the propagation floor");
            sum += x;
        }
        assert!((sum / n as f64 - 2.0).abs() < 0.03);
    }
}
