//! Seeded negative tests: generate a benign synthetic trace from a seed,
//! inject one deliberate protocol violation, and assert the checker names
//! exactly the violation kind that was planted. This guards against the
//! checker rotting into a rubber stamp — a checker that passes chaos runs
//! is only trustworthy if it demonstrably fails broken ones.

use oml_check::event::{EventKind, ReleaseCause, TraceEvent};
use oml_check::{check_trace, Violation};
use oml_core::ids::{BlockId, NodeId, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: u32 = 4;

/// Generates a clean trace: `objects` objects created at random nodes, then
/// `moves` causally correct migrations (grant → lock → ship → send/recv →
/// install → release), with leases renewed along the way.
fn benign_trace(seed: u64, objects: u32, moves: u32) -> Vec<TraceEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Vec::new();
    let mut homes: Vec<u32> = Vec::new();
    let mut msg_id = 0u64;
    let mut clock_ms = 0u64;

    for o in 0..objects {
        let home = rng.gen_range(0..NODES);
        homes.push(home);
        trace.push(TraceEvent::new(
            home,
            EventKind::Install {
                object: ObjectId::new(o),
            },
        ));
    }

    for block in 0..moves {
        let o = rng.gen_range(0..objects);
        let from = homes[o as usize];
        let to = rng.gen_range(0..NODES);
        clock_ms += u64::from(rng.gen_range(1..50u32));
        let object = ObjectId::new(o);
        let blk = BlockId::new(block);
        trace.push(TraceEvent::new(
            from,
            EventKind::MoveGranted { object, block: blk },
        ));
        if to != from {
            trace.push(TraceEvent::new(
                from,
                EventKind::Ship {
                    object,
                    to: NodeId::new(to),
                },
            ));
            msg_id += 1;
            trace.push(TraceEvent::new(
                from,
                EventKind::Send {
                    msg_id,
                    to,
                    desc: String::from("Install"),
                },
            ));
            trace.push(TraceEvent::new(to, EventKind::Recv { msg_id }));
            trace.push(TraceEvent::new(to, EventKind::Install { object }));
        }
        trace.push(TraceEvent::new(
            to,
            EventKind::LockAcquired {
                object,
                block: blk,
                now_ms: clock_ms,
                ttl_ms: Some(1000),
            },
        ));
        if rng.gen_range(0..2u32) == 0 {
            clock_ms += u64::from(rng.gen_range(1..200u32));
            trace.push(TraceEvent::new(
                to,
                EventKind::LeaseRenewed {
                    object,
                    now_ms: clock_ms,
                },
            ));
        }
        clock_ms += u64::from(rng.gen_range(1..100u32));
        trace.push(TraceEvent::new(
            to,
            EventKind::LockReleased {
                object,
                block: blk,
                cause: ReleaseCause::End,
            },
        ));
        homes[o as usize] = to;
    }
    trace
}

#[test]
fn benign_seeded_traces_are_clean() {
    for seed in [0xC0A5u64, 1, 2, 42] {
        let report = check_trace(&benign_trace(seed, 8, 30));
        assert!(report.is_clean(), "seed {seed}: {report}");
    }
}

#[test]
fn injected_double_residency_is_named() {
    let mut trace = benign_trace(0xC0A5, 8, 30);
    // plant a second live replica: install object 0 at a node other than
    // its current home, with no ship preceding it
    let home = trace
        .iter()
        .rev()
        .find_map(|ev| match ev.kind {
            EventKind::Install { object } if object == ObjectId::new(0) => Some(ev.process),
            _ => None,
        })
        .expect("object 0 was installed somewhere");
    let elsewhere = (home + 1) % NODES;
    trace.push(TraceEvent::new(
        elsewhere,
        EventKind::Install {
            object: ObjectId::new(0),
        },
    ));

    let report = check_trace(&trace);
    assert_eq!(report.violations.len(), 1, "{report}");
    match &report.violations[0] {
        Violation::DoubleResidency {
            object,
            resident_at,
            also_at,
        } => {
            assert_eq!(*object, ObjectId::new(0));
            assert_eq!(*resident_at, home);
            assert_eq!(*also_at, elsewhere);
        }
        other => panic!("expected DoubleResidency, got {other}"),
    }
}

#[test]
fn injected_lease_overlap_is_named() {
    let mut trace = benign_trace(2, 8, 30);
    // plant an overlapping lease: block A takes a 1000 ms lease on object 3
    // and block B is granted the same lock only 10 ms later, long before
    // A's lease could have expired
    let object = ObjectId::new(3);
    let a = BlockId::new(900);
    let b = BlockId::new(901);
    for blk in [a, b] {
        trace.push(TraceEvent::new(
            0,
            EventKind::MoveGranted { object, block: blk },
        ));
    }
    trace.push(TraceEvent::new(
        0,
        EventKind::LockAcquired {
            object,
            block: a,
            now_ms: 100_000,
            ttl_ms: Some(1000),
        },
    ));
    trace.push(TraceEvent::new(
        1,
        EventKind::LockAcquired {
            object,
            block: b,
            now_ms: 100_010,
            ttl_ms: Some(1000),
        },
    ));

    let report = check_trace(&trace);
    assert_eq!(report.violations.len(), 1, "{report}");
    match &report.violations[0] {
        Violation::LeaseOverlap {
            object: o,
            holder,
            claimant,
            remaining_ms,
        } => {
            assert_eq!(*o, object);
            assert_eq!(*holder, a);
            assert_eq!(*claimant, b);
            assert_eq!(*remaining_ms, 990);
        }
        other => panic!("expected LeaseOverlap, got {other}"),
    }
}

#[test]
fn injected_lock_overlap_without_ttl_is_named() {
    // same shape as the lease overlap but with never-expiring locks: the
    // checker must name the stronger LockOverlap kind
    let object = ObjectId::new(0);
    let trace = vec![
        TraceEvent::new(0, EventKind::Install { object }),
        TraceEvent::new(
            0,
            EventKind::MoveGranted {
                object,
                block: BlockId::new(0),
            },
        ),
        TraceEvent::new(
            0,
            EventKind::MoveGranted {
                object,
                block: BlockId::new(1),
            },
        ),
        TraceEvent::new(
            0,
            EventKind::LockAcquired {
                object,
                block: BlockId::new(0),
                now_ms: 0,
                ttl_ms: None,
            },
        ),
        TraceEvent::new(
            1,
            EventKind::LockAcquired {
                object,
                block: BlockId::new(1),
                now_ms: 5,
                ttl_ms: None,
            },
        ),
    ];
    let report = check_trace(&trace);
    assert!(
        matches!(
            report.violations.as_slice(),
            [Violation::LockOverlap { .. }]
        ),
        "{report}"
    );
}

#[test]
fn injected_denied_mover_mutation_is_named() {
    let mut trace = benign_trace(1, 4, 10);
    let object = ObjectId::new(1);
    let blk = BlockId::new(950);
    trace.push(TraceEvent::new(
        2,
        EventKind::MoveDenied { object, block: blk },
    ));
    // the denied block mutates placement anyway
    trace.push(TraceEvent::new(
        2,
        EventKind::LockAcquired {
            object,
            block: blk,
            now_ms: 200_000,
            ttl_ms: Some(1000),
        },
    ));
    let report = check_trace(&trace);
    assert!(
        matches!(
            report.violations.as_slice(),
            [Violation::DeniedMoverMutatedPlacement { .. }]
        ),
        "{report}"
    );
}

#[test]
fn injected_lost_durable_checkpoint_is_named() {
    let mut trace = benign_trace(7, 6, 20);
    // plant a durability hole: the store at node 0 acks object 2's
    // checkpoint as durable, then cold restart hands back only an older
    // version — a torn WAL tail under fsync=Always, which must be flagged
    let object = ObjectId::new(2);
    trace.push(TraceEvent::new(
        0,
        EventKind::WalAppended {
            node: 0,
            object,
            object_epoch: 3,
            seq: 8,
            durable: true,
        },
    ));
    trace.push(TraceEvent::new(
        0,
        EventKind::ColdRecovered {
            node: 0,
            recovered: vec![(object, 3, 7)],
            torn: true,
            corrupt: false,
        },
    ));
    let report = check_trace(&trace);
    assert_eq!(report.violations.len(), 1, "{report}");
    match &report.violations[0] {
        Violation::DurableCheckpointLost {
            node,
            object: o,
            object_epoch,
            seq,
        } => {
            assert_eq!(*node, 0);
            assert_eq!(*o, object);
            assert_eq!(*object_epoch, 3);
            assert_eq!(*seq, 8);
        }
        other => panic!("expected DurableCheckpointLost, got {other}"),
    }
}

#[test]
fn injected_stale_epoch_after_recovery_is_named() {
    let mut trace = benign_trace(9, 6, 20);
    // plant a fencing regression: recovery reports object 4 at epoch 6,
    // then the object is reinstantiated at epoch 5 — a pre-restart zombie
    // epoch that would let fenced traffic act again
    let object = ObjectId::new(4);
    trace.push(TraceEvent::new(
        0,
        EventKind::ColdRecovered {
            node: 0,
            recovered: vec![(object, 6, 1)],
            torn: false,
            corrupt: false,
        },
    ));
    trace.push(TraceEvent::new(
        1,
        EventKind::Reinstantiated {
            object,
            at: NodeId::new(1),
            epoch: 5,
        },
    ));
    let report = check_trace(&trace);
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::StaleEpochAfterRecovery {
                object: o,
                epoch: 5,
                floor: 6,
            } if *o == object
        )),
        "expected StaleEpochAfterRecovery, got {report}"
    );
}
