//! The trace invariant checker.
//!
//! [`check_trace`] replays a collected event trace through a set of state
//! machines and verifies the paper's safety invariants:
//!
//! * **Single residency** — between migrations an object is live on exactly
//!   one node: every `Install` is either the object's first appearance, a
//!   re-install at its current host (crash-stash reclamation), or the
//!   completion of a `Ship` that *happened-before* it (checked with vector
//!   clocks, not wall-clock interleaving).
//! * **Place-lock exclusivity** (§3.2) — no two blocks hold an object's
//!   placement lock concurrently, and a denied mover never mutates
//!   placement: a block that was denied can only appear as a lock holder if
//!   an earlier grant (a duplicated move-request's first copy) explains it.
//! * **Closure atomicity** (§3.3/§3.4) — an A-transitive closure migrates
//!   as a unit: every locally co-hosted, movable, unpinned member the
//!   runtime committed to (the `ClosureBegin` member list) ships to the
//!   same destination before the main object does.
//! * **Lease soundness** — no lock is granted while another block's
//!   unexpired lease is held; renewals extend exactly the live lease.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use oml_core::ids::{BlockId, NodeId, ObjectId};

use crate::event::{process_name, EventKind, TraceEvent};
use crate::vclock::assign_clocks;

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An object was installed at a second node while still resident at the
    /// first — two live replicas.
    DoubleResidency {
        /// The twice-resident object.
        object: ObjectId,
        /// Where it already lived.
        resident_at: u32,
        /// Where the second install happened.
        also_at: u32,
    },
    /// An install completed a migration, but the ship that started it does
    /// not happen-before the install (concurrent under the vector-clock
    /// order) — the "migration" had no causal path.
    NonCausalInstall {
        /// The installed object.
        object: ObjectId,
        /// The installing node.
        at: u32,
    },
    /// An in-flight object landed at a node other than the ship's target.
    MisroutedInstall {
        /// The misrouted object.
        object: ObjectId,
        /// Where the ship was headed.
        expected: NodeId,
        /// Where the install happened.
        got: u32,
    },
    /// A node shipped an object it was not hosting.
    ShipWithoutResidency {
        /// The phantom object.
        object: ObjectId,
        /// The node that shipped it.
        at: u32,
    },
    /// Two blocks held one object's (non-expiring) placement lock at once.
    LockOverlap {
        /// The doubly locked object.
        object: ObjectId,
        /// The block already holding the lock.
        holder: BlockId,
        /// The block that acquired over it.
        claimant: BlockId,
    },
    /// A lock was granted while another block's lease still had time left.
    LeaseOverlap {
        /// The doubly leased object.
        object: ObjectId,
        /// The block whose lease was still live.
        holder: BlockId,
        /// The block that was granted anyway.
        claimant: BlockId,
        /// Milliseconds the holder's lease still had at the overlap.
        remaining_ms: u64,
    },
    /// A block whose move was denied later appeared as a lock holder with
    /// no earlier grant explaining it.
    DeniedMoverMutatedPlacement {
        /// The object the denied block locked.
        object: ObjectId,
        /// The denied-yet-holding block.
        block: BlockId,
    },
    /// A lock was acquired by a block that was never granted a move.
    LockWithoutGrant {
        /// The locked object.
        object: ObjectId,
        /// The unexplained holder.
        block: BlockId,
    },
    /// A lock-release event named a block that was not the holder.
    ReleaseMismatch {
        /// The object whose release misfired.
        object: ObjectId,
        /// The block the release named.
        block: BlockId,
        /// The actual holder, if any.
        holder: Option<BlockId>,
    },
    /// A closure member the runtime committed to ship was left behind when
    /// the main object departed.
    ClosureMemberLeftBehind {
        /// The closure's main object.
        main: ObjectId,
        /// The abandoned member.
        member: ObjectId,
        /// The destination the closure was headed to.
        to: NodeId,
    },
    /// Closure members shipped but the main object never did — the closure
    /// was torn apart by a mid-migration failure.
    ClosureTorn {
        /// The main object that stayed behind.
        main: ObjectId,
        /// The destination the members went to.
        to: NodeId,
    },
    /// A fenced (dead) incarnation installed a copy of an object that has
    /// since been reinstantiated under a newer epoch — the split-brain that
    /// epoch fencing exists to prevent. Also reported when a
    /// `Reinstantiated` event fails to increase the object's epoch.
    StaleIncarnation {
        /// The twice-alive object.
        object: ObjectId,
        /// Where the current-epoch copy lives.
        live_at: u32,
        /// Where the stale incarnation installed its copy.
        stale_at: u32,
        /// The object's live epoch at the time of the stale install.
        epoch: u64,
    },
    /// An object ended the trace with fewer live checkpoint replicas than
    /// the sustainable factor `min(k, available nodes)`, even though the
    /// last anti-entropy repair sweep had already seen the deficit — repair
    /// had its chance and did not restore the factor.
    ReplicationFactorViolation {
        /// The under-replicated object.
        object: ObjectId,
        /// Live checkpoint copies at available nodes at trace end.
        replicas: u32,
        /// The factor repair should sustain: `min(k, available nodes)`.
        required: u32,
    },
    /// Reinstantiation promoted a checkpoint copy older than a
    /// quorum-acknowledged write that still survived at an available
    /// replica — a durable update was silently discarded.
    StaleReplicaPromoted {
        /// The object recovered from a stale copy.
        object: ObjectId,
        /// The replica the stale copy was promoted from.
        replica: NodeId,
        /// The promoted copy's `(object_epoch, seq)` version.
        promoted: (u64, u64),
        /// The freshest quorum-durable version that still survived.
        durable: (u64, u64),
    },
    /// Traffic (or a fresh session) from a transport peer was delivered
    /// under an incarnation at or below one this process had already
    /// **refused at handshake time** — the accept-time fence leaked: a
    /// zombie got a frame through after being told it is dead.
    DeliveryAfterFencedHandshake {
        /// The zombie peer.
        peer: u32,
        /// The incarnation the delivery (or accepted session) carried.
        epoch: u64,
        /// The incarnation the fence had already refused (`epoch <=
        /// fenced` is the violation).
        fenced: u64,
    },
    /// A WAL record that was **durably acked** (appended and fsynced before
    /// the caller was told success) did not survive a cold restart of its
    /// store — the durability contract of `fsync=Always` was broken: a torn
    /// write, a skipped fsync, or corruption ate an acknowledged write.
    DurableCheckpointLost {
        /// The store that lost the record.
        node: u32,
        /// The lost object.
        object: ObjectId,
        /// The lost record's object epoch.
        object_epoch: u64,
        /// The lost record's refresh sequence.
        seq: u64,
    },
    /// After a cold restart recovered an object at some epoch, a later
    /// reinstantiation used an epoch at or below the recovered one — the
    /// epoch floor did not survive the restart, so PR 4's fencing can no
    /// longer tell the recovered copy from a zombie.
    StaleEpochAfterRecovery {
        /// The object reinstantiated under a stale epoch.
        object: ObjectId,
        /// The stale epoch the reinstantiation used.
        epoch: u64,
        /// The epoch floor cold recovery had established.
        floor: u64,
    },
}

impl fmt::Display for Violation {
    // one match arm per violation kind; length tracks the enum, not logic
    #[allow(clippy::too_many_lines)]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DoubleResidency {
                object,
                resident_at,
                also_at,
            } => write!(
                f,
                "double residency: {object} installed at {} while still resident at {}",
                process_name(*also_at),
                process_name(*resident_at)
            ),
            Violation::NonCausalInstall { object, at } => write!(
                f,
                "non-causal install: {object} landed at {} with no happens-before path from its ship",
                process_name(*at)
            ),
            Violation::MisroutedInstall {
                object,
                expected,
                got,
            } => write!(
                f,
                "misrouted install: {object} shipped towards {expected} but landed at {}",
                process_name(*got)
            ),
            Violation::ShipWithoutResidency { object, at } => write!(
                f,
                "ship without residency: {} shipped {object} it was not hosting",
                process_name(*at)
            ),
            Violation::LockOverlap {
                object,
                holder,
                claimant,
            } => write!(
                f,
                "lock overlap: {claimant} acquired {object} while {holder} still held it"
            ),
            Violation::LeaseOverlap {
                object,
                holder,
                claimant,
                remaining_ms,
            } => write!(
                f,
                "lease overlap: {claimant} granted {object} while {holder}'s lease had {remaining_ms} ms left"
            ),
            Violation::DeniedMoverMutatedPlacement { object, block } => write!(
                f,
                "denied mover mutated placement: {block} was denied yet locked {object}"
            ),
            Violation::LockWithoutGrant { object, block } => {
                write!(f, "lock without grant: {block} locked {object} without a granted move")
            }
            Violation::ReleaseMismatch {
                object,
                block,
                holder,
            } => write!(
                f,
                "release mismatch: {block} released {object} held by {holder:?}"
            ),
            Violation::ClosureMemberLeftBehind { main, member, to } => write!(
                f,
                "closure atomicity: member {member} left behind when {main}'s closure migrated to {to}"
            ),
            Violation::ClosureTorn { main, to } => write!(
                f,
                "closure torn: members shipped to {to} but main object {main} never did"
            ),
            Violation::StaleIncarnation {
                object,
                live_at,
                stale_at,
                epoch,
            } => write!(
                f,
                "stale incarnation: {object} (live epoch {epoch} at {}) re-installed at {} by a fenced incarnation",
                process_name(*live_at),
                process_name(*stale_at)
            ),
            Violation::ReplicationFactorViolation {
                object,
                replicas,
                required,
            } => write!(
                f,
                "replication factor: {object} ended with {replicas} live replica(s) where repair should sustain {required}"
            ),
            Violation::StaleReplicaPromoted {
                object,
                replica,
                promoted,
                durable,
            } => write!(
                f,
                "stale replica promoted: {object} recovered from {replica}'s copy e{}.{} while quorum-durable e{}.{} survived at an available node",
                promoted.0, promoted.1, durable.0, durable.1
            ),
            Violation::DeliveryAfterFencedHandshake {
                peer,
                epoch,
                fenced,
            } => write!(
                f,
                "delivery after fenced handshake: traffic from {} under incarnation {epoch} although incarnation {fenced} was already refused",
                process_name(*peer)
            ),
            Violation::DurableCheckpointLost {
                node,
                object,
                object_epoch,
                seq,
            } => write!(
                f,
                "durable checkpoint lost: {object} e{object_epoch}.{seq} was acked durable at {} but did not survive cold restart",
                process_name(*node)
            ),
            Violation::StaleEpochAfterRecovery {
                object,
                epoch,
                floor,
            } => write!(
                f,
                "stale epoch after recovery: {object} reinstantiated under epoch {epoch} although cold recovery established floor {floor}"
            ),
        }
    }
}

/// How an object currently stands in the residency state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residency {
    /// Installed at a node; the index points at the installing event.
    Resident { node: u32 },
    /// Shipped and not yet installed; `ship_idx` indexes the ship event.
    InFlight { to: NodeId, ship_idx: usize },
}

/// A closure migration in progress at one node.
#[derive(Debug)]
struct PendingClosure {
    main: ObjectId,
    to: NodeId,
    process: u32,
    remaining: BTreeSet<ObjectId>,
    shipped_any_member: bool,
}

/// A held placement lock as the checker models it.
#[derive(Debug, Clone, Copy)]
struct HeldLock {
    block: BlockId,
    last_active_ms: u64,
    ttl_ms: Option<u64>,
}

/// Replay state for the checkpoint-replication invariants. Armed by the
/// one-shot [`EventKind::ReplicationFactor`] marker; traces without the
/// marker skip all of this and are checked exactly as before.
#[derive(Debug)]
struct ReplState {
    /// The configured replication factor `k`.
    k: usize,
    /// Cluster size (restarts of out-of-range nodes are ignored).
    nodes: u32,
    /// Nodes currently up — neither crashed nor declared dead. Checkpoint
    /// stores survive a crash (they model durable state), so a crashed
    /// node's copies merely stop counting until its restart; only a
    /// declare-dead wipes them.
    available: BTreeSet<u32>,
    /// Per object: which node holds which `(object_epoch, seq)` copy.
    holdings: BTreeMap<ObjectId, BTreeMap<u32, (u64, u64)>>,
    /// Distinct acking replicas per write, for quorum accounting.
    acks: BTreeMap<(ObjectId, u64, u64), BTreeSet<u32>>,
    /// The freshest quorum-durable write per object.
    durable: BTreeMap<ObjectId, (u64, u64)>,
    /// Objects under-replicated when the last repair sweep ran (`None`
    /// until a sweep has been seen).
    last_sweep_under: Option<BTreeSet<ObjectId>>,
}

impl ReplState {
    fn new(k: u32, nodes: u32) -> Self {
        ReplState {
            k: usize::try_from(k).unwrap_or(usize::MAX),
            nodes,
            available: (0..nodes).collect(),
            holdings: BTreeMap::new(),
            acks: BTreeMap::new(),
            durable: BTreeMap::new(),
            last_sweep_under: None,
        }
    }

    /// Copies of `object` held at currently-available nodes.
    fn live_copies(&self, object: ObjectId) -> usize {
        self.holdings.get(&object).map_or(0, |copies| {
            copies.keys().filter(|n| self.available.contains(n)).count()
        })
    }

    /// The factor the cluster can sustain right now.
    fn required(&self) -> usize {
        self.k.min(self.available.len())
    }

    /// Objects whose live copy count is below the sustainable factor.
    fn under_replicated(&self) -> BTreeSet<ObjectId> {
        self.holdings
            .keys()
            .copied()
            .filter(|o| self.live_copies(*o) < self.required())
            .collect()
    }
}

/// The checker's verdict over one trace.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Every violation found, in trace order.
    pub violations: Vec<Violation>,
    /// Events examined.
    pub events: usize,
    /// Distinct processes seen.
    pub processes: usize,
    /// Distinct objects seen in residency events.
    pub objects: usize,
    /// `Recv` events whose message id had no matching `Send` (instrumentation
    /// gaps — zero on a fully traced run).
    pub orphan_recvs: usize,
}

impl CheckReport {
    /// Whether the trace satisfied every invariant.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "checked {} events across {} processes, {} objects ({} orphan recvs)",
            self.events, self.processes, self.objects, self.orphan_recvs
        )?;
        if self.violations.is_empty() {
            write!(f, "all invariants hold")
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Replays `trace` through the invariant state machines (see the module
/// docs) and reports every violation.
#[must_use]
#[allow(clippy::too_many_lines)] // one state machine per invariant, one match
pub fn check_trace(trace: &[TraceEvent]) -> CheckReport {
    let clocks = assign_clocks(trace);
    let mut report = CheckReport {
        events: trace.len(),
        ..CheckReport::default()
    };

    let mut processes: BTreeSet<u32> = BTreeSet::new();
    let mut objects: BTreeSet<ObjectId> = BTreeSet::new();
    let mut sends: BTreeSet<u64> = BTreeSet::new();

    let mut residency: BTreeMap<ObjectId, Residency> = BTreeMap::new();
    // objects that have been reinstantiated, and their latest epoch: any
    // later install of one at a node other than its current residence is a
    // fenced incarnation acting, not an ordinary double residency
    let mut live_epochs: BTreeMap<ObjectId, u64> = BTreeMap::new();
    let mut locks: BTreeMap<ObjectId, HeldLock> = BTreeMap::new();
    let mut granted: BTreeSet<BlockId> = BTreeSet::new();
    let mut denied: BTreeSet<BlockId> = BTreeSet::new();
    let mut closures: Vec<PendingClosure> = Vec::new();
    let mut repl: Option<ReplState> = None;
    // per (observing process, peer): the greatest incarnation refused at
    // handshake time — nothing at or below it may be delivered afterwards
    let mut fenced_floors: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    // per store: the freshest version acked *durable* per object (must
    // survive that store's cold restart), and appends still buffered (a
    // later WalSynced promotes them)
    let mut durable_wal: BTreeMap<u32, BTreeMap<ObjectId, (u64, u64)>> = BTreeMap::new();
    let mut buffered_wal: BTreeMap<u32, Vec<(ObjectId, u64, u64)>> = BTreeMap::new();
    // per object: the highest epoch any cold recovery handed back — later
    // reinstantiations must exceed it
    let mut recovered_floors: BTreeMap<ObjectId, u64> = BTreeMap::new();

    for (idx, ev) in trace.iter().enumerate() {
        processes.insert(ev.process);
        match &ev.kind {
            EventKind::Send { msg_id, .. } => {
                sends.insert(*msg_id);
            }
            EventKind::Recv { msg_id } => {
                if !sends.contains(msg_id) {
                    report.orphan_recvs += 1;
                }
            }
            EventKind::Install { object } => {
                objects.insert(*object);
                match residency.get(object) {
                    None => {
                        residency.insert(*object, Residency::Resident { node: ev.process });
                    }
                    Some(Residency::Resident { node }) if *node == ev.process => {
                        // duplicate install / crash-stash reclamation at the
                        // same host: a refresh, not a second replica
                    }
                    Some(Residency::Resident { node }) => {
                        if let Some(&epoch) = live_epochs.get(object) {
                            // the object was reinstantiated: a second live
                            // copy is a fenced incarnation's doing
                            report.violations.push(Violation::StaleIncarnation {
                                object: *object,
                                live_at: *node,
                                stale_at: ev.process,
                                epoch,
                            });
                        } else {
                            report.violations.push(Violation::DoubleResidency {
                                object: *object,
                                resident_at: *node,
                                also_at: ev.process,
                            });
                        }
                        residency.insert(*object, Residency::Resident { node: ev.process });
                    }
                    Some(Residency::InFlight { to, ship_idx }) => {
                        if to.as_u32() != ev.process {
                            report.violations.push(Violation::MisroutedInstall {
                                object: *object,
                                expected: *to,
                                got: ev.process,
                            });
                        } else if !clocks[*ship_idx].le(&clocks[idx]) {
                            report.violations.push(Violation::NonCausalInstall {
                                object: *object,
                                at: ev.process,
                            });
                        }
                        residency.insert(*object, Residency::Resident { node: ev.process });
                    }
                }
            }
            EventKind::Ship { object, to } => {
                objects.insert(*object);
                match residency.get(object) {
                    Some(Residency::Resident { node }) if *node == ev.process => {
                        residency.insert(
                            *object,
                            Residency::InFlight {
                                to: *to,
                                ship_idx: idx,
                            },
                        );
                    }
                    _ => {
                        report.violations.push(Violation::ShipWithoutResidency {
                            object: *object,
                            at: ev.process,
                        });
                        residency.insert(
                            *object,
                            Residency::InFlight {
                                to: *to,
                                ship_idx: idx,
                            },
                        );
                    }
                }
                // closure bookkeeping: a ship of a pending member (at the
                // closure's node, towards its destination) checks it off;
                // the main object's ship closes the closure out
                for pc in &mut closures {
                    if pc.process != ev.process {
                        continue;
                    }
                    if pc.remaining.remove(object) && *to == pc.to {
                        pc.shipped_any_member = true;
                    } else if *object == pc.main {
                        for member in std::mem::take(&mut pc.remaining) {
                            report.violations.push(Violation::ClosureMemberLeftBehind {
                                main: pc.main,
                                member,
                                to: pc.to,
                            });
                        }
                        pc.main = ObjectId::new(u32::MAX); // closed
                    }
                }
                closures.retain(|pc| pc.main != ObjectId::new(u32::MAX));
            }
            EventKind::MoveGranted { block, .. } => {
                granted.insert(*block);
            }
            EventKind::MoveDenied { block, .. } => {
                denied.insert(*block);
            }
            EventKind::LockAcquired {
                object,
                block,
                now_ms,
                ttl_ms,
            } => {
                if let Some(held) = locks.get(object) {
                    if held.block != *block {
                        match held.ttl_ms {
                            None => report.violations.push(Violation::LockOverlap {
                                object: *object,
                                holder: held.block,
                                claimant: *block,
                            }),
                            Some(ttl) => {
                                let expires = held.last_active_ms.saturating_add(ttl);
                                if expires > *now_ms {
                                    report.violations.push(Violation::LeaseOverlap {
                                        object: *object,
                                        holder: held.block,
                                        claimant: *block,
                                        remaining_ms: expires - *now_ms,
                                    });
                                }
                            }
                        }
                    }
                }
                if !granted.contains(block) {
                    if denied.contains(block) {
                        report
                            .violations
                            .push(Violation::DeniedMoverMutatedPlacement {
                                object: *object,
                                block: *block,
                            });
                    } else {
                        report.violations.push(Violation::LockWithoutGrant {
                            object: *object,
                            block: *block,
                        });
                    }
                }
                locks.insert(
                    *object,
                    HeldLock {
                        block: *block,
                        last_active_ms: *now_ms,
                        ttl_ms: *ttl_ms,
                    },
                );
            }
            EventKind::LeaseRenewed { object, now_ms } => {
                if let Some(held) = locks.get_mut(object) {
                    // the lease table only extends live leases; mirror that
                    let live = held
                        .ttl_ms
                        .is_none_or(|ttl| held.last_active_ms.saturating_add(ttl) > *now_ms);
                    if live {
                        held.last_active_ms = *now_ms;
                    }
                }
            }
            EventKind::LockReleased { object, block, .. } => match locks.get(object) {
                Some(held) if held.block == *block => {
                    locks.remove(object);
                }
                other => {
                    report.violations.push(Violation::ReleaseMismatch {
                        object: *object,
                        block: *block,
                        holder: other.map(|h| h.block),
                    });
                }
            },
            EventKind::ClosureBegin { main, to, members } => {
                closures.push(PendingClosure {
                    main: *main,
                    to: *to,
                    process: ev.process,
                    remaining: members.iter().copied().collect(),
                    shipped_any_member: false,
                });
            }
            EventKind::Reinstantiated { object, at, epoch } => {
                objects.insert(*object);
                if let Some(&floor) = recovered_floors.get(object) {
                    if *epoch <= floor {
                        report.violations.push(Violation::StaleEpochAfterRecovery {
                            object: *object,
                            epoch: *epoch,
                            floor,
                        });
                    }
                }
                if let Some(&prev) = live_epochs.get(object) {
                    if *epoch <= prev {
                        // epochs must be strictly increasing, or fencing
                        // cannot distinguish the copies
                        report.violations.push(Violation::StaleIncarnation {
                            object: *object,
                            live_at: at.as_u32(),
                            stale_at: at.as_u32(),
                            epoch: *epoch,
                        });
                    }
                }
                live_epochs.insert(*object, *epoch);
                // the fresh copy supersedes whatever residency the dead node
                // held; the matching Install at `at` is then a refresh
                residency.insert(*object, Residency::Resident { node: at.as_u32() });
            }
            EventKind::ReplicationFactor { k, nodes } => {
                repl = Some(ReplState::new(*k, *nodes));
            }
            EventKind::CheckpointStored {
                object,
                replica,
                object_epoch,
                seq,
            } => {
                if let Some(r) = repl.as_mut() {
                    let copies = r.holdings.entry(*object).or_default();
                    let version = (*object_epoch, *seq);
                    let slot = copies.entry(replica.as_u32()).or_insert(version);
                    if *slot < version {
                        *slot = version;
                    }
                }
            }
            EventKind::CheckpointAcked {
                object,
                object_epoch,
                seq,
                replica,
                quorum,
            } => {
                if let Some(r) = repl.as_mut() {
                    let set = r.acks.entry((*object, *object_epoch, *seq)).or_default();
                    set.insert(replica.as_u32());
                    if set.len() >= usize::try_from(*quorum).unwrap_or(usize::MAX) {
                        let write = (*object_epoch, *seq);
                        let durable = r.durable.entry(*object).or_insert(write);
                        if *durable < write {
                            *durable = write;
                        }
                    }
                }
            }
            EventKind::PromotedFrom {
                object,
                replica,
                object_epoch,
                seq,
            } => {
                if let Some(r) = repl.as_ref() {
                    let promoted = (*object_epoch, *seq);
                    if let Some(&durable) = r.durable.get(object) {
                        // only a violation if the durable write actually
                        // survived somewhere the promoter could have read
                        let survives = r.holdings.get(object).is_some_and(|copies| {
                            copies
                                .iter()
                                .any(|(n, v)| r.available.contains(n) && *v >= durable)
                        });
                        if durable > promoted && survives {
                            report.violations.push(Violation::StaleReplicaPromoted {
                                object: *object,
                                replica: *replica,
                                promoted,
                                durable,
                            });
                        }
                    }
                }
            }
            EventKind::RepairSweep => {
                if let Some(r) = repl.as_mut() {
                    r.last_sweep_under = Some(r.under_replicated());
                }
            }
            EventKind::Crash { node } => {
                if let Some(r) = repl.as_mut() {
                    r.available.remove(&node.as_u32());
                }
            }
            EventKind::Restart { node } => {
                if let Some(r) = repl.as_mut() {
                    if node.as_u32() < r.nodes {
                        r.available.insert(node.as_u32());
                    }
                }
            }
            EventKind::DeclaredDead { node } => {
                if let Some(r) = repl.as_mut() {
                    r.available.remove(&node.as_u32());
                    // declare-dead wipes the dead node's checkpoint store
                    for copies in r.holdings.values_mut() {
                        copies.remove(&node.as_u32());
                    }
                }
            }
            EventKind::HandshakeFenced { peer, epoch } => {
                let floor = fenced_floors.entry((ev.process, *peer)).or_insert(0);
                *floor = (*floor).max(*epoch);
            }
            EventKind::TransportDelivery { peer, epoch }
            | EventKind::TransportConnected { peer, epoch }
            | EventKind::TransportReconnected { peer, epoch, .. } => {
                if let Some(&fenced) = fenced_floors.get(&(ev.process, *peer)) {
                    if *epoch <= fenced {
                        report
                            .violations
                            .push(Violation::DeliveryAfterFencedHandshake {
                                peer: *peer,
                                epoch: *epoch,
                                fenced,
                            });
                    }
                }
            }
            EventKind::WalAppended {
                node,
                object,
                object_epoch,
                seq,
                durable,
            } => {
                let version = (*object_epoch, *seq);
                if *durable {
                    let slot = durable_wal
                        .entry(*node)
                        .or_default()
                        .entry(*object)
                        .or_insert(version);
                    if *slot < version {
                        *slot = version;
                    }
                } else {
                    buffered_wal
                        .entry(*node)
                        .or_default()
                        .push((*object, *object_epoch, *seq));
                }
            }
            EventKind::WalSynced { node, .. } => {
                // everything appended before the sync is now on stable
                // storage: promote the node's buffered appends
                for (object, object_epoch, seq) in buffered_wal.entry(*node).or_default().drain(..)
                {
                    let version = (object_epoch, seq);
                    let slot = durable_wal
                        .entry(*node)
                        .or_default()
                        .entry(object)
                        .or_insert(version);
                    if *slot < version {
                        *slot = version;
                    }
                }
            }
            EventKind::ColdRecovered {
                node, recovered, ..
            } => {
                let recovered_versions: BTreeMap<ObjectId, (u64, u64)> =
                    recovered.iter().map(|&(o, e, s)| (o, (e, s))).collect();
                if let Some(expected) = durable_wal.get(node) {
                    for (&object, &(object_epoch, seq)) in expected {
                        let survived = recovered_versions
                            .get(&object)
                            .is_some_and(|&v| v >= (object_epoch, seq));
                        if !survived {
                            report.violations.push(Violation::DurableCheckpointLost {
                                node: *node,
                                object,
                                object_epoch,
                                seq,
                            });
                        }
                    }
                }
                // the store's content after restart IS the recovered set
                // (still on disk, hence still durable); buffered appends
                // died with the process
                durable_wal.insert(*node, recovered_versions);
                buffered_wal.remove(node);
                for &(object, object_epoch, _) in recovered {
                    let floor = recovered_floors.entry(object).or_insert(0);
                    *floor = (*floor).max(object_epoch);
                }
            }
            EventKind::MoveRequested { .. }
            | EventKind::SurrenderRequested { .. }
            | EventKind::Attach { .. }
            | EventKind::Detach { .. }
            | EventKind::Suspected { .. }
            | EventKind::FencedStale { .. }
            | EventKind::TransportDisconnected { .. }
            | EventKind::SnapshotCompacted { .. }
            | EventKind::BreakerOpen { .. } => {}
        }
    }

    // a closure whose members departed but whose main object never shipped
    // was torn by a mid-migration failure
    for pc in &closures {
        if pc.shipped_any_member {
            report.violations.push(Violation::ClosureTorn {
                main: pc.main,
                to: pc.to,
            });
        }
    }

    // a replication deficit counts only if it is present at trace end AND
    // the last repair sweep had already seen it — a dip the next sweep
    // would have fixed is the protocol working as designed
    if let Some(r) = &repl {
        if let Some(sweep_under) = &r.last_sweep_under {
            for object in r.under_replicated() {
                if sweep_under.contains(&object) {
                    report
                        .violations
                        .push(Violation::ReplicationFactorViolation {
                            object,
                            replicas: u32::try_from(r.live_copies(object)).unwrap_or(u32::MAX),
                            required: u32::try_from(r.required()).unwrap_or(u32::MAX),
                        });
                }
            }
        }
    }

    report.processes = processes.len();
    report.objects = objects.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn obj(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn blk(i: u32) -> BlockId {
        BlockId::new(i)
    }
    fn install(p: u32, o: u32) -> TraceEvent {
        TraceEvent::new(p, EventKind::Install { object: obj(o) })
    }
    fn ship(p: u32, o: u32, to: u32) -> TraceEvent {
        TraceEvent::new(
            p,
            EventKind::Ship {
                object: obj(o),
                to: NodeId::new(to),
            },
        )
    }
    fn send(p: u32, id: u64, to: u32) -> TraceEvent {
        TraceEvent::new(
            p,
            EventKind::Send {
                msg_id: id,
                to,
                desc: String::new(),
            },
        )
    }
    fn recv(p: u32, id: u64) -> TraceEvent {
        TraceEvent::new(p, EventKind::Recv { msg_id: id })
    }

    #[test]
    fn clean_migration_passes() {
        let trace = vec![
            install(0, 1),
            ship(0, 1, 2),
            send(0, 9, 2),
            recv(2, 9),
            install(2, 1),
        ];
        let report = check_trace(&trace);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.objects, 1);
    }

    #[test]
    fn install_without_causal_ship_is_flagged() {
        // the ship and install are on different processes with no message
        // edge between them: concurrent, hence non-causal
        let trace = vec![install(0, 1), ship(0, 1, 2), install(2, 1)];
        let report = check_trace(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::NonCausalInstall { .. }]
        ));
    }

    #[test]
    fn misrouted_install_is_flagged() {
        let trace = vec![
            install(0, 1),
            ship(0, 1, 2),
            send(0, 9, 3),
            recv(3, 9),
            install(3, 1),
        ];
        let report = check_trace(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::MisroutedInstall { .. }]
        ));
    }

    #[test]
    fn ship_of_unhosted_object_is_flagged() {
        let trace = vec![ship(0, 1, 2)];
        let report = check_trace(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ShipWithoutResidency { .. }]
        ));
    }

    #[test]
    fn reinstall_at_same_node_is_a_refresh() {
        // crash-stash reclamation reinstalls at the same host
        let trace = vec![install(0, 1), install(0, 1)];
        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn lock_lifecycle_is_clean() {
        let trace = vec![
            TraceEvent::new(
                0,
                EventKind::MoveGranted {
                    object: obj(1),
                    block: blk(0),
                },
            ),
            TraceEvent::new(
                0,
                EventKind::LockAcquired {
                    object: obj(1),
                    block: blk(0),
                    now_ms: 0,
                    ttl_ms: Some(100),
                },
            ),
            TraceEvent::new(
                0,
                EventKind::LeaseRenewed {
                    object: obj(1),
                    now_ms: 50,
                },
            ),
            TraceEvent::new(
                0,
                EventKind::LockReleased {
                    object: obj(1),
                    block: blk(0),
                    cause: crate::event::ReleaseCause::End,
                },
            ),
        ];
        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn acquire_after_expiry_is_sound() {
        let trace = vec![
            TraceEvent::new(
                0,
                EventKind::MoveGranted {
                    object: obj(1),
                    block: blk(0),
                },
            ),
            TraceEvent::new(
                0,
                EventKind::LockAcquired {
                    object: obj(1),
                    block: blk(0),
                    now_ms: 0,
                    ttl_ms: Some(100),
                },
            ),
            TraceEvent::new(
                0,
                EventKind::MoveGranted {
                    object: obj(1),
                    block: blk(1),
                },
            ),
            // 100 ms TTL, acquired at 0, next grant at 150: lease had expired
            TraceEvent::new(
                0,
                EventKind::LockAcquired {
                    object: obj(1),
                    block: blk(1),
                    now_ms: 150,
                    ttl_ms: Some(100),
                },
            ),
        ];
        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn duplicate_grant_then_deny_is_not_a_denied_mutation() {
        // a duplicated move-request: first copy granted (lock taken), the
        // second copy denied — the block appears in both sets, but the lock
        // acquisition is explained by the grant
        let trace = vec![
            TraceEvent::new(
                0,
                EventKind::MoveGranted {
                    object: obj(1),
                    block: blk(0),
                },
            ),
            TraceEvent::new(
                0,
                EventKind::LockAcquired {
                    object: obj(1),
                    block: blk(0),
                    now_ms: 0,
                    ttl_ms: None,
                },
            ),
            TraceEvent::new(
                0,
                EventKind::MoveDenied {
                    object: obj(1),
                    block: blk(0),
                },
            ),
        ];
        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn closure_members_shipping_before_main_pass() {
        let trace = vec![
            install(0, 1),
            install(0, 2),
            TraceEvent::new(
                0,
                EventKind::ClosureBegin {
                    main: obj(1),
                    to: NodeId::new(2),
                    members: vec![obj(2)],
                },
            ),
            ship(0, 2, 2),
            ship(0, 1, 2),
        ];
        let report = check_trace(&trace);
        // non-causal installs are absent because nothing installed yet; the
        // closure itself is clean
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn closure_member_left_behind_is_flagged() {
        let trace = vec![
            install(0, 1),
            install(0, 2),
            TraceEvent::new(
                0,
                EventKind::ClosureBegin {
                    main: obj(1),
                    to: NodeId::new(2),
                    members: vec![obj(2)],
                },
            ),
            // main ships without the member
            ship(0, 1, 2),
        ];
        let report = check_trace(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ClosureMemberLeftBehind { .. }]
        ));
    }

    #[test]
    fn torn_closure_is_flagged() {
        let trace = vec![
            install(0, 1),
            install(0, 2),
            TraceEvent::new(
                0,
                EventKind::ClosureBegin {
                    main: obj(1),
                    to: NodeId::new(2),
                    members: vec![obj(2)],
                },
            ),
            // the member departs but the main object never does
            ship(0, 2, 2),
        ];
        let report = check_trace(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::ClosureTorn { .. }]
        ));
    }

    #[test]
    fn report_renders_violations() {
        let trace = vec![install(0, 1), install(2, 1)];
        let report = check_trace(&trace);
        assert!(!report.is_clean());
        let text = report.to_string();
        assert!(text.contains("double residency"), "{text}");
    }

    fn reinstantiate(o: u32, at: u32, epoch: u64) -> TraceEvent {
        TraceEvent::new(
            crate::event::CLIENT_PROCESS,
            EventKind::Reinstantiated {
                object: obj(o),
                at: NodeId::new(at),
                epoch,
            },
        )
    }

    #[test]
    fn reinstantiation_after_crash_is_clean() {
        let trace = vec![
            install(2, 1),
            TraceEvent::new(
                crate::event::CLIENT_PROCESS,
                EventKind::Crash {
                    node: NodeId::new(2),
                },
            ),
            TraceEvent::new(
                crate::event::CLIENT_PROCESS,
                EventKind::DeclaredDead {
                    node: NodeId::new(2),
                },
            ),
            reinstantiate(1, 0, 1),
            // the matching install at the reinstantiation target
            install(0, 1),
        ];
        let report = check_trace(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn zombie_install_after_reinstantiation_is_stale_incarnation() {
        let trace = vec![
            install(2, 1),
            reinstantiate(1, 0, 1),
            install(0, 1),
            // the dead node's zombie reclaims its stashed copy
            install(2, 1),
        ];
        let report = check_trace(&trace);
        assert!(
            matches!(
                report.violations.as_slice(),
                [Violation::StaleIncarnation {
                    stale_at: 2,
                    live_at: 0,
                    ..
                }]
            ),
            "{report}"
        );
        assert!(report.to_string().contains("stale incarnation"));
    }

    #[test]
    fn non_increasing_reinstantiation_epoch_is_flagged() {
        let trace = vec![
            install(2, 1),
            reinstantiate(1, 0, 2),
            reinstantiate(1, 1, 2),
        ];
        let report = check_trace(&trace);
        assert!(
            matches!(
                report.violations.as_slice(),
                [Violation::StaleIncarnation { epoch: 2, .. }]
            ),
            "{report}"
        );
    }

    #[test]
    fn plain_double_residency_is_not_mislabelled() {
        // without any reinstantiation the old verdict is unchanged
        let trace = vec![install(0, 1), install(2, 1)];
        let report = check_trace(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::DoubleResidency { .. }]
        ));
    }

    fn repl_marker(k: u32, nodes: u32) -> TraceEvent {
        TraceEvent::new(
            crate::event::CLIENT_PROCESS,
            EventKind::ReplicationFactor { k, nodes },
        )
    }
    fn stored(o: u32, at: u32, epoch: u64, seq: u64) -> TraceEvent {
        TraceEvent::new(
            at,
            EventKind::CheckpointStored {
                object: obj(o),
                replica: NodeId::new(at),
                object_epoch: epoch,
                seq,
            },
        )
    }
    fn acked(o: u32, epoch: u64, seq: u64, replica: u32, quorum: u32) -> TraceEvent {
        TraceEvent::new(
            crate::event::CLIENT_PROCESS,
            EventKind::CheckpointAcked {
                object: obj(o),
                object_epoch: epoch,
                seq,
                replica: NodeId::new(replica),
                quorum,
            },
        )
    }
    fn sweep() -> TraceEvent {
        TraceEvent::new(crate::event::CLIENT_PROCESS, EventKind::RepairSweep)
    }
    fn dead(n: u32) -> TraceEvent {
        TraceEvent::new(
            crate::event::CLIENT_PROCESS,
            EventKind::DeclaredDead {
                node: NodeId::new(n),
            },
        )
    }
    fn promoted(o: u32, from: u32, epoch: u64, seq: u64) -> TraceEvent {
        TraceEvent::new(
            crate::event::CLIENT_PROCESS,
            EventKind::PromotedFrom {
                object: obj(o),
                replica: NodeId::new(from),
                object_epoch: epoch,
                seq,
            },
        )
    }

    #[test]
    fn replicated_checkpoints_at_full_factor_pass() {
        let trace = vec![
            repl_marker(2, 3),
            stored(1, 0, 0, 0),
            stored(1, 1, 0, 0),
            sweep(),
        ];
        let report = check_trace(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn deficit_surviving_the_last_sweep_is_flagged() {
        // n1 is declared dead (its copy wiped); the sweep after it sees o1
        // down to one copy and nothing repairs it before the trace ends
        let trace = vec![
            repl_marker(2, 3),
            stored(1, 0, 0, 0),
            stored(1, 1, 0, 0),
            dead(1),
            sweep(),
        ];
        let report = check_trace(&trace);
        assert!(
            matches!(
                report.violations.as_slice(),
                [Violation::ReplicationFactorViolation {
                    replicas: 1,
                    required: 2,
                    ..
                }]
            ),
            "{report}"
        );
        assert!(report.to_string().contains("replication factor"));
    }

    #[test]
    fn deficit_arising_after_the_last_sweep_passes() {
        // the death lands after the sweep: the next sweep would have fixed
        // it, so a trace ending here is not a repair failure
        let trace = vec![
            repl_marker(2, 3),
            stored(1, 0, 0, 0),
            stored(1, 1, 0, 0),
            sweep(),
            dead(1),
        ];
        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn repair_restoring_the_factor_clears_the_deficit() {
        let trace = vec![
            repl_marker(2, 3),
            stored(1, 0, 0, 0),
            stored(1, 1, 0, 0),
            dead(1),
            sweep(),
            // anti-entropy re-replicates onto n2 before the trace ends
            stored(1, 2, 0, 0),
        ];
        let report = check_trace(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn crashed_nodes_retain_but_do_not_count_their_copies() {
        let crash = |n: u32| {
            TraceEvent::new(
                crate::event::CLIENT_PROCESS,
                EventKind::Crash {
                    node: NodeId::new(n),
                },
            )
        };
        let restart = |n: u32| {
            TraceEvent::new(
                crate::event::CLIENT_PROCESS,
                EventKind::Restart {
                    node: NodeId::new(n),
                },
            )
        };
        // crash (copy dormant, sweep sees a deficit) then restart (copy
        // counts again): clean at trace end
        let trace = vec![
            repl_marker(2, 3),
            stored(1, 0, 0, 0),
            stored(1, 1, 0, 0),
            crash(1),
            sweep(),
            restart(1),
        ];
        let report = check_trace(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn stale_promotion_over_surviving_quorum_write_is_flagged() {
        let trace = vec![
            repl_marker(2, 3),
            stored(1, 0, 1, 5),
            stored(1, 1, 1, 5),
            acked(1, 1, 5, 0, 2),
            acked(1, 1, 5, 1, 2),
            // recovery promotes n2's old copy although n0 still holds e1.5
            promoted(1, 2, 1, 3),
        ];
        let report = check_trace(&trace);
        assert!(
            matches!(
                report.violations.as_slice(),
                [Violation::StaleReplicaPromoted {
                    promoted: (1, 3),
                    durable: (1, 5),
                    ..
                }]
            ),
            "{report}"
        );
        assert!(report.to_string().contains("stale replica promoted"));
    }

    #[test]
    fn promoting_the_best_survivor_is_not_stale() {
        // the quorum-durable copy died with n0 and n1; promoting n2's older
        // copy is the best recovery can do
        let trace = vec![
            repl_marker(2, 3),
            stored(1, 0, 1, 5),
            stored(1, 1, 1, 5),
            acked(1, 1, 5, 0, 2),
            acked(1, 1, 5, 1, 2),
            stored(1, 2, 1, 3),
            dead(0),
            dead(1),
            promoted(1, 2, 1, 3),
        ];
        let report = check_trace(&trace);
        assert!(
            !report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::StaleReplicaPromoted { .. })),
            "{report}"
        );
    }

    #[test]
    fn duplicate_acks_from_one_replica_never_reach_quorum() {
        // the same replica acking twice is one vote, not two: the write
        // never becomes durable, so the later promotion cannot be stale
        let trace = vec![
            repl_marker(2, 3),
            stored(1, 0, 1, 5),
            acked(1, 1, 5, 0, 2),
            acked(1, 1, 5, 0, 2),
            promoted(1, 2, 1, 3),
        ];
        let report = check_trace(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn unarmed_traces_ignore_replication_events() {
        // without the ReplicationFactor marker the new events are inert
        let trace = vec![stored(1, 0, 0, 0), dead(0), sweep(), promoted(1, 2, 0, 0)];
        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn detector_events_are_benign_local_ticks() {
        let trace = vec![
            TraceEvent::new(
                crate::event::CLIENT_PROCESS,
                EventKind::Suspected {
                    node: NodeId::new(1),
                },
            ),
            TraceEvent::new(
                crate::event::CLIENT_PROCESS,
                EventKind::BreakerOpen {
                    node: NodeId::new(1),
                },
            ),
            TraceEvent::new(1, EventKind::FencedStale { epoch: 3 }),
        ];
        assert!(check_trace(&trace).is_clean());
    }

    fn hs_fenced(at: u32, peer: u32, epoch: u64) -> TraceEvent {
        TraceEvent::new(at, EventKind::HandshakeFenced { peer, epoch })
    }
    fn delivery(at: u32, peer: u32, epoch: u64) -> TraceEvent {
        TraceEvent::new(at, EventKind::TransportDelivery { peer, epoch })
    }

    #[test]
    fn delivery_after_fenced_handshake_is_flagged() {
        let trace = vec![hs_fenced(0, 2, 1), delivery(0, 2, 1)];
        let report = check_trace(&trace);
        assert!(
            matches!(
                report.violations.as_slice(),
                [Violation::DeliveryAfterFencedHandshake {
                    peer: 2,
                    epoch: 1,
                    fenced: 1,
                }]
            ),
            "{report}"
        );
        assert!(report
            .to_string()
            .contains("delivery after fenced handshake"));
    }

    #[test]
    fn older_than_fenced_incarnation_is_also_flagged() {
        // refusing incarnation 3 fences everything at or below it
        let trace = vec![
            hs_fenced(0, 1, 3),
            TraceEvent::new(
                0,
                EventKind::TransportReconnected {
                    peer: 1,
                    epoch: 2,
                    attempt: 4,
                },
            ),
        ];
        let report = check_trace(&trace);
        assert!(matches!(
            report.violations.as_slice(),
            [Violation::DeliveryAfterFencedHandshake {
                epoch: 2,
                fenced: 3,
                ..
            }]
        ));
    }

    #[test]
    fn fresh_incarnation_after_fence_is_clean() {
        // the legitimate successor (strictly newer incarnation) connects,
        // delivers, drops, reconnects — none of it violates the fence
        let trace = vec![
            hs_fenced(0, 2, 1),
            TraceEvent::new(0, EventKind::TransportConnected { peer: 2, epoch: 2 }),
            delivery(0, 2, 2),
            TraceEvent::new(0, EventKind::TransportDisconnected { peer: 2 }),
            TraceEvent::new(
                0,
                EventKind::TransportReconnected {
                    peer: 2,
                    epoch: 2,
                    attempt: 2,
                },
            ),
            delivery(0, 2, 2),
        ];
        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn fences_are_per_observer_and_per_peer() {
        // node 1's fence of peer 2 says nothing about other observers or
        // other peers
        let trace = vec![hs_fenced(1, 2, 5), delivery(0, 2, 5), delivery(1, 3, 5)];
        assert!(check_trace(&trace).is_clean());
    }

    fn wal_append(node: u32, o: u32, epoch: u64, seq: u64, durable: bool) -> TraceEvent {
        TraceEvent::new(
            node,
            EventKind::WalAppended {
                node,
                object: obj(o),
                object_epoch: epoch,
                seq,
                durable,
            },
        )
    }
    fn wal_sync(node: u32, records: u64) -> TraceEvent {
        TraceEvent::new(node, EventKind::WalSynced { node, records })
    }
    fn cold(node: u32, recovered: Vec<(u32, u64, u64)>) -> TraceEvent {
        TraceEvent::new(
            node,
            EventKind::ColdRecovered {
                node,
                recovered: recovered
                    .into_iter()
                    .map(|(o, e, s)| (obj(o), e, s))
                    .collect(),
                torn: false,
                corrupt: false,
            },
        )
    }

    #[test]
    fn durable_append_surviving_cold_restart_is_clean() {
        let trace = vec![
            wal_append(0, 1, 1, 0, true),
            wal_append(0, 1, 1, 1, true),
            cold(0, vec![(1, 1, 1)]),
        ];
        let report = check_trace(&trace);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn durable_append_missing_after_cold_restart_is_flagged() {
        let trace = vec![wal_append(0, 1, 1, 3, true), cold(0, vec![(1, 1, 2)])];
        let report = check_trace(&trace);
        assert!(
            matches!(
                report.violations.as_slice(),
                [Violation::DurableCheckpointLost {
                    node: 0,
                    object_epoch: 1,
                    seq: 3,
                    ..
                }]
            ),
            "{report}"
        );
        assert!(report.to_string().contains("durable checkpoint lost"));
    }

    #[test]
    fn buffered_append_lost_in_cold_restart_is_acceptable() {
        // fsync=Never: the append was acked Buffered, so losing it is the
        // documented contract, not a violation
        let trace = vec![wal_append(0, 1, 1, 0, false), cold(0, vec![])];
        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn synced_append_becomes_durable_and_must_survive() {
        let trace = vec![
            wal_append(0, 1, 1, 0, false),
            wal_sync(0, 1),
            cold(0, vec![]),
        ];
        let report = check_trace(&trace);
        assert!(
            matches!(
                report.violations.as_slice(),
                [Violation::DurableCheckpointLost { .. }]
            ),
            "{report}"
        );
    }

    #[test]
    fn wal_tracking_is_per_store() {
        // node 1's restart says nothing about node 0's durable records
        let trace = vec![wal_append(0, 1, 1, 0, true), cold(1, vec![])];
        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn recovery_resets_the_durable_set_to_what_survived() {
        // after a clean recovery a second restart only owes what the first
        // one handed back
        let trace = vec![
            wal_append(0, 1, 1, 0, false),
            cold(0, vec![]),
            cold(0, vec![]),
        ];
        assert!(check_trace(&trace).is_clean());
    }

    #[test]
    fn reinstantiation_below_recovered_floor_is_flagged() {
        let trace = vec![cold(0, vec![(1, 4, 0)]), reinstantiate(1, 0, 3)];
        let report = check_trace(&trace);
        assert!(
            matches!(
                report.violations.as_slice(),
                [Violation::StaleEpochAfterRecovery {
                    epoch: 3,
                    floor: 4,
                    ..
                }]
            ),
            "{report}"
        );
        assert!(report.to_string().contains("stale epoch after recovery"));
    }

    #[test]
    fn reinstantiation_above_recovered_floor_is_clean() {
        let trace = vec![cold(0, vec![(1, 4, 0)]), reinstantiate(1, 0, 5)];
        let report = check_trace(&trace);
        assert!(report.is_clean(), "{report}");
    }
}
