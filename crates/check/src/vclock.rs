//! Vector clocks and the happens-before order derived from a trace.
//!
//! The checker does not trust wall-clock interleavings: two events are
//! ordered only if (a) the same process emitted both, in program order, or
//! (b) a chain of message `Send`→`Recv` edges connects them (Lamport's
//! happened-before). [`assign_clocks`] walks a trace once and gives every
//! event a vector clock; [`VClock::le`] then answers ordering queries in
//! O(processes).

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceEvent};

/// A vector clock over the trace's processes (sparse: absent = 0).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    counts: BTreeMap<u32, u64>,
}

impl VClock {
    /// The zero clock.
    #[must_use]
    pub fn new() -> Self {
        VClock::default()
    }

    /// This clock's component for `process`.
    #[must_use]
    pub fn get(&self, process: u32) -> u64 {
        self.counts.get(&process).copied().unwrap_or(0)
    }

    /// Increments `process`'s component (a local step).
    pub fn tick(&mut self, process: u32) {
        *self.counts.entry(process).or_insert(0) += 1;
    }

    /// Component-wise maximum with `other` (a message join).
    pub fn join(&mut self, other: &VClock) {
        for (&p, &c) in &other.counts {
            let slot = self.counts.entry(p).or_insert(0);
            *slot = (*slot).max(c);
        }
    }

    /// Whether `self` happened-before-or-equals `other` (component-wise ≤).
    #[must_use]
    pub fn le(&self, other: &VClock) -> bool {
        self.counts.iter().all(|(&p, &c)| c <= other.get(p))
    }

    /// Whether the two clocks are concurrent (neither ≤ the other).
    #[must_use]
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

/// Assigns a vector clock to every event of `trace`, in order.
///
/// The trace's slice per process must be that process's program order (the
/// collector guarantees this: each process appends its own events). A `Recv`
/// whose `msg_id` has no matching earlier `Send` contributes no extra edge —
/// the checker reports such orphans separately.
#[must_use]
pub fn assign_clocks(trace: &[TraceEvent]) -> Vec<VClock> {
    let mut per_process: BTreeMap<u32, VClock> = BTreeMap::new();
    let mut sent: BTreeMap<u64, VClock> = BTreeMap::new();
    let mut out = Vec::with_capacity(trace.len());
    for ev in trace {
        let clock = per_process.entry(ev.process).or_default();
        if let EventKind::Recv { msg_id } = &ev.kind {
            if let Some(send_clock) = sent.get(msg_id) {
                clock.join(send_clock);
            }
        }
        clock.tick(ev.process);
        if let EventKind::Send { msg_id, .. } = &ev.kind {
            sent.insert(*msg_id, clock.clone());
        }
        out.push(clock.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn send(process: u32, msg_id: u64, to: u32) -> TraceEvent {
        TraceEvent::new(
            process,
            EventKind::Send {
                msg_id,
                to,
                desc: String::new(),
            },
        )
    }
    fn recv(process: u32, msg_id: u64) -> TraceEvent {
        TraceEvent::new(process, EventKind::Recv { msg_id })
    }
    fn local(process: u32) -> TraceEvent {
        TraceEvent::new(
            process,
            EventKind::LeaseRenewed {
                object: oml_core::ids::ObjectId::new(0),
                now_ms: 0,
            },
        )
    }

    #[test]
    fn program_order_is_ordered() {
        let trace = vec![local(0), local(0)];
        let clocks = assign_clocks(&trace);
        assert!(clocks[0].le(&clocks[1]));
        assert!(!clocks[1].le(&clocks[0]));
    }

    #[test]
    fn cross_process_without_messages_is_concurrent() {
        let trace = vec![local(0), local(1)];
        let clocks = assign_clocks(&trace);
        assert!(clocks[0].concurrent(&clocks[1]));
    }

    #[test]
    fn send_recv_creates_an_edge() {
        let trace = vec![local(0), send(0, 7, 1), recv(1, 7), local(1)];
        let clocks = assign_clocks(&trace);
        // everything at p0 up to the send happens-before everything at p1
        // from the recv on
        assert!(clocks[0].le(&clocks[3]));
        assert!(clocks[1].le(&clocks[2]));
        assert!(!clocks[3].le(&clocks[0]));
    }

    #[test]
    fn transitive_edges_compose() {
        let trace = vec![
            send(0, 1, 1),
            recv(1, 1),
            send(1, 2, 2),
            recv(2, 2),
            local(2),
        ];
        let clocks = assign_clocks(&trace);
        assert!(clocks[0].le(&clocks[4]));
    }

    #[test]
    fn orphan_recv_adds_no_edge() {
        let trace = vec![local(0), recv(1, 99), local(1)];
        let clocks = assign_clocks(&trace);
        assert!(clocks[0].concurrent(&clocks[2]));
    }
}
