//! The lock-order deadlock analyzer.
//!
//! Debug builds of the runtime route every named `Mutex`/`RwLock`
//! acquisition through [`on_acquire`]/[`on_release`]. The recorder keeps a
//! thread-local stack of held sites and a global acquisition graph: holding
//! site `A` while acquiring site `B` adds the edge `A → B`. A cycle in that
//! graph is a potential deadlock — two threads can interleave the cyclic
//! acquisitions and block each other forever — so [`assert_acyclic`] fails
//! on any cycle, even one no execution has deadlocked on yet.
//!
//! The graph is cumulative across a process's lifetime; [`reset`] clears it
//! for test isolation. Sites are `&'static str` names so recording is
//! allocation-free on the hot path.
//!
//! [`unknown_edges`] additionally compares the observed graph against a
//! static allowlist of documented orderings (DESIGN.md §10.4): a new nesting
//! that nobody wrote down fails CI until it is reviewed and documented.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

static GRAPH: Mutex<BTreeSet<(&'static str, &'static str)>> = Mutex::new(BTreeSet::new());

thread_local! {
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn graph_lock() -> std::sync::MutexGuard<'static, BTreeSet<(&'static str, &'static str)>> {
    // the recorder's own mutex is infrastructure, not a recorded site; a
    // poisoned guard only means a panicking test thread held it mid-insert,
    // and the set is still structurally valid
    GRAPH
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Records that the current thread is acquiring the lock site `site`.
///
/// Call immediately before blocking on the lock. Every currently held site
/// gains an edge to `site`; reentrant same-site acquisition produces the
/// self-edge `site → site`, which [`find_cycle`] reports as a cycle (the
/// runtime's locks are not reentrant).
pub fn on_acquire(site: &'static str) {
    HELD.with(|held| {
        let held = held.borrow();
        if !held.is_empty() {
            let mut graph = graph_lock();
            for &h in held.iter() {
                graph.insert((h, site));
            }
        }
    });
    HELD.with(|held| held.borrow_mut().push(site));
}

/// Records that the current thread released the lock site `site`.
///
/// Releases need not be LIFO (guards can be dropped out of order); the most
/// recent matching hold is removed.
pub fn on_release(site: &'static str) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == site) {
            held.remove(pos);
        }
    });
}

/// A snapshot of the accumulated acquisition graph, sorted.
#[must_use]
pub fn edges() -> Vec<(&'static str, &'static str)> {
    graph_lock().iter().copied().collect()
}

/// Clears the global graph (test isolation). Does not touch other threads'
/// held stacks — only call between workloads, not while locks are held.
pub fn reset() {
    graph_lock().clear();
}

/// Searches the accumulated graph for a cycle and returns one as a path
/// `[a, b, ..., a]`, or `None` if the graph is acyclic.
#[must_use]
pub fn find_cycle() -> Option<Vec<&'static str>> {
    find_cycle_in(&edges())
}

/// Cycle search over an explicit edge list (the pure core of
/// [`find_cycle`], usable on snapshots).
#[must_use]
pub fn find_cycle_in(edges: &[(&'static str, &'static str)]) -> Option<Vec<&'static str>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }

    fn dfs(
        node: &'static str,
        adj: &BTreeMap<&str, Vec<&'static str>>,
        color: &mut BTreeMap<&str, Color>,
        stack: &mut Vec<&'static str>,
    ) -> Option<Vec<&'static str>> {
        color.insert(node, Color::Grey);
        stack.push(node);
        for &next in adj.get(node).into_iter().flatten() {
            match color.get(next).copied().unwrap_or(Color::White) {
                Color::Grey => {
                    let start = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<&'static str> = stack[start..].to_vec();
                    cycle.push(next);
                    return Some(cycle);
                }
                Color::White => {
                    if let Some(cycle) = dfs(next, adj, color, stack) {
                        return Some(cycle);
                    }
                }
                Color::Black => {}
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
        None
    }

    let mut adj: BTreeMap<&str, Vec<&'static str>> = BTreeMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut color: BTreeMap<&str, Color> = BTreeMap::new();
    let mut stack: Vec<&'static str> = Vec::new();

    let starts: Vec<&'static str> = edges.iter().map(|&(a, _)| a).collect();
    for node in starts {
        if color.get(node).copied().unwrap_or(Color::White) == Color::White {
            if let Some(cycle) = dfs(node, &adj, &mut color, &mut stack) {
                return Some(cycle);
            }
        }
    }
    None
}

/// Asserts the accumulated acquisition graph is acyclic.
///
/// # Panics
///
/// Panics with the offending `a -> b -> ... -> a` path if the graph has a
/// cycle (a potential deadlock).
pub fn assert_acyclic() {
    if let Some(cycle) = find_cycle() {
        panic!("lock-order cycle detected: {}", cycle.join(" -> "));
    }
}

/// Observed edges that the static allowlist does not cover.
///
/// `allowed` is the documented set of legal orderings; any observed edge
/// outside it is returned so CI can fail until the new nesting is reviewed.
#[must_use]
pub fn unknown_edges(
    allowed: &[(&'static str, &'static str)],
) -> Vec<(&'static str, &'static str)> {
    let allowed: BTreeSet<(&str, &str)> = allowed.iter().copied().collect();
    edges()
        .into_iter()
        .filter(|&(a, b)| !allowed.contains(&(a, b)))
        .collect()
}

/// Renders the graph as `a -> b` lines for reports.
#[must_use]
pub fn render_edges(edges: &[(&'static str, &'static str)]) -> String {
    let mut out = String::new();
    for (a, b) in edges {
        out.push_str(a);
        out.push_str(" -> ");
        out.push_str(b);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // the global graph is process-wide state: serialize the tests that
    // mutate it
    static TEST_GATE: Mutex<()> = Mutex::new(());

    fn gate() -> MutexGuard<'static, ()> {
        TEST_GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn nested_acquisition_records_an_edge() {
        let _g = gate();
        reset();
        on_acquire("a");
        on_acquire("b");
        on_release("b");
        on_release("a");
        assert_eq!(edges(), vec![("a", "b")]);
        assert!(find_cycle().is_none());
    }

    #[test]
    fn sequential_acquisition_records_nothing() {
        let _g = gate();
        reset();
        on_acquire("a");
        on_release("a");
        on_acquire("b");
        on_release("b");
        assert!(edges().is_empty());
    }

    #[test]
    fn opposite_nesting_orders_form_a_cycle() {
        let _g = gate();
        reset();
        on_acquire("a");
        on_acquire("b");
        on_release("b");
        on_release("a");
        on_acquire("b");
        on_acquire("a");
        on_release("a");
        on_release("b");
        let cycle = find_cycle().expect("a<->b must cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
    }

    #[test]
    fn three_way_cycle_is_found() {
        let cycle =
            find_cycle_in(&[("a", "b"), ("b", "c"), ("c", "a"), ("x", "y")]).expect("cycle exists");
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn reentrant_acquisition_is_a_self_cycle() {
        let _g = gate();
        reset();
        on_acquire("a");
        on_acquire("a");
        on_release("a");
        on_release("a");
        assert_eq!(find_cycle(), Some(vec!["a", "a"]));
    }

    #[test]
    fn out_of_order_release_keeps_the_stack_consistent() {
        let _g = gate();
        reset();
        on_acquire("a");
        on_acquire("b");
        on_release("a"); // guard dropped out of order
        on_acquire("c"); // only b is held now
        on_release("c");
        on_release("b");
        assert_eq!(edges(), vec![("a", "b"), ("b", "c")]);
    }

    #[test]
    fn unknown_edges_filters_the_allowlist() {
        let _g = gate();
        reset();
        on_acquire("a");
        on_acquire("b");
        on_release("b");
        on_acquire("c");
        on_release("c");
        on_release("a");
        assert_eq!(unknown_edges(&[("a", "b")]), vec![("a", "c")]);
        assert!(unknown_edges(&[("a", "b"), ("a", "c")]).is_empty());
    }

    #[test]
    fn render_is_stable() {
        assert_eq!(render_edges(&[("a", "b")]), "a -> b\n");
    }
}
