//! oml-check — protocol invariant and race checker for the migration
//! runtime.
//!
//! Two analysis engines:
//!
//! 1. **Trace invariant checker** ([`checker::check_trace`]): consumes the
//!    structured event traces the runtime emits when built with tracing
//!    enabled, derives the happens-before partial order from vector clocks
//!    ([`vclock`]), and verifies the paper's safety invariants — single
//!    residency, place-lock exclusivity (denied movers never mutate
//!    placement), closure atomicity, and lease soundness.
//! 2. **Lock-order analyzer** ([`lockorder`]): a debug-build recorder over
//!    the runtime's named `Mutex`/`RwLock` sites that accumulates the lock
//!    acquisition graph and fails on cycles (potential deadlocks), with an
//!    allowlist check so undocumented nestings fail CI.
//! 3. **Schedule explorer** ([`explore`]): a bounded model checker that
//!    enumerates every interleaving of a small cluster configuration under
//!    a virtual scheduler — dynamic partial-order reduction with sleep sets
//!    over a vector-clock independence relation, state-hash pruning and
//!    budgets — streaming each schedule through the invariant checker and
//!    minimizing any violation into a replayable schedule file.
//!
//! The crate depends only on `oml-core` (for the id newtypes) and
//! `oml-des` (for the explorer's virtual clock), and performs no I/O: the
//! runtime emits, this crate judges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]

pub mod checker;
pub mod event;
pub mod explore;
pub mod lockorder;
pub mod vclock;

pub use checker::{check_trace, CheckReport, Violation};
pub use event::{process_name, EventKind, ReleaseCause, TraceEvent, CLIENT_PROCESS};
pub use vclock::{assign_clocks, VClock};
