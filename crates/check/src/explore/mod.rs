//! Systematic exploration of migration-protocol schedules.
//!
//! `explore` turns the trace checker from a sampling tool into a bounded
//! model checker: a small cluster configuration (2–4 nodes, 2–4 objects,
//! optional crash/restart faults) runs under a *virtual scheduler* in which
//! every message delivery, timer firing and crash point is a schedulable
//! [`Step`]. The DPOR search ([`explore()`]) enumerates interleavings up to
//! partial-order equivalence (sleep sets over a vector-clock-validated
//! independence relation, state-hash pruning, budgets); every schedule
//! streams through [`crate::checker::check_trace`] plus the model's quiesce
//! checks, and any violation is minimized into a replayable [`Schedule`]
//! whose replay is verified bit-identical by trace digest.
//!
//! Two **seeded mutations** re-introduce the real bugs PR 3's checker
//! caught in the runtime, as negative controls the explorer must find:
//!
//! * [`Mutation::StrandedLocks`] — a crash loses the dead host's volatile
//!   lock state without releasing the placement locks it stranded
//!   (`crash_node` before the fix); found as a lease/lock overlap after the
//!   node restarts and re-grants.
//! * [`Mutation::IgnoreDeadline`] — the policy grants a move request whose
//!   requester's deadline has already passed (`handle_move` before the
//!   fix); found as a grant landing on an abandoned block, orphaning a
//!   never-released lock.
//!
//! ```
//! use oml_check::explore::{explore, Budget, ExploreConfig};
//!
//! let report = explore(&ExploreConfig::two_node_migration(), &Budget::default());
//! assert!(report.exhaustive && report.is_clean());
//!
//! let report = explore(&ExploreConfig::stranded_locks_bug(), &Budget::default());
//! assert!(!report.is_clean());
//! let replay = report.counterexamples[0].schedule.replay().unwrap();
//! assert!(replay.bit_identical && replay.reproduced());
//! ```

mod dpor;
mod model;
mod schedule;

pub use dpor::{explore, Budget, ExploreReport};
pub use model::{trace_digest, Fnv64, Footprint, Model, Step};
pub use schedule::{minimize, ReplayOutcome, Schedule, ScheduleError};

use oml_core::ids::{BlockId, ObjectId};

/// One scripted client move: "move `object` to node `to`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MoveOp {
    /// The object to move.
    pub object: u32,
    /// The destination node.
    pub to: u32,
}

/// A seeded protocol mutation — PR 3's real bugs, re-introduced as negative
/// controls for the explorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Crashes drop the dead host's lock state without releasing the locks.
    StrandedLocks,
    /// Grants ignore the requester's expired deadline.
    IgnoreDeadline,
}

/// A small-scope cluster configuration for the explorer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Human-readable name (appears in schedule files and reports).
    pub name: String,
    /// Node count (2–4 is the intended scope).
    pub nodes: u32,
    /// Object count; object `o` starts at node `o % nodes`.
    pub objects: u32,
    /// The scripted client moves, all issued at time zero in order; op `i`
    /// runs as move block `i`.
    pub ops: Vec<MoveOp>,
    /// Placement-lock lease TTL; `None` for never-expiring locks.
    pub lease_ttl_ms: Option<u64>,
    /// The client's (absolute) deadline for every move request.
    pub deadline_ms: u64,
    /// Whether the client-deadline timer is a schedulable step.
    pub client_timeouts: bool,
    /// Whether the lease sweeper is a schedulable step.
    pub sweeps: bool,
    /// Whether crash/restart faults are schedulable steps.
    pub faults: bool,
    /// Total crash budget across the schedule.
    pub max_crashes: u32,
    /// Seeded protocol mutation, if any.
    pub mutation: Option<Mutation>,
}

impl ExploreConfig {
    /// The acceptance configuration: two nodes swap two objects, leases and
    /// the sweeper on. Exhaustively enumerable in well under a second and
    /// expected clean.
    #[must_use]
    pub fn two_node_migration() -> Self {
        ExploreConfig {
            name: "two-node-migration".to_string(),
            nodes: 2,
            objects: 2,
            ops: vec![MoveOp { object: 0, to: 1 }, MoveOp { object: 1, to: 0 }],
            lease_ttl_ms: Some(500),
            deadline_ms: 60_000,
            client_timeouts: false,
            sweeps: true,
            faults: false,
            max_crashes: 0,
            mutation: None,
        }
    }

    /// Two blocks contend for one object (plus a bystander move) with
    /// client timeouts and the sweeper live — exercises denial, abandonment
    /// and expiry-then-regrant. Expected clean.
    #[must_use]
    pub fn contended() -> Self {
        ExploreConfig {
            name: "contended".to_string(),
            nodes: 2,
            objects: 2,
            ops: vec![
                MoveOp { object: 0, to: 1 },
                MoveOp { object: 0, to: 0 },
                MoveOp { object: 1, to: 0 },
            ],
            lease_ttl_ms: Some(500),
            deadline_ms: 400,
            client_timeouts: true,
            sweeps: true,
            faults: false,
            max_crashes: 0,
            mutation: None,
        }
    }

    /// Three nodes, two migrations, one crash/restart anywhere in the
    /// schedule — the crash-point sweep. Expected clean: correct crash
    /// handling releases stranded locks.
    #[must_use]
    pub fn crashy() -> Self {
        ExploreConfig {
            name: "crashy".to_string(),
            nodes: 3,
            objects: 2,
            ops: vec![MoveOp { object: 0, to: 1 }, MoveOp { object: 1, to: 2 }],
            lease_ttl_ms: Some(500),
            deadline_ms: 60_000,
            client_timeouts: false,
            sweeps: true,
            faults: true,
            max_crashes: 1,
            mutation: None,
        }
    }

    /// Negative control for [`Mutation::StrandedLocks`]: two blocks move
    /// one object back and forth across a crash/restart. The explorer must
    /// find a lease overlap (the stranded lock is never released, so the
    /// restarted node's re-grant overlaps it).
    #[must_use]
    pub fn stranded_locks_bug() -> Self {
        ExploreConfig {
            name: "stranded-locks-bug".to_string(),
            nodes: 2,
            objects: 2,
            ops: vec![MoveOp { object: 0, to: 1 }, MoveOp { object: 0, to: 0 }],
            lease_ttl_ms: Some(1_000),
            deadline_ms: 60_000,
            client_timeouts: false,
            sweeps: false,
            faults: true,
            max_crashes: 1,
            mutation: Some(Mutation::StrandedLocks),
        }
    }

    /// Negative control for [`Mutation::IgnoreDeadline`]: non-expiring
    /// locks and a short client deadline. The explorer must find the
    /// orphaned lock a post-deadline grant leaves on an abandoned block.
    #[must_use]
    pub fn ignore_deadline_bug() -> Self {
        ExploreConfig {
            name: "ignore-deadline-bug".to_string(),
            nodes: 2,
            objects: 2,
            ops: vec![MoveOp { object: 0, to: 1 }, MoveOp { object: 1, to: 0 }],
            lease_ttl_ms: None,
            deadline_ms: 100,
            client_timeouts: true,
            sweeps: false,
            faults: false,
            max_crashes: 0,
            mutation: Some(Mutation::IgnoreDeadline),
        }
    }

    /// The bundled configuration matrix `repro explore` runs: the clean
    /// trio first, then the two seeded-mutation negative controls.
    #[must_use]
    pub fn matrix() -> Vec<ExploreConfig> {
        vec![
            Self::two_node_migration(),
            Self::contended(),
            Self::crashy(),
            Self::stranded_locks_bug(),
            Self::ignore_deadline_bug(),
        ]
    }

    /// Whether this configuration carries a seeded mutation (and therefore
    /// *must* produce a counterexample).
    #[must_use]
    pub fn expects_violation(&self) -> bool {
        self.mutation.is_some()
    }
}

/// A violation the explorer found, minimized and replayable.
#[derive(Debug)]
pub struct Counterexample {
    /// The minimized schedule (embeds its configuration and trace digest).
    pub schedule: Schedule,
    /// Checker violations the minimized schedule produces.
    pub violations: Vec<crate::Violation>,
    /// Orphaned locks (object, block) left at quiesce — grants that landed
    /// on abandoned blocks and can never be released.
    pub orphans: Vec<(ObjectId, BlockId)>,
}

impl Counterexample {
    /// One-line description of what went wrong.
    #[must_use]
    pub fn headline(&self) -> String {
        if let Some(v) = self.violations.first() {
            format!("{v:?}")
        } else if let Some((o, b)) = self.orphans.first() {
            format!("OrphanedLock {{ object: {o}, block: {b} }}")
        } else {
            "unknown".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vclock::assign_clocks;

    #[test]
    fn two_node_migration_is_exhaustively_clean() {
        let report = explore(&ExploreConfig::two_node_migration(), &Budget::default());
        assert!(report.exhaustive, "budget too small: {report:?}");
        assert!(report.is_clean(), "unexpected violation: {report:?}");
        assert!(report.schedules > 1, "explorer found only one schedule");
    }

    #[test]
    fn contended_config_is_clean() {
        let report = explore(&ExploreConfig::contended(), &Budget::default());
        assert!(report.exhaustive, "budget too small: {report:?}");
        assert!(report.is_clean(), "unexpected violation: {report:?}");
    }

    #[test]
    fn crashy_config_is_clean() {
        let report = explore(&ExploreConfig::crashy(), &Budget::default());
        assert!(report.exhaustive, "budget too small: {report:?}");
        assert!(report.is_clean(), "unexpected violation: {report:?}");
    }

    #[test]
    fn stranded_locks_mutation_is_found_and_replays() {
        let report = explore(&ExploreConfig::stranded_locks_bug(), &Budget::smoke());
        assert!(!report.is_clean(), "mutation not found: {report:?}");
        let cx = &report.counterexamples[0];
        assert!(
            !cx.violations.is_empty(),
            "expected a checker violation, got {cx:?}"
        );
        let replay = cx.schedule.replay().expect("minimized schedule replays");
        assert!(replay.bit_identical, "replay diverged");
        assert!(replay.reproduced(), "replay lost the violation");
    }

    #[test]
    fn ignore_deadline_mutation_is_found_and_replays() {
        let report = explore(&ExploreConfig::ignore_deadline_bug(), &Budget::smoke());
        assert!(!report.is_clean(), "mutation not found: {report:?}");
        let cx = &report.counterexamples[0];
        assert!(
            !cx.orphans.is_empty(),
            "expected an orphaned lock, got {cx:?}"
        );
        let replay = cx.schedule.replay().expect("minimized schedule replays");
        assert!(replay.bit_identical, "replay diverged");
        assert!(replay.reproduced(), "replay lost the violation");
    }

    #[test]
    fn schedule_text_round_trips() {
        let report = explore(&ExploreConfig::ignore_deadline_bug(), &Budget::smoke());
        let schedule = &report.counterexamples[0].schedule;
        let text = schedule.to_text();
        let parsed = Schedule::from_text(&text).expect("round trip parses");
        assert_eq!(parsed.cfg, schedule.cfg);
        assert_eq!(parsed.steps, schedule.steps);
        assert_eq!(parsed.trace_digest, schedule.trace_digest);
        let replay = parsed.replay().expect("parsed schedule replays");
        assert!(replay.bit_identical && replay.reproduced());
    }

    #[test]
    fn corrupted_schedule_is_rejected() {
        assert!(matches!(
            Schedule::from_text("nonsense line"),
            Err(ScheduleError::Parse { .. })
        ));
        let mut sched = Schedule {
            cfg: ExploreConfig::two_node_migration(),
            steps: vec![Step::Deliver { msg: 999 }],
            trace_digest: 0,
        };
        assert!(matches!(
            sched.replay(),
            Err(ScheduleError::StepNotEnabled { index: 0, .. })
        ));
        // a wrong digest replays but is not bit-identical
        sched.steps.clear();
        let outcome = sched.replay().expect("empty schedule replays");
        assert!(!outcome.bit_identical);
    }

    /// The footprint independence relation must agree with the vector-clock
    /// happens-before: when two adjacent steps are independent, the events
    /// they emit are pairwise concurrent.
    #[test]
    fn independent_steps_emit_concurrent_events() {
        let cfg = ExploreConfig::two_node_migration();
        let mut m = Model::new(&cfg);
        let mut checked = 0;
        // walk the first schedule depth-first, checking every adjacent
        // independent pair along the way
        loop {
            let enabled = m.enabled();
            let Some(&first) = enabled.first() else { break };
            for &other in &enabled[1..] {
                if !m.independent(first, other) {
                    continue;
                }
                let mut probe = m.clone();
                let a_start = probe.trace().len();
                probe.apply(first);
                let a_end = probe.trace().len();
                probe.apply(other);
                let b_end = probe.trace().len();
                let clocks = assign_clocks(probe.trace());
                for i in a_start..a_end {
                    for j in a_end..b_end {
                        assert!(
                            clocks[i].concurrent(&clocks[j]),
                            "independent steps {first:?}/{other:?} emitted ordered events"
                        );
                        checked += 1;
                    }
                }
            }
            m.apply(first);
        }
        assert!(checked > 0, "no independent pair was ever enabled");
    }

    /// Swapping two independent adjacent steps must land in the same state
    /// (the commutation DPOR relies on).
    #[test]
    fn independent_steps_commute() {
        let cfg = ExploreConfig::contended();
        let m = Model::new(&cfg);
        let enabled = m.enabled();
        let mut checked = 0;
        for (i, &a) in enabled.iter().enumerate() {
            for &b in &enabled[i + 1..] {
                if !m.independent(a, b) {
                    continue;
                }
                let mut ab = m.clone();
                ab.apply(a);
                ab.apply(b);
                let mut ba = m.clone();
                ba.apply(b);
                ba.apply(a);
                assert_eq!(
                    ab.state_digest(),
                    ba.state_digest(),
                    "steps {a:?}/{b:?} were marked independent but do not commute"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no independent pair in the initial state");
    }

    #[test]
    fn minimized_schedules_are_short() {
        let report = explore(&ExploreConfig::stranded_locks_bug(), &Budget::smoke());
        let cx = &report.counterexamples[0];
        // the race needs: grant, ship+install, crash, restart, re-deliver —
        // minimization should land close to that core
        assert!(
            cx.schedule.steps.len() <= 8,
            "minimizer left a long schedule: {:?}",
            cx.schedule.steps
        );
    }

    #[test]
    fn budget_cuts_clear_the_exhaustive_flag() {
        let budget = Budget {
            max_schedules: 2,
            ..Budget::default()
        };
        let report = explore(&ExploreConfig::contended(), &budget);
        assert!(!report.exhaustive);
    }

    #[test]
    fn state_digest_is_stable_and_trace_digest_detects_changes() {
        let cfg = ExploreConfig::two_node_migration();
        let a = Model::new(&cfg);
        let b = Model::new(&cfg);
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(trace_digest(a.trace()), trace_digest(b.trace()));
        let mut c = Model::new(&cfg);
        let step = c.enabled()[0];
        c.apply(step);
        assert_ne!(trace_digest(a.trace()), trace_digest(c.trace()));
    }
}
