//! Counterexample schedules: minimization, a text serialization, and
//! bit-identical replay.
//!
//! A [`Schedule`] is self-contained: it embeds the full
//! [`ExploreConfig`] (including any seeded mutation) plus the step list, so
//! `repro explore --replay file` rebuilds the exact model and re-executes
//! the exact choices. The file also records the FNV-1a digest of the trace
//! the schedule produced; replay recomputes it and fails loudly on any
//! divergence — the "bit-identical" gate.

use std::fmt;

use crate::checker::check_trace;
use crate::Violation;
use oml_core::ids::{BlockId, ObjectId};

use super::model::{trace_digest, Model, Step};
use super::{ExploreConfig, MoveOp, Mutation};

/// A replayable schedule: a model configuration plus an ordered step list.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The configuration the schedule runs against.
    pub cfg: ExploreConfig,
    /// The steps, in execution order.
    pub steps: Vec<Step>,
    /// FNV-1a digest of the trace this schedule produced when recorded.
    pub trace_digest: u64,
}

/// What replaying a schedule produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Checker violations found in the replayed trace.
    pub violations: Vec<Violation>,
    /// Orphaned locks left behind at quiesce.
    pub orphans: Vec<(ObjectId, BlockId)>,
    /// Digest of the replayed trace.
    pub trace_digest: u64,
    /// The replayed digest equals the recorded one (bit-identical replay).
    pub bit_identical: bool,
    /// Number of trace events the replay produced.
    pub events: usize,
}

impl ReplayOutcome {
    /// The replay reproduced a violation (checker or quiesce).
    #[must_use]
    pub fn reproduced(&self) -> bool {
        !self.violations.is_empty() || !self.orphans.is_empty()
    }
}

/// Why a schedule failed to parse or replay.
#[derive(Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// A line of the text form did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A step was not enabled when its turn came.
    StepNotEnabled {
        /// 0-based index into the step list.
        index: usize,
        /// The offending step.
        step: Step,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Parse { line, reason } => {
                write!(f, "schedule parse error at line {line}: {reason}")
            }
            ScheduleError::StepNotEnabled { index, step } => {
                write!(
                    f,
                    "schedule step {index} (`{step}`) is not enabled at its turn"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Renders the schedule as its line-oriented text form.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.cfg;
        let mut out = String::new();
        out.push_str("# oml-check counterexample schedule v1\n");
        let _ = writeln!(out, "name {}", c.name);
        let _ = writeln!(out, "nodes {}", c.nodes);
        let _ = writeln!(out, "objects {}", c.objects);
        match c.lease_ttl_ms {
            Some(ttl) => {
                let _ = writeln!(out, "lease-ttl {ttl}");
            }
            None => out.push_str("lease-ttl none\n"),
        }
        let _ = writeln!(out, "deadline {}", c.deadline_ms);
        let _ = writeln!(
            out,
            "timeouts {}",
            if c.client_timeouts { "on" } else { "off" }
        );
        let _ = writeln!(out, "sweeps {}", if c.sweeps { "on" } else { "off" });
        let _ = writeln!(
            out,
            "faults {} max-crashes {}",
            if c.faults { "on" } else { "off" },
            c.max_crashes
        );
        let _ = writeln!(
            out,
            "mutation {}",
            match c.mutation {
                None => "none",
                Some(Mutation::StrandedLocks) => "stranded-locks",
                Some(Mutation::IgnoreDeadline) => "ignore-deadline",
            }
        );
        for op in &c.ops {
            let _ = writeln!(out, "op {} -> {}", op.object, op.to);
        }
        let _ = writeln!(out, "trace-digest {:016x}", self.trace_digest);
        for step in &self.steps {
            let _ = writeln!(out, "step {step}");
        }
        out
    }

    /// Parses the text form produced by [`Schedule::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Parse`] on any malformed line.
    pub fn from_text(text: &str) -> Result<Schedule, ScheduleError> {
        let mut cfg = ExploreConfig {
            name: String::new(),
            nodes: 0,
            objects: 0,
            ops: Vec::new(),
            lease_ttl_ms: None,
            deadline_ms: 0,
            client_timeouts: false,
            sweeps: false,
            faults: false,
            max_crashes: 0,
            mutation: None,
        };
        let mut steps = Vec::new();
        let mut digest = 0u64;
        let err = |line: usize, reason: &str| ScheduleError::Parse {
            line,
            reason: reason.to_string(),
        };
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let parse_u32 = |s: &str| {
                s.parse::<u32>()
                    .map_err(|_| err(line_no, "expected number"))
            };
            let parse_u64 = |s: &str| {
                s.parse::<u64>()
                    .map_err(|_| err(line_no, "expected number"))
            };
            let parse_flag = |s: &str| match s {
                "on" => Ok(true),
                "off" => Ok(false),
                _ => Err(err(line_no, "expected on/off")),
            };
            match tokens.as_slice() {
                ["name", rest @ ..] => cfg.name = rest.join(" "),
                ["nodes", n] => cfg.nodes = parse_u32(n)?,
                ["objects", n] => cfg.objects = parse_u32(n)?,
                ["lease-ttl", "none"] => cfg.lease_ttl_ms = None,
                ["lease-ttl", n] => cfg.lease_ttl_ms = Some(parse_u64(n)?),
                ["deadline", n] => cfg.deadline_ms = parse_u64(n)?,
                ["timeouts", f] => cfg.client_timeouts = parse_flag(f)?,
                ["sweeps", f] => cfg.sweeps = parse_flag(f)?,
                ["faults", f, "max-crashes", n] => {
                    cfg.faults = parse_flag(f)?;
                    cfg.max_crashes = parse_u32(n)?;
                }
                ["mutation", "none"] => cfg.mutation = None,
                ["mutation", "stranded-locks"] => cfg.mutation = Some(Mutation::StrandedLocks),
                ["mutation", "ignore-deadline"] => cfg.mutation = Some(Mutation::IgnoreDeadline),
                ["op", a, "->", b] => cfg.ops.push(MoveOp {
                    object: parse_u32(a)?,
                    to: parse_u32(b)?,
                }),
                ["trace-digest", d] => {
                    digest = u64::from_str_radix(d, 16)
                        .map_err(|_| err(line_no, "expected hex digest"))?;
                }
                ["step", "deliver", m] => steps.push(Step::Deliver { msg: parse_u64(m)? }),
                ["step", "end", o] => steps.push(Step::End { op: parse_u32(o)? }),
                ["step", "timeout", o] => steps.push(Step::Timeout { op: parse_u32(o)? }),
                ["step", "sweep"] => steps.push(Step::Sweep),
                ["step", "crash", n] => steps.push(Step::Crash {
                    node: parse_u32(n)?,
                }),
                ["step", "restart", n] => steps.push(Step::Restart {
                    node: parse_u32(n)?,
                }),
                _ => return Err(err(line_no, "unrecognized line")),
            }
        }
        if cfg.nodes == 0 || cfg.objects == 0 {
            return Err(err(0, "missing nodes/objects header"));
        }
        Ok(Schedule {
            cfg,
            steps,
            trace_digest: digest,
        })
    }

    /// Re-executes the schedule against a fresh model and verifies the trace
    /// digest.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::StepNotEnabled`] if a recorded step is not a
    /// legal choice when its turn comes (a corrupted or hand-edited file).
    pub fn replay(&self) -> Result<ReplayOutcome, ScheduleError> {
        let mut m = Model::new(&self.cfg);
        for (index, &step) in self.steps.iter().enumerate() {
            if !m.enabled().contains(&step) {
                return Err(ScheduleError::StepNotEnabled { index, step });
            }
            m.apply(step);
        }
        m.drain_quiesce();
        let digest = trace_digest(m.trace());
        let report = check_trace(m.trace());
        Ok(ReplayOutcome {
            violations: report.violations,
            orphans: m.orphaned_locks(),
            trace_digest: digest,
            bit_identical: digest == self.trace_digest,
            events: m.trace().len(),
        })
    }
}

/// Whether replaying exactly `steps` (no enabledness slack) ends in
/// violation; `None` if some step is not enabled at its turn.
fn violates(cfg: &ExploreConfig, steps: &[Step]) -> Option<bool> {
    let mut m = Model::new(cfg);
    for &step in steps {
        if !m.enabled().contains(&step) {
            return None;
        }
        m.apply(step);
    }
    m.drain_quiesce();
    let bad = !check_trace(m.trace()).violations.is_empty() || !m.orphaned_locks().is_empty();
    Some(bad)
}

/// Shrinks a violating schedule: truncates to the shortest violating prefix,
/// then greedily deletes steps (repeating to a fixpoint) as long as the
/// remainder still executes and still violates. The result is 1-minimal
/// under single-step deletion — usually a handful of steps that read as the
/// actual race.
#[must_use]
pub fn minimize(cfg: &ExploreConfig, steps: &[Step]) -> Vec<Step> {
    let mut best: Vec<Step> = steps.to_vec();
    debug_assert_eq!(
        violates(cfg, &best),
        Some(true),
        "minimizing a clean schedule"
    );
    // shortest violating prefix
    for len in 0..best.len() {
        if violates(cfg, &best[..len]) == Some(true) {
            best.truncate(len);
            break;
        }
    }
    // greedy single-step deletion to a fixpoint
    loop {
        let mut shrunk = false;
        let mut i = best.len();
        while i > 0 {
            i -= 1;
            let mut candidate = best.clone();
            candidate.remove(i);
            if violates(cfg, &candidate) == Some(true) {
                best = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            return best;
        }
    }
}
