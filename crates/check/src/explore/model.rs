//! The deterministic protocol model the explorer schedules.
//!
//! This is a small-scope state machine of the runtime's migration protocol:
//! nodes that can crash and restart, objects with a single mutable residence,
//! placement locks with optional leases, and the client's move blocks. Every
//! pending message delivery, timer firing (client deadline, lease sweep) and
//! crash point is a [`Step`] — a schedulable choice. Executing a step mutates
//! the model and appends [`TraceEvent`]s shaped exactly like the ones the
//! real runtime emits, so every explored schedule can stream through
//! [`crate::checker::check_trace`] unchanged.
//!
//! Time is the explicitly advanced millisecond clock of
//! [`oml_des::virt::VirtualClock`]: only timer steps move it, so "the lease
//! expired underneath the grant" is an interleaving the explorer *chooses*,
//! not one a wall clock has to produce.
//!
//! ## Fidelity notes
//!
//! The model collapses details that do not affect the checked invariants:
//! directory forwarding is folded into routing-at-delivery (a move request
//! "arrives" wherever the object currently lives), grant replies are
//! synchronous (a client deadline can only fire while its request is still
//! undelivered), and the failure detector / reinstantiation pipeline is out
//! of scope — crashes stash objects in place and restarts reclaim them, as
//! `crash_node`/`restart_node` do.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use oml_core::ids::{BlockId, NodeId, ObjectId};
use oml_des::virt::VirtualClock;

use crate::event::{EventKind, ReleaseCause, TraceEvent, CLIENT_PROCESS};

use super::{ExploreConfig, Mutation};

/// One schedulable choice of the virtual scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Step {
    /// Deliver the pending message with this id at its (current) target.
    Deliver {
        /// The message id ([`EventKind::Send`]'s `msg_id`).
        msg: u64,
    },
    /// The client finishes a granted move block and sends the end-request.
    End {
        /// Index into [`ExploreConfig::ops`].
        op: u32,
    },
    /// The client's deadline for an outstanding move request fires: the
    /// clock advances to the deadline and the block is abandoned.
    Timeout {
        /// Index into [`ExploreConfig::ops`].
        op: u32,
    },
    /// The lease sweeper fires: the clock advances to the earliest live
    /// lease expiry and that lock is released.
    Sweep,
    /// A node crashes (objects stash in place, volatile lock state is lost).
    Crash {
        /// The crashing node.
        node: u32,
    },
    /// A crashed node restarts and reclaims its stash.
    Restart {
        /// The restarting node.
        node: u32,
    },
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Deliver { msg } => write!(f, "deliver {msg}"),
            Step::End { op } => write!(f, "end {op}"),
            Step::Timeout { op } => write!(f, "timeout {op}"),
            Step::Sweep => write!(f, "sweep"),
            Step::Crash { node } => write!(f, "crash {node}"),
            Step::Restart { node } => write!(f, "restart {node}"),
        }
    }
}

/// What a pending message carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Payload {
    /// A move request for op `op` (routed to the object's current host).
    MoveReq { op: u32 },
    /// The linearized object, in flight towards `to`.
    Install { object: u32, to: u32 },
    /// The client's end-of-block request for op `op`.
    End { op: u32 },
}

/// Where an object currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ObjLoc {
    /// Resident at this node (possibly stashed there while it is crashed).
    At(u32),
    /// Linearized and in flight towards this node.
    InFlight { to: u32 },
}

/// A placement-lock table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Lock {
    block: u32,
    acquired_ms: u64,
    ttl_ms: Option<u64>,
}

/// The client-side life cycle of one scripted move op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpPhase {
    /// Issued; the request message is (or was) in flight.
    Requested { msg: u64 },
    /// Granted and not yet ended.
    Granted,
    /// The client sent the end-request.
    EndSent,
    /// The end-request was processed.
    Done,
    /// The policy denied the move.
    Denied,
    /// The client's deadline fired before any reply; the block is dead and
    /// will never send an end-request.
    Abandoned,
}

/// The footprint of a step in the state it is enabled in — the basis of the
/// conditional independence relation (see [`Model::independent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Bitmask of processes whose local state / trace program order the step
    /// touches (bit 31 = the client).
    pub procs: u32,
    /// Bitmask of objects whose residency or lock the step touches.
    pub objects: u32,
    /// Bitmask of ops whose client phase the step touches.
    pub ops: u32,
    /// The step advances the virtual clock (timers). Clock writers are
    /// dependent with everything: every grant reads the clock.
    pub clock_write: bool,
    /// The step touches node liveness and arbitrarily many locks
    /// (crash/restart) — dependent with everything.
    pub global: bool,
}

const CLIENT_BIT: u32 = 1 << 31;

impl Footprint {
    fn disjoint(&self, other: &Footprint) -> bool {
        !(self.global || other.global || self.clock_write || other.clock_write)
            && self.procs & other.procs == 0
            && self.objects & other.objects == 0
            && self.ops & other.ops == 0
    }
}

/// The explorable protocol state. Cloning is cheap by design (small vectors
/// and `BTreeMap`s); the DPOR search clones once per executed step.
#[derive(Clone)]
pub struct Model {
    cfg: Rc<ExploreConfig>,
    clock: VirtualClock,
    /// `true` = alive. Index = node id.
    alive: Vec<bool>,
    objects: Vec<ObjLoc>,
    locks: BTreeMap<u32, Lock>,
    ops: Vec<OpPhase>,
    pending: BTreeMap<u64, Payload>,
    crashes_left: u32,
    trace: Vec<TraceEvent>,
}

impl Model {
    /// Builds the initial state: every object installed at its home node
    /// (`object % nodes`) and every scripted op issued by the client in
    /// program order, its move request pending.
    ///
    /// # Panics
    ///
    /// Panics if the config scripts more than `u32::MAX` ops — far beyond
    /// anything the explorer can enumerate.
    #[must_use]
    pub fn new(cfg: &ExploreConfig) -> Self {
        let mut m = Model {
            cfg: Rc::new(cfg.clone()),
            clock: VirtualClock::new(),
            alive: vec![true; cfg.nodes as usize],
            objects: (0..cfg.objects)
                .map(|o| ObjLoc::At(o % cfg.nodes))
                .collect(),
            locks: BTreeMap::new(),
            ops: Vec::new(),
            pending: BTreeMap::new(),
            crashes_left: cfg.max_crashes,
            trace: Vec::new(),
        };
        for o in 0..cfg.objects {
            m.emit(
                o % cfg.nodes,
                EventKind::Install {
                    object: ObjectId::new(o),
                },
            );
        }
        for (i, op) in cfg.ops.iter().enumerate() {
            let i = u32::try_from(i).expect("op count fits u32");
            m.emit(
                CLIENT_PROCESS,
                EventKind::MoveRequested {
                    object: ObjectId::new(op.object),
                    to: NodeId::new(op.to),
                    block: BlockId::new(i),
                },
            );
            let home = match m.objects[op.object as usize] {
                ObjLoc::At(n) => n,
                ObjLoc::InFlight { to } => to,
            };
            let msg = Self::msg_id(i, 1);
            m.send(CLIENT_PROCESS, home, msg, Payload::MoveReq { op: i });
            m.ops.push(OpPhase::Requested { msg });
        }
        m
    }

    /// The events emitted so far, in schedule order.
    #[must_use]
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The current virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    fn emit(&mut self, process: u32, kind: EventKind) {
        self.trace.push(TraceEvent::new(process, kind));
    }

    /// Message ids are derived from the op, not from an allocation counter:
    /// op `i` sends at most one request (`3i+1`), one install (`3i+2`) and
    /// one end (`3i+3`). Order-insensitive naming keeps independent steps
    /// commuting bit-exactly (the DPOR commutation the `independent_steps_*`
    /// tests pin down) and keeps `deliver` steps meaningful when the
    /// minimizer drops earlier steps.
    fn msg_id(op: u32, slot: u64) -> u64 {
        u64::from(op) * 3 + slot
    }

    /// Emits the `Send` and enqueues the payload under a derived id.
    fn send(&mut self, from: u32, to: u32, id: u64, payload: Payload) {
        self.emit(
            from,
            EventKind::Send {
                msg_id: id,
                to,
                desc: format!("{payload:?}"),
            },
        );
        self.pending.insert(id, payload);
    }

    fn host_of(&self, object: u32) -> Option<u32> {
        match self.objects[object as usize] {
            ObjLoc::At(n) => Some(n),
            ObjLoc::InFlight { .. } => None,
        }
    }

    fn mutated(&self, m: Mutation) -> bool {
        self.cfg.mutation == Some(m)
    }

    fn deliverable(&self, payload: Payload) -> bool {
        match payload {
            Payload::MoveReq { op } | Payload::End { op } => {
                let object = self.cfg.ops[op as usize].object;
                self.host_of(object).is_some_and(|h| self.alive[h as usize])
            }
            Payload::Install { to, .. } => self.alive[to as usize],
        }
    }

    /// The live lease (object, expiry) with the earliest expiry, considering
    /// only locks on objects resident at an alive node (the runtime sweeps
    /// at the hosting worker).
    fn earliest_lease(&self) -> Option<(u32, u64)> {
        self.locks
            .iter()
            .filter_map(|(&o, l)| {
                let ttl = l.ttl_ms?;
                let host = self.host_of(o)?;
                self.alive[host as usize].then_some((o, l.acquired_ms + ttl))
            })
            .min_by_key(|&(o, exp)| (exp, o))
    }

    /// All steps enabled in this state, in deterministic order.
    ///
    /// # Panics
    ///
    /// Panics if the config scripts more than `u32::MAX` ops — far beyond
    /// anything the explorer can enumerate.
    #[must_use]
    pub fn enabled(&self) -> Vec<Step> {
        let mut steps = Vec::new();
        for (&id, &p) in &self.pending {
            if self.deliverable(p) {
                steps.push(Step::Deliver { msg: id });
            }
        }
        for (i, phase) in self.ops.iter().enumerate() {
            let i = u32::try_from(i).expect("op count fits u32");
            match *phase {
                OpPhase::Granted => steps.push(Step::End { op: i }),
                OpPhase::Requested { msg }
                    if self.cfg.client_timeouts && self.pending.contains_key(&msg) =>
                {
                    steps.push(Step::Timeout { op: i });
                }
                _ => {}
            }
        }
        if self.cfg.sweeps && self.earliest_lease().is_some() {
            steps.push(Step::Sweep);
        }
        if self.cfg.faults {
            for n in 0..self.cfg.nodes {
                if self.alive[n as usize] {
                    if self.crashes_left > 0 {
                        steps.push(Step::Crash { node: n });
                    }
                } else {
                    steps.push(Step::Restart { node: n });
                }
            }
        }
        steps.sort_unstable();
        steps
    }

    /// The step's footprint in the current state (it must be enabled).
    #[must_use]
    pub fn footprint(&self, step: Step) -> Footprint {
        let mut fp = Footprint {
            procs: 0,
            objects: 0,
            ops: 0,
            clock_write: false,
            global: false,
        };
        match step {
            Step::Deliver { msg } => match self.pending.get(&msg) {
                Some(&(Payload::MoveReq { op } | Payload::End { op })) => {
                    let object = self.cfg.ops[op as usize].object;
                    if let Some(h) = self.host_of(object) {
                        fp.procs |= 1 << h;
                    }
                    fp.objects |= 1 << object;
                    fp.ops |= 1 << op;
                }
                Some(&Payload::Install { object, to }) => {
                    fp.procs |= 1 << to;
                    fp.objects |= 1 << object;
                }
                None => fp.global = true, // not enabled; be conservative
            },
            Step::End { op } => {
                fp.procs |= CLIENT_BIT;
                fp.ops |= 1 << op;
            }
            Step::Timeout { op } => {
                fp.procs |= CLIENT_BIT;
                fp.ops |= 1 << op;
                fp.clock_write = true;
            }
            Step::Sweep => fp.clock_write = true,
            Step::Crash { .. } | Step::Restart { .. } => fp.global = true,
        }
        fp
    }

    /// Conditional independence of two steps enabled in this state: disjoint
    /// footprints, neither advancing the clock or touching node liveness.
    /// Independent steps commute (same successor state) and their emitted
    /// events are pairwise concurrent under the vector-clock order of
    /// [`crate::vclock::assign_clocks`] — validated by the
    /// `independent_steps_emit_concurrent_events` test.
    #[must_use]
    pub fn independent(&self, a: Step, b: Step) -> bool {
        self.footprint(a).disjoint(&self.footprint(b))
    }

    /// Executes one enabled step.
    ///
    /// # Panics
    ///
    /// Panics if the step is not enabled in this state — the DPOR search
    /// only applies enabled steps, and replay validates enabledness first.
    pub fn apply(&mut self, step: Step) {
        match step {
            Step::Deliver { msg } => {
                let payload = self
                    .pending
                    .remove(&msg)
                    .expect("delivering an unknown message");
                self.deliver(msg, payload);
            }
            Step::End { op } => {
                assert_eq!(
                    self.ops[op as usize],
                    OpPhase::Granted,
                    "end of ungranted op"
                );
                let object = self.cfg.ops[op as usize].object;
                let to = self.host_of(object).unwrap_or(self.cfg.ops[op as usize].to);
                self.send(CLIENT_PROCESS, to, Self::msg_id(op, 3), Payload::End { op });
                self.ops[op as usize] = OpPhase::EndSent;
            }
            Step::Timeout { op } => {
                let deadline = self.cfg.deadline_ms;
                self.clock.advance_to(self.clock.now_ms().max(deadline));
                self.ops[op as usize] = OpPhase::Abandoned;
            }
            Step::Sweep => {
                let (object, expiry) = self.earliest_lease().expect("sweep without live lease");
                self.clock.advance_to(self.clock.now_ms().max(expiry));
                self.release(object, ReleaseCause::LeaseExpiry);
            }
            Step::Crash { node } => {
                assert!(self.alive[node as usize] && self.crashes_left > 0);
                self.crashes_left -= 1;
                self.alive[node as usize] = false;
                self.emit(
                    CLIENT_PROCESS,
                    EventKind::Crash {
                        node: NodeId::new(node),
                    },
                );
                // The crashed worker's volatile lock state is gone either
                // way; correct code accounts for it by releasing the dead
                // host's placement locks (the PR 3 `crash_node` fix). The
                // StrandedLocks mutation re-introduces that bug: state lost,
                // no release recorded.
                let stranded: Vec<u32> = self
                    .locks
                    .keys()
                    .copied()
                    .filter(|&o| self.host_of(o) == Some(node))
                    .collect();
                for object in stranded {
                    if self.mutated(Mutation::StrandedLocks) {
                        self.locks.remove(&object);
                    } else {
                        self.release(object, ReleaseCause::Crash);
                    }
                }
            }
            Step::Restart { node } => {
                assert!(!self.alive[node as usize], "restarting a live node");
                self.alive[node as usize] = true;
                self.emit(
                    CLIENT_PROCESS,
                    EventKind::Restart {
                        node: NodeId::new(node),
                    },
                );
                // Stash reclamation: same-host reinstall, a refresh to the
                // checker.
                for o in 0..self.cfg.objects {
                    if self.objects[o as usize] == ObjLoc::At(node) {
                        self.emit(
                            node,
                            EventKind::Install {
                                object: ObjectId::new(o),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Removes the lock on `object` and emits the release from the current
    /// host (or the client for crash cleanup, as `declare_dead` does).
    fn release(&mut self, object: u32, cause: ReleaseCause) {
        let Some(lock) = self.locks.remove(&object) else {
            return;
        };
        let process = if cause == ReleaseCause::Crash {
            CLIENT_PROCESS
        } else {
            self.host_of(object).unwrap_or(CLIENT_PROCESS)
        };
        self.emit(
            process,
            EventKind::LockReleased {
                object: ObjectId::new(object),
                block: BlockId::new(lock.block),
                cause,
            },
        );
    }

    fn deliver(&mut self, msg: u64, payload: Payload) {
        match payload {
            Payload::MoveReq { op } => self.deliver_move_req(msg, op),
            Payload::Install { object, to } => {
                assert_eq!(
                    self.objects[object as usize],
                    ObjLoc::InFlight { to },
                    "install for an object that is not in flight here"
                );
                self.emit(to, EventKind::Recv { msg_id: msg });
                self.emit(
                    to,
                    EventKind::Install {
                        object: ObjectId::new(object),
                    },
                );
                self.objects[object as usize] = ObjLoc::At(to);
            }
            Payload::End { op } => {
                let object = self.cfg.ops[op as usize].object;
                let host = self.host_of(object).expect("end delivered in flight");
                self.emit(host, EventKind::Recv { msg_id: msg });
                let block = op;
                if self.locks.get(&object).is_some_and(|l| l.block == block) {
                    self.release(object, ReleaseCause::End);
                }
                self.ops[op as usize] = OpPhase::Done;
            }
        }
    }

    fn deliver_move_req(&mut self, msg: u64, op: u32) {
        let spec = self.cfg.ops[op as usize];
        let object = spec.object;
        let host = self.host_of(object).expect("move-req delivered in flight");
        let block = op;
        let now = self.clock.now_ms();
        self.emit(host, EventKind::Recv { msg_id: msg });
        let deny = |m: &mut Model| {
            m.emit(
                host,
                EventKind::MoveDenied {
                    object: ObjectId::new(object),
                    block: BlockId::new(block),
                },
            );
            if matches!(m.ops[op as usize], OpPhase::Requested { .. }) {
                m.ops[op as usize] = OpPhase::Denied;
            }
        };
        // The requester's deadline travels with the request; a request
        // answered past it has no live client behind it any more, so the
        // only safe answer is a denial. The IgnoreDeadline mutation
        // re-introduces the PR 3 bug of granting anyway.
        if now >= self.cfg.deadline_ms && !self.mutated(Mutation::IgnoreDeadline) {
            deny(self);
            return;
        }
        if let Some(lock) = self.locks.get(&object).copied() {
            let expired = lock.ttl_ms.is_some_and(|ttl| lock.acquired_ms + ttl <= now);
            if expired {
                self.release(object, ReleaseCause::LeaseExpiry);
            } else {
                deny(self);
                return;
            }
        }
        self.emit(
            host,
            EventKind::MoveGranted {
                object: ObjectId::new(object),
                block: BlockId::new(block),
            },
        );
        self.emit(
            host,
            EventKind::LockAcquired {
                object: ObjectId::new(object),
                block: BlockId::new(block),
                now_ms: now,
                ttl_ms: self.cfg.lease_ttl_ms,
            },
        );
        self.locks.insert(
            object,
            Lock {
                block,
                acquired_ms: now,
                ttl_ms: self.cfg.lease_ttl_ms,
            },
        );
        if spec.to != host {
            self.emit(
                host,
                EventKind::Ship {
                    object: ObjectId::new(object),
                    to: NodeId::new(spec.to),
                },
            );
            self.objects[object as usize] = ObjLoc::InFlight { to: spec.to };
            self.send(
                host,
                spec.to,
                Self::msg_id(op, 2),
                Payload::Install {
                    object,
                    to: spec.to,
                },
            );
        }
        if matches!(self.ops[op as usize], OpPhase::Requested { .. }) {
            self.ops[op as usize] = OpPhase::Granted;
        }
        // an Abandoned op stays abandoned: the grant reached nobody
    }

    /// Runs the terminal lease drain: fires the sweeper until no live lease
    /// remains, releasing each with `LeaseExpiry`. Mirrors what wall time
    /// would eventually do in the runtime; emitted events join the trace.
    pub fn drain_quiesce(&mut self) {
        while let Some((object, expiry)) = self.earliest_lease() {
            self.clock.advance_to(self.clock.now_ms().max(expiry));
            self.release(object, ReleaseCause::LeaseExpiry);
        }
    }

    /// Locks that will never be released by any continuation: non-expiring
    /// locks whose holding op the client abandoned. A correct protocol never
    /// produces these — the deadline denial exists precisely to keep a grant
    /// from landing on a dead block.
    #[must_use]
    pub fn orphaned_locks(&self) -> Vec<(ObjectId, BlockId)> {
        self.locks
            .iter()
            .filter(|&(_, l)| {
                l.ttl_ms.is_none() && self.ops.get(l.block as usize) == Some(&OpPhase::Abandoned)
            })
            .map(|(&o, l)| (ObjectId::new(o), BlockId::new(l.block)))
            .collect()
    }

    /// A deterministic 64-bit digest of the protocol state (trace excluded):
    /// used for state-hash pruning. Two states with equal digests and equal
    /// sleep sets generate identical subtrees, because every future event —
    /// and every future checker verdict over those events — is a function of
    /// this state alone (see DESIGN.md §14 for the argument and its caveats).
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.clock.now_ms().hash(&mut h);
        self.alive.hash(&mut h);
        self.objects.hash(&mut h);
        self.locks.hash(&mut h);
        self.ops.hash(&mut h);
        self.pending.hash(&mut h);
        self.crashes_left.hash(&mut h);
        h.finish()
    }
}

/// FNV-1a, the same function the scaling fingerprints use — deterministic
/// across runs and platforms, unlike `DefaultHasher`'s unspecified algorithm.
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The FNV-1a digest of a full trace (the `Debug` rendering of every event):
/// the bit-identity fingerprint replay is checked against.
#[must_use]
pub fn trace_digest(trace: &[TraceEvent]) -> u64 {
    let mut h = Fnv64::new();
    for ev in trace {
        h.write(format!("{ev:?}").as_bytes());
        h.write(&[0xff]);
    }
    h.finish()
}
