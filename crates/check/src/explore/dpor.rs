//! Sleep-set dynamic partial-order reduction over the protocol model.
//!
//! The search is a depth-first enumeration of schedules with three pruning
//! devices:
//!
//! * **Sleep sets** (Godefroid): after exploring step `t` from a state, `t`
//!   joins the sleep set of the remaining siblings; a child's sleep set
//!   keeps only the entries independent of the step taken. A slept step is
//!   never taken first again from an equivalent position, cutting the
//!   commuting half of every independent diamond. Sleep sets never hide a
//!   reachable safety violation: they only skip schedules that are
//!   Mazurkiewicz-equivalent to one already explored.
//! * **State-hash pruning**: a state digest plus the sleep set keys a
//!   visited table; a repeat (digest, sleep) pair generates an identical
//!   subtree and is cut. The trace prefix that led there may differ, so the
//!   prefix is checked at the prune point (a violation lives in some prefix
//!   or some suffix; suffixes were covered at the first visit).
//! * **Budgets**: schedule, step and depth ceilings. A budget cut clears
//!   [`ExploreReport::exhaustive`] — the result is then a bounded
//!   verification, not a proof.
//!
//! Independence is the conditional, footprint-based relation of
//! [`Model::independent`], validated against the vector-clock
//! happens-before of [`crate::vclock`] in tests.

use std::collections::BTreeSet;
use std::collections::HashSet;

use crate::checker::check_trace;

use super::model::{trace_digest, Model, Step};
use super::schedule::Schedule;
use super::{Counterexample, ExploreConfig};

/// Exploration budgets. Defaults are sized so the bundled configurations
/// enumerate exhaustively in well under a second.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum complete (or cut) schedules to enumerate.
    pub max_schedules: u64,
    /// Maximum total steps executed across the whole search.
    pub max_steps: u64,
    /// Maximum schedule depth; deeper branches are cut (and their prefix
    /// checked).
    pub max_depth: usize,
    /// Stop after this many counterexamples (0 = collect every one).
    pub max_counterexamples: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_schedules: 200_000,
            max_steps: 5_000_000,
            max_depth: 128,
            max_counterexamples: 1,
        }
    }
}

impl Budget {
    /// A tight budget for CI smoke runs.
    #[must_use]
    pub fn smoke() -> Self {
        Budget {
            max_schedules: 40_000,
            max_steps: 1_000_000,
            ..Budget::default()
        }
    }
}

/// The outcome of one exploration.
#[derive(Debug)]
pub struct ExploreReport {
    /// Complete schedules enumerated (terminal states reached).
    pub schedules: u64,
    /// Total steps executed.
    pub steps: u64,
    /// Subtrees cut by the (state digest, sleep set) visited table.
    pub pruned: u64,
    /// Sibling steps skipped because they were asleep.
    pub sleep_skips: u64,
    /// Deepest schedule reached.
    pub peak_depth: usize,
    /// The search enumerated every schedule up to partial-order equivalence
    /// without hitting a budget (and without stopping early on a
    /// counterexample quota).
    pub exhaustive: bool,
    /// Minimized counterexamples, at most `max_counterexamples`.
    pub counterexamples: Vec<Counterexample>,
}

impl ExploreReport {
    /// No violation was found (within the explored bound).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

struct Search<'a> {
    cfg: &'a ExploreConfig,
    budget: Budget,
    visited: HashSet<u64>,
    report: ExploreReport,
    path: Vec<Step>,
    done: bool,
}

/// Explores `cfg` under `budget` and reports what was found. Every complete
/// schedule (and every cut prefix) streams through
/// [`crate::checker::check_trace`] plus the model's quiesce checks; the
/// first violations are minimized into replayable [`Schedule`]s.
#[must_use]
pub fn explore(cfg: &ExploreConfig, budget: &Budget) -> ExploreReport {
    let mut search = Search {
        cfg,
        budget: *budget,
        visited: HashSet::new(),
        report: ExploreReport {
            schedules: 0,
            steps: 0,
            pruned: 0,
            sleep_skips: 0,
            peak_depth: 0,
            exhaustive: true,
            counterexamples: Vec::new(),
        },
        path: Vec::new(),
        done: false,
    };
    let root = Model::new(cfg);
    search.dfs(&root, &BTreeSet::new());
    search.report
}

impl Search<'_> {
    fn over_budget(&self) -> bool {
        self.report.schedules >= self.budget.max_schedules
            || self.report.steps >= self.budget.max_steps
    }

    /// Records a (minimized) counterexample for the current path if the
    /// supplied model's trace or end state is in violation. Sound at
    /// non-terminal prefixes too: checker violations only accumulate, and
    /// an orphaned lock (non-expiring, holder abandoned) is permanent — no
    /// continuation can release it.
    fn harvest(&mut self, m: &Model) {
        let mut quiesced = m.clone();
        quiesced.drain_quiesce();
        let report = check_trace(quiesced.trace());
        let orphans = quiesced.orphaned_locks();
        if report.violations.is_empty() && orphans.is_empty() {
            return;
        }
        let minimized = super::schedule::minimize(self.cfg, &self.path);
        let mut replayed = Model::new(self.cfg);
        for &s in &minimized {
            replayed.apply(s);
        }
        replayed.drain_quiesce();
        let schedule = Schedule {
            cfg: self.cfg.clone(),
            steps: minimized,
            trace_digest: trace_digest(replayed.trace()),
        };
        let final_report = check_trace(replayed.trace());
        self.report.counterexamples.push(Counterexample {
            schedule,
            violations: final_report.violations,
            orphans: replayed.orphaned_locks(),
        });
        if self.budget.max_counterexamples > 0
            && self.report.counterexamples.len() >= self.budget.max_counterexamples
        {
            self.done = true;
            // stopping early: the enumeration is deliberately incomplete
            self.report.exhaustive = false;
        }
    }

    fn dfs(&mut self, m: &Model, sleep: &BTreeSet<Step>) {
        if self.done {
            return;
        }
        if self.over_budget() {
            self.report.exhaustive = false;
            return;
        }
        self.report.peak_depth = self.report.peak_depth.max(self.path.len());
        let enabled = m.enabled();
        if enabled.is_empty() {
            self.report.schedules += 1;
            self.harvest(m);
            return;
        }
        if self.path.len() >= self.budget.max_depth {
            self.report.schedules += 1;
            self.report.exhaustive = false;
            self.harvest(m);
            return;
        }
        let mut slept: Vec<Step> = Vec::new();
        for &t in &enabled {
            if self.done || self.over_budget() {
                if self.over_budget() {
                    self.report.exhaustive = false;
                }
                return;
            }
            if sleep.contains(&t) {
                self.report.sleep_skips += 1;
                slept.push(t);
                continue;
            }
            let mut child = m.clone();
            child.apply(t);
            self.report.steps += 1;
            let child_sleep: BTreeSet<Step> = sleep
                .iter()
                .chain(slept.iter())
                .copied()
                .filter(|&s| m.independent(s, t))
                .collect();
            let key = visit_key(&child, &child_sleep);
            if self.visited.insert(key) {
                self.path.push(t);
                self.dfs(&child, &child_sleep);
                self.path.pop();
            } else {
                self.report.pruned += 1;
                // the subtree was covered at its first visit; only this
                // prefix is new — check it before discarding
                self.path.push(t);
                self.harvest(&child);
                self.path.pop();
            }
            slept.push(t);
        }
    }
}

/// Keys the visited table on the state digest *and* the sleep set: two
/// visits only share a subtree if they restrict future first-steps the same
/// way. Keying on the digest alone would prune visits whose larger sleep
/// set had already excluded schedules the earlier visit still needed.
fn visit_key(m: &Model, sleep: &BTreeSet<Step>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = super::model::Fnv64::new();
    m.state_digest().hash(&mut h);
    for s in sleep {
        s.hash(&mut h);
    }
    h.finish()
}
