//! The structured trace-event schema the runtime emits and the checker
//! consumes.
//!
//! Every event belongs to a **process** — a node worker, or the client
//! facade ([`CLIENT_PROCESS`]) — and the collector appends events in real
//! time, so the slice of a trace belonging to one process is that process's
//! program order. Cross-process edges come from [`EventKind::Send`] /
//! [`EventKind::Recv`] pairs sharing a message id; the checker derives the
//! happens-before partial order from exactly these two ingredients (see
//! [`crate::vclock`]).
//!
//! The schema is deliberately close to the paper's vocabulary: move
//! requests/grants/denials (§3.2), placement-lock acquire/release with lease
//! timestamps (§3.2 + the lease recovery extension), attachment closure
//! transfers (§3.3/§3.4), and residency transitions (ship/install) that the
//! directory's immediate-update location management produces.

use oml_core::ids::{BlockId, NodeId, ObjectId};

/// The process id used for events emitted by the client facade (which is
/// not a cluster node but still participates in the protocol).
pub const CLIENT_PROCESS: u32 = u32::MAX;

/// Why a placement lock stopped being held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseCause {
    /// The holder's `end`-request arrived — the fast path.
    End,
    /// The lease ran out — the recovery path for lost end-requests.
    LeaseExpiry,
    /// The hosting node crashed and its volatile lock state was discarded.
    Crash,
}

impl std::fmt::Display for ReleaseCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReleaseCause::End => f.write_str("end"),
            ReleaseCause::LeaseExpiry => f.write_str("lease-expiry"),
            ReleaseCause::Crash => f.write_str("crash"),
        }
    }
}

/// One protocol event. The comments name the runtime site that emits each.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A message left `from` towards node `to` (`Shared::send_from`). The
    /// `msg_id` is unique per physical copy — a duplicated message produces
    /// two sends with two ids.
    Send {
        /// Unique id of this physical message copy.
        msg_id: u64,
        /// Destination node (raw id).
        to: u32,
        /// Short description (the message's `Debug` rendering).
        desc: String,
    },
    /// A node worker dequeued the message (`NodeWorker::run`).
    Recv {
        /// The id the matching [`EventKind::Send`] carried.
        msg_id: u64,
    },
    /// The object became resident at the emitting node (create handler,
    /// install handler, or crash-stash reclamation on restart).
    Install {
        /// The object now hosted here.
        object: ObjectId,
    },
    /// The object stopped being resident at the emitting node: it was
    /// linearized and sent towards `to` (`NodeWorker::ship`).
    Ship {
        /// The departing object.
        object: ObjectId,
        /// Destination node.
        to: NodeId,
    },
    /// The client issued a move-request (`Cluster::move_block_in`).
    MoveRequested {
        /// The object the move names.
        object: ObjectId,
        /// The requester's node (the move's target).
        to: NodeId,
        /// The issuing move-block.
        block: BlockId,
    },
    /// The policy granted a move (`NodeWorker::handle_move`).
    MoveGranted {
        /// The granted object.
        object: ObjectId,
        /// The granted block.
        block: BlockId,
    },
    /// The policy denied a move (`NodeWorker::handle_move`).
    MoveDenied {
        /// The denied object.
        object: ObjectId,
        /// The denied block.
        block: BlockId,
    },
    /// A placement lock was taken (`MovePolicy::on_installed` call sites).
    LockAcquired {
        /// The locked object.
        object: ObjectId,
        /// The holding block.
        block: BlockId,
        /// The cluster's lease clock at acquisition.
        now_ms: u64,
        /// The lease TTL, or `None` for never-expiring locks.
        ttl_ms: Option<u64>,
    },
    /// A placement lock was released.
    LockReleased {
        /// The unlocked object.
        object: ObjectId,
        /// The block that held it.
        block: BlockId,
        /// Fast path, lease recovery, or crash cleanup.
        cause: ReleaseCause,
    },
    /// Activity inside a granted block renewed its lease
    /// (`NodeWorker::handle_invoke`).
    LeaseRenewed {
        /// The active object.
        object: ObjectId,
        /// The cluster's lease clock at renewal.
        now_ms: u64,
    },
    /// An A-transitive closure migration began: `members` is the set of
    /// co-hosted, movable, unpinned objects the runtime committed to ship
    /// together with `main` (`NodeWorker::migrate_closure`).
    ClosureBegin {
        /// The object whose move dragged the closure.
        main: ObjectId,
        /// The common destination.
        to: NodeId,
        /// Locally hosted members that must ship with `main`.
        members: Vec<ObjectId>,
    },
    /// A remotely hosted closure member was asked to surrender (best-effort:
    /// the remote host skips it if the member has already moved on).
    SurrenderRequested {
        /// The remote member.
        member: ObjectId,
        /// The closure's destination.
        to: NodeId,
    },
    /// `attach(a, b)` succeeded (client facade).
    Attach {
        /// Attached object.
        a: ObjectId,
        /// Attachment target.
        b: ObjectId,
    },
    /// `detach(a, b)` removed an edge (client facade).
    Detach {
        /// Detached object.
        a: ObjectId,
        /// Former attachment target.
        b: ObjectId,
    },
    /// A node crashed (scripted fault).
    Crash {
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node restarted.
    Restart {
        /// The restarted node.
        node: NodeId,
    },
    /// The failure detector began suspecting a node — missed heartbeats or
    /// a partition (`Shared::detector_sweep`). Suspicion is revocable.
    Suspected {
        /// The suspected node.
        node: NodeId,
    },
    /// The failure detector declared a node dead: its incarnation is fenced
    /// and its objects are about to be reinstantiated
    /// (`Shared::declare_dead`).
    DeclaredDead {
        /// The dead node.
        node: NodeId,
    },
    /// An object stranded on a dead node was recreated from its home
    /// checkpoint under a new object epoch (`Shared::declare_dead`). Every
    /// `Install` for this object from an older epoch is stale from here on.
    Reinstantiated {
        /// The recovered object.
        object: ObjectId,
        /// Where the fresh copy was installed.
        at: NodeId,
        /// The object's new (strictly increasing) epoch.
        epoch: u64,
    },
    /// Epoch fencing rejected a stale message or install — a zombie
    /// incarnation (or its delayed traffic) was stopped from acting
    /// (`NodeWorker::reject_stale` / `NodeWorker::handle_install`).
    FencedStale {
        /// The stale epoch the message carried.
        epoch: u64,
    },
    /// A node's circuit breaker opened: subsequent calls to it fail fast
    /// with `NodeDown` until a probe succeeds.
    BreakerOpen {
        /// The node whose breaker opened.
        node: NodeId,
    },
    /// One-shot configuration marker emitted at build time when checkpoint
    /// replication is active: arms the checker's replication invariants
    /// (traces without it are checked exactly as before).
    ReplicationFactor {
        /// The configured replication factor `k = f + 1`.
        k: u32,
        /// The cluster size (the effective factor is `min(k, available)`).
        nodes: u32,
    },
    /// A replica store accepted a checkpoint copy fresher than what it held
    /// (`Shared::store_replica`).
    CheckpointStored {
        /// The checkpointed object.
        object: ObjectId,
        /// The node whose store accepted the copy.
        replica: NodeId,
        /// The copy's object epoch.
        object_epoch: u64,
        /// The copy's refresh sequence.
        seq: u64,
    },
    /// A replica's ack was counted toward a pending refresh's write quorum
    /// (`Shared::checkpoint_ack`; duplicates are deduplicated before this
    /// event, so each `(object, epoch, seq, replica)` appears at most once).
    CheckpointAcked {
        /// The refreshed object.
        object: ObjectId,
        /// The acked write's object epoch.
        object_epoch: u64,
        /// The acked write's refresh sequence.
        seq: u64,
        /// The acking replica.
        replica: NodeId,
        /// Acks this write needs to be quorum-durable.
        quorum: u32,
    },
    /// Reinstantiation chose its source replica: the copy of `object` held
    /// at `replica`, stamped `(object_epoch, seq)` (`Shared::declare_dead`).
    /// The checker flags a promotion older than a quorum-acked write that
    /// still survives elsewhere.
    PromotedFrom {
        /// The object being reinstantiated.
        object: ObjectId,
        /// The surviving replica chosen as the source.
        replica: NodeId,
        /// The promoted copy's object epoch.
        object_epoch: u64,
        /// The promoted copy's refresh sequence.
        seq: u64,
    },
    /// An anti-entropy repair sweep ran (`Shared::repair_sweep`). Emitted
    /// even when repair actions are disabled, so the checker can judge
    /// replication factors "after repair quiesced".
    RepairSweep,
    /// A transport peer's **first** session handshake was accepted under
    /// incarnation `epoch` (socket transport, coordinator side).
    TransportConnected {
        /// The peer node that connected.
        peer: u32,
        /// The incarnation its Hello presented.
        epoch: u64,
    },
    /// A live transport session to `peer` died (EOF, reset, write
    /// failure); its supervisor is redialing under backoff.
    TransportDisconnected {
        /// The peer whose session dropped.
        peer: u32,
    },
    /// A peer re-established its session after an outage.
    TransportReconnected {
        /// The peer that came back.
        peer: u32,
        /// The incarnation its Hello presented.
        epoch: u64,
        /// Dial attempts the outage took.
        attempt: u32,
    },
    /// A session handshake was **refused**: the peer presented incarnation
    /// `epoch` at or below the acceptor's fencing floor. From this event
    /// on, no delivery (and no accepted session) may carry an incarnation
    /// `<= epoch` for this peer — the checker's
    /// no-delivery-after-fenced-handshake invariant.
    HandshakeFenced {
        /// The zombie peer.
        peer: u32,
        /// The stale incarnation it presented.
        epoch: u64,
    },
    /// A payload frame from `peer`'s authenticated session was delivered
    /// to the protocol layer under the session's incarnation `epoch`.
    TransportDelivery {
        /// The sending peer.
        peer: u32,
        /// The session incarnation the frame arrived under.
        epoch: u64,
    },
    /// A checkpoint record was appended to `node`'s write-ahead log
    /// (`WalStore::put` call sites). `durable` reflects the fsync policy's
    /// verdict *at ack time*: `true` means the record was synced before the
    /// caller was acked, so it must survive a cold restart of `node`.
    WalAppended {
        /// The node whose store appended (coordinator stores use
        /// [`CLIENT_PROCESS`]).
        node: u32,
        /// The checkpointed object.
        object: ObjectId,
        /// The record's object epoch.
        object_epoch: u64,
        /// The record's refresh sequence.
        seq: u64,
        /// Whether the record was fsynced before the ack.
        durable: bool,
    },
    /// An explicit WAL sync completed at `node`: every record appended
    /// before this point is now durable (promotes earlier buffered
    /// `WalAppended`s).
    WalSynced {
        /// The syncing node's store.
        node: u32,
        /// Records this sync made durable.
        records: u64,
    },
    /// `node`'s store compacted its WAL into snapshot generation
    /// `generation` (write-temp → atomic-rename → manifest flip). Durable
    /// records survive compaction by construction; this event lets traces
    /// show cold restarts recovering from a snapshot rather than a long log.
    SnapshotCompacted {
        /// The compacting node's store.
        node: u32,
        /// The new live generation.
        generation: u64,
        /// Records written into the snapshot.
        records: u64,
    },
    /// `node`'s store was reopened after every process died (cold restart)
    /// and replayed snapshot + WAL suffix. `recovered` lists each object's
    /// recovered `(epoch, seq)` version; `torn`/`corrupt` report what the
    /// replay found (a torn tail is steady state, corruption must never be
    /// silently accepted). The checker demands every durable `WalAppended`
    /// version be covered, and fences later `Reinstantiated` events below
    /// the recovered epochs.
    ColdRecovered {
        /// The restarted node's store.
        node: u32,
        /// Recovered objects with their `(object_epoch, seq)` versions.
        recovered: Vec<(ObjectId, u64, u64)>,
        /// The replay truncated a torn tail.
        torn: bool,
        /// The replay hit a checksum/decoding failure.
        corrupt: bool,
    },
}

/// One event in a collected trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The emitting process: a node's raw id, or [`CLIENT_PROCESS`].
    pub process: u32,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Convenience constructor.
    #[must_use]
    pub fn new(process: u32, kind: EventKind) -> Self {
        TraceEvent { process, kind }
    }
}

/// Renders a process id the way traces print them.
#[must_use]
pub fn process_name(process: u32) -> String {
    if process == CLIENT_PROCESS {
        "client".to_owned()
    } else {
        format!("n{process}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_names_distinguish_client() {
        assert_eq!(process_name(CLIENT_PROCESS), "client");
        assert_eq!(process_name(3), "n3");
    }

    #[test]
    fn release_causes_display() {
        assert_eq!(ReleaseCause::End.to_string(), "end");
        assert_eq!(ReleaseCause::LeaseExpiry.to_string(), "lease-expiry");
        assert_eq!(ReleaseCause::Crash.to_string(), "crash");
    }
}
