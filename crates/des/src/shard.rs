//! Conservative sharded discrete-event engine for very large worlds.
//!
//! [`ShardedEngine`] partitions a simulation into shards, each with its own
//! [`EventQueue`], and advances them in lockstep over **conservative time
//! windows** of width `lookahead` (the classic Chandy–Misra–Bryant null
//! message bound, realized as a barrier-synchronous window protocol):
//!
//! 1. every shard independently processes all of its events with
//!    `time < window_end` — safe because no other shard can influence it
//!    sooner than `lookahead` time units from now,
//! 2. cross-shard messages produced inside the window are collected in
//!    per-shard outboxes; the sender guarantees `delay ≥ lookahead`, so all
//!    of them land at or after `window_end`,
//! 3. at the window boundary the outboxes are exchanged in one
//!    deterministic merge — sorted by `(arrival time, source shard,
//!    send order)` — and pushed into the destination queues.
//!
//! Step 1 is embarrassingly parallel and runs on scoped worker threads;
//! steps 2–3 are a deterministic sequential reduction. Because window
//! boundaries, the merge order, and every per-shard event stream are all
//! independent of the worker count, a sharded run is **bit-identical at any
//! thread count** — only wall time changes.
//!
//! The natural `lookahead` is the minimum inter-node network latency (see
//! `oml-net`'s `Network::min_remote_delay`): a latency model with a positive
//! offset (e.g. `LatencyModel::ShiftedExponential`) gives a useful window,
//! while a bare exponential has infimum zero and admits no conservative
//! parallelism at all.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Handler for one shard of a sharded simulation.
///
/// The `Send` bound lets shards migrate to worker threads for the parallel
/// window phase; each shard is only ever touched by one thread at a time.
pub trait ShardHandler: Send {
    /// Event type processed by this shard.
    type Event: Send;

    /// Processes one event at simulated time `now`.
    ///
    /// New work is scheduled through `ctx`: [`ShardCtx::schedule_in`] for
    /// this shard, [`ShardCtx::send`] for another shard (which must respect
    /// the lookahead).
    fn handle(&mut self, now: SimTime, event: Self::Event, ctx: &mut ShardCtx<'_, Self::Event>);
}

/// A cross-shard message waiting for the window boundary exchange.
struct Outgoing<E> {
    dest: usize,
    time: SimTime,
    event: E,
}

/// Scheduling context handed to [`ShardHandler::handle`].
pub struct ShardCtx<'a, E> {
    now: SimTime,
    shard: usize,
    shards: usize,
    lookahead: f64,
    queue: &'a mut EventQueue<E>,
    outbox: &'a mut Vec<Outgoing<E>>,
}

impl<'a, E> ShardCtx<'a, E> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Index of the shard being processed.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards in the engine.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The engine's conservative lookahead.
    #[must_use]
    pub fn lookahead(&self) -> f64 {
        self.lookahead
    }

    /// Schedules an event on **this** shard, `delay` from now.
    ///
    /// Local events have no lookahead constraint; a zero delay re-enters the
    /// current window (FIFO behind events already queued at the same time).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "invalid local delay: {delay}"
        );
        self.queue.push(self.now + delay, event);
    }

    /// Sends an event to shard `dest`, arriving `delay` from now.
    ///
    /// Sending to the own shard degrades to [`ShardCtx::schedule_in`].
    /// Cross-shard sends must keep `delay ≥ lookahead` — that bound is what
    /// makes it safe for every shard to process a whole window without
    /// hearing from its peers.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range or a cross-shard `delay` undercuts
    /// the lookahead.
    pub fn send(&mut self, dest: usize, delay: f64, event: E) {
        if dest == self.shard {
            self.schedule_in(delay, event);
            return;
        }
        assert!(dest < self.shards, "shard {dest} does not exist");
        assert!(
            delay.is_finite() && delay >= self.lookahead,
            "cross-shard delay {delay} undercuts the lookahead {}",
            self.lookahead
        );
        self.outbox.push(Outgoing {
            dest,
            time: self.now + delay,
            event,
        });
    }
}

/// One shard: a handler, its event queue, and its pending cross-shard mail.
struct Shard<H: ShardHandler> {
    index: usize,
    handler: H,
    queue: EventQueue<H::Event>,
    outbox: Vec<Outgoing<H::Event>>,
    handled: u64,
}

impl<H: ShardHandler> Shard<H> {
    /// Processes every queued event with `time < window_end`.
    fn advance(&mut self, window_end: SimTime, lookahead: f64, shards: usize) {
        while let Some(t) = self.queue.peek_time() {
            if t >= window_end {
                break;
            }
            let ev = self.queue.pop().expect("peeked event exists");
            self.handled += 1;
            let mut ctx = ShardCtx {
                now: ev.time,
                shard: self.index,
                shards,
                lookahead,
                queue: &mut self.queue,
                outbox: &mut self.outbox,
            };
            self.handler.handle(ev.time, ev.event, &mut ctx);
        }
    }
}

/// A parallel discrete-event engine over sharded state.
///
/// See the [module docs](self) for the protocol and determinism argument.
pub struct ShardedEngine<H: ShardHandler> {
    shards: Vec<Shard<H>>,
    lookahead: f64,
    threads: usize,
    now: SimTime,
}

impl<H: ShardHandler> ShardedEngine<H> {
    /// Creates an engine from one handler per shard.
    ///
    /// `lookahead` must be strictly positive — it is both the window width
    /// and the minimum cross-shard delay. `threads` is the worker count for
    /// the window phase (`<= 1` runs sequentially with no thread machinery;
    /// more workers than shards are pointless and clamped).
    ///
    /// # Panics
    ///
    /// Panics if `handlers` is empty or `lookahead` is not a positive,
    /// finite number.
    #[must_use]
    pub fn new(handlers: Vec<H>, lookahead: f64, threads: usize) -> Self {
        assert!(!handlers.is_empty(), "a sharded engine needs shards");
        assert!(
            lookahead.is_finite() && lookahead > 0.0,
            "conservative sharding needs a positive lookahead, got {lookahead}"
        );
        ShardedEngine {
            shards: handlers
                .into_iter()
                .enumerate()
                .map(|(index, handler)| Shard {
                    index,
                    handler,
                    queue: EventQueue::new(),
                    outbox: Vec::new(),
                    handled: 0,
                })
                .collect(),
            lookahead,
            threads: threads.max(1),
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time (the last window boundary).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total events handled across all shards.
    #[must_use]
    pub fn events_handled(&self) -> u64 {
        self.shards.iter().map(|s| s.handled).sum()
    }

    /// The handler of shard `i`.
    #[must_use]
    pub fn handler(&self, i: usize) -> &H {
        &self.shards[i].handler
    }

    /// Iterates over all shard handlers (e.g. to merge per-shard metrics).
    pub fn handlers(&self) -> impl Iterator<Item = &H> {
        self.shards.iter().map(|s| &s.handler)
    }

    /// Seeds an event on shard `shard` at absolute time `at`.
    ///
    /// Only valid before the clock passes `at`; use this to plant the
    /// initial events of a scenario.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or `at` lies in the processed past.
    pub fn schedule(&mut self, shard: usize, at: SimTime, event: H::Event) {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before the clock ({})",
            self.now
        );
        self.shards[shard].queue.push(at, event);
    }

    /// Runs every event with `time < t_end`, leaving the clock at `t_end`.
    ///
    /// Windows are `lookahead` wide; stretches with no events at all are
    /// skipped in one hop (the skip depends only on global queue state, so
    /// it does not disturb reproducibility).
    pub fn run_until(&mut self, t_end: SimTime) {
        let lookahead = self.lookahead;
        let shards = self.shards.len();
        let threads = self.threads.min(shards);
        while self.now < t_end {
            let Some(next) = self.shards.iter().filter_map(|s| s.queue.peek_time()).min() else {
                break;
            };
            if next >= t_end {
                break;
            }
            let window_start = next.max(self.now);
            let window_end = SimTime::new((window_start.as_f64() + lookahead).min(t_end.as_f64()));

            if threads <= 1 {
                for shard in &mut self.shards {
                    shard.advance(window_end, lookahead, shards);
                }
            } else {
                let per_worker = shards.div_ceil(threads);
                std::thread::scope(|scope| {
                    for chunk in self.shards.chunks_mut(per_worker) {
                        scope.spawn(move || {
                            for shard in chunk {
                                shard.advance(window_end, lookahead, shards);
                            }
                        });
                    }
                });
            }

            self.exchange(window_end);
            self.now = window_end;
        }
        if self.now < t_end {
            self.now = t_end;
        }
    }

    /// Delivers all window mail in one deterministic merge.
    fn exchange(&mut self, window_end: SimTime) {
        let mut inbound: Vec<(SimTime, usize, usize, Outgoing<H::Event>)> = Vec::new();
        for src in 0..self.shards.len() {
            if self.shards[src].outbox.is_empty() {
                continue;
            }
            let outbox = std::mem::take(&mut self.shards[src].outbox);
            for (idx, out) in outbox.into_iter().enumerate() {
                debug_assert!(
                    out.time >= window_end,
                    "conservative bound violated: arrival {} < window end {window_end}",
                    out.time
                );
                inbound.push((out.time, src, idx, out));
            }
        }
        // (arrival, source shard, send order) is unique per message, so the
        // merge order — and with it every destination queue's sequence
        // numbering — is a pure function of simulation state.
        inbound.sort_by_key(|a| (a.0, a.1, a.2));
        for (time, _, _, out) in inbound {
            self.shards[out.dest].queue.push(time, out.event);
        }
    }

    /// Consumes the engine, returning the shard handlers in index order.
    #[must_use]
    pub fn into_handlers(self) -> Vec<H> {
        self.shards.into_iter().map(|s| s.handler).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong token: bounce between shards with fixed latency.
    struct PingPong {
        received: Vec<f64>,
    }

    #[derive(Debug)]
    struct Token(u32);

    impl ShardHandler for PingPong {
        type Event = Token;

        fn handle(&mut self, now: SimTime, event: Token, ctx: &mut ShardCtx<'_, Token>) {
            self.received.push(now.as_f64());
            if event.0 > 0 {
                let dest = (ctx.shard() + 1) % ctx.shards();
                ctx.send(dest, 1.0, Token(event.0 - 1));
            }
        }
    }

    fn ping_pong(threads: usize) -> (u64, Vec<Vec<f64>>) {
        let handlers = (0..2).map(|_| PingPong { received: vec![] }).collect();
        let mut eng = ShardedEngine::new(handlers, 0.5, threads);
        eng.schedule(0, SimTime::ZERO, Token(9));
        eng.run_until(SimTime::new(100.0));
        let events = eng.events_handled();
        let logs = eng
            .into_handlers()
            .into_iter()
            .map(|h| h.received)
            .collect();
        (events, logs)
    }

    #[test]
    fn ping_pong_bounces_through_windows() {
        let (events, logs) = ping_pong(1);
        assert_eq!(events, 10, "token 9 makes ten hops");
        assert_eq!(logs[0], vec![0.0, 2.0, 4.0, 6.0, 8.0]);
        assert_eq!(logs[1], vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let base = ping_pong(1);
        for threads in [2, 4] {
            assert_eq!(ping_pong(threads), base, "threads = {threads}");
        }
    }

    /// Mixed local/remote traffic driven by per-shard RNG state.
    struct Chatter {
        rng: crate::SimRng,
        sum: f64,
        remaining: u32,
    }

    #[derive(Debug)]
    struct Poke;

    impl ShardHandler for Chatter {
        type Event = Poke;

        fn handle(&mut self, now: SimTime, _: Poke, ctx: &mut ShardCtx<'_, Poke>) {
            self.sum += now.as_f64();
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            let dest = self.rng.below(ctx.shards());
            if dest == ctx.shard() {
                ctx.schedule_in(self.rng.exp(0.3), Poke);
            } else {
                ctx.send(dest, 0.25 + self.rng.exp(0.75), Poke);
            }
        }
    }

    fn chatter(threads: usize) -> (u64, Vec<(u64, f64)>) {
        let handlers = (0..4)
            .map(|i| Chatter {
                rng: crate::SimRng::seed_from(crate::stats::replication_seed(42, i)),
                sum: 0.0,
                remaining: 40,
            })
            .collect();
        let mut eng = ShardedEngine::new(handlers, 0.25, threads);
        for shard in 0..4 {
            eng.schedule(shard, SimTime::ZERO, Poke);
        }
        eng.run_until(SimTime::new(200.0));
        let events = eng.events_handled();
        let state = eng
            .into_handlers()
            .into_iter()
            .map(|h| (h.remaining as u64, h.sum))
            .collect();
        (events, state)
    }

    #[test]
    #[cfg_attr(miri, ignore = "hundreds of windows are slow under the interpreter")]
    fn stochastic_traffic_is_thread_count_invariant() {
        let base = chatter(1);
        assert!(base.0 > 100, "expected plenty of events, got {}", base.0);
        for threads in [2, 3] {
            assert_eq!(chatter(threads), base, "threads = {threads}");
        }
    }

    #[test]
    fn empty_stretches_are_skipped() {
        let handlers = vec![PingPong { received: vec![] }];
        let mut eng = ShardedEngine::new(handlers, 0.001, 1);
        eng.schedule(0, SimTime::new(5_000.0), Token(0));
        // 5e6 naive windows would take ages; the fast-forward makes this instant
        eng.run_until(SimTime::new(10_000.0));
        assert_eq!(eng.events_handled(), 1);
        assert_eq!(eng.now(), SimTime::new(10_000.0));
    }

    #[test]
    #[should_panic(expected = "undercuts the lookahead")]
    fn short_cross_shard_delay_panics() {
        struct Bad;
        impl ShardHandler for Bad {
            type Event = ();
            fn handle(&mut self, _: SimTime, (): (), ctx: &mut ShardCtx<'_, ()>) {
                ctx.send(1, 0.1, ());
            }
        }
        let mut eng = ShardedEngine::new(vec![Bad, Bad], 0.5, 1);
        eng.schedule(0, SimTime::ZERO, ());
        eng.run_until(SimTime::new(1.0));
    }

    #[test]
    fn exact_lookahead_delay_is_accepted() {
        // the conservative bound is `delay >= lookahead`: a send at exactly
        // the lookahead is legal and lands at the next window's start
        struct Boundary;
        impl ShardHandler for Boundary {
            type Event = u32;
            fn handle(&mut self, _: SimTime, hops: u32, ctx: &mut ShardCtx<'_, u32>) {
                if hops > 0 {
                    ctx.send((ctx.shard() + 1) % ctx.shards(), ctx.lookahead(), hops - 1);
                }
            }
        }
        let mut eng = ShardedEngine::new(vec![Boundary, Boundary], 0.5, 1);
        eng.schedule(0, SimTime::ZERO, 4);
        eng.run_until(SimTime::new(10.0));
        assert_eq!(eng.events_handled(), 5);
    }

    #[test]
    fn empty_shard_fast_forward_preserves_fingerprints() {
        // shard 2 never receives anything; a long dead stretch before the
        // first event is fast-forwarded. Neither may perturb the event
        // pattern: the offset run must reproduce the t=0 run shifted by
        // exactly the offset, on every shard.
        struct Pair {
            received: Vec<f64>,
        }
        impl ShardHandler for Pair {
            type Event = Token;
            fn handle(&mut self, now: SimTime, event: Token, ctx: &mut ShardCtx<'_, Token>) {
                self.received.push(now.as_f64());
                if event.0 > 0 {
                    // bounce between shards 0 and 1 only; shard 2 stays empty
                    ctx.send((ctx.shard() + 1) % 2, 1.0, Token(event.0 - 1));
                }
            }
        }
        let run = |offset: f64| -> (u64, Vec<Vec<f64>>) {
            let handlers = (0..3).map(|_| Pair { received: vec![] }).collect();
            let mut eng = ShardedEngine::new(handlers, 0.5, 1);
            eng.schedule(0, SimTime::new(offset), Token(9));
            eng.run_until(SimTime::new(offset + 100.0));
            let events = eng.events_handled();
            let logs = eng
                .into_handlers()
                .into_iter()
                .map(|h| h.received)
                .collect();
            (events, logs)
        };
        let (base_events, base_logs) = run(0.0);
        let (off_events, off_logs) = run(5_000.0);
        assert_eq!(base_events, off_events);
        assert!(base_logs[2].is_empty(), "shard 2 stays idle");
        for (base, off) in base_logs.iter().zip(&off_logs) {
            let shifted: Vec<f64> = base.iter().map(|t| t + 5_000.0).collect();
            assert_eq!(&shifted, off, "fingerprint shifted by exactly the offset");
        }
    }

    #[test]
    fn single_shard_matches_unsharded_engine() {
        // the same stochastic workload, same SimRng seed, run once through
        // a 1-shard conservative engine and once through the plain event
        // loop — every observable must agree exactly
        use crate::engine::{Engine, EventHandler, Scheduler};

        struct Solo {
            rng: crate::SimRng,
            sum: f64,
            remaining: u32,
        }
        impl EventHandler for Solo {
            type Event = Poke;
            fn handle(&mut self, now: SimTime, _: Poke, sched: &mut Scheduler<Poke>) {
                self.sum += now.as_f64();
                if self.remaining == 0 {
                    return;
                }
                self.remaining -= 1;
                // mirror Chatter's RNG call sequence exactly: a destination
                // draw (always the own shard when there is only one) then
                // the delay draw
                let _dest = self.rng.below(1);
                sched.schedule_in(self.rng.exp(0.3), Poke);
            }
        }

        let seed = crate::stats::replication_seed(42, 0);
        let mut sharded = ShardedEngine::new(
            vec![Chatter {
                rng: crate::SimRng::seed_from(seed),
                sum: 0.0,
                remaining: 40,
            }],
            0.25,
            1,
        );
        sharded.schedule(0, SimTime::ZERO, Poke);
        sharded.run_until(SimTime::new(200.0));

        let mut plain = Engine::new(Solo {
            rng: crate::SimRng::seed_from(seed),
            sum: 0.0,
            remaining: 40,
        });
        plain.scheduler_mut().schedule_at(SimTime::ZERO, Poke);
        plain.run_until(SimTime::new(200.0));

        assert_eq!(sharded.events_handled(), plain.events_handled());
        let sharded_h = sharded.into_handlers().pop().unwrap();
        let plain_h = plain.into_handler();
        assert_eq!(sharded_h.remaining, plain_h.remaining);
        assert_eq!(sharded_h.sum, plain_h.sum, "event times agree exactly");
    }
}
