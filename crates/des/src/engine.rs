//! The actor-style execution loop.

use crate::{EventQueue, SimTime};

/// User logic driven by the [`Engine`].
///
/// The handler receives each event together with the current clock and a
/// [`Scheduler`] through which it can schedule follow-up events. All
/// simulation state lives inside the handler; the engine only owns time.
pub trait EventHandler {
    /// The event payload type.
    type Event;

    /// Reacts to one event. `now` is the event's activation time.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// The scheduling facade handed to [`EventHandler::handle`].
///
/// Wraps the event queue and the clock; events can only be scheduled at or
/// after the current time, which rules out causality violations.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Scheduler<E> {
    /// Creates a scheduler starting at time zero with an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` time units from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "invalid event delay: {delay}"
        );
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` to fire at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < {:?}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total number of events scheduled over the lifetime of the simulation.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// What a single [`Engine::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One event was delivered to the handler.
    Handled,
    /// The queue was empty; the simulation has quiesced.
    Idle,
}

/// Drives an [`EventHandler`] until quiescence, a deadline, or an event
/// budget is exhausted.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug)]
pub struct Engine<H: EventHandler> {
    handler: H,
    sched: Scheduler<H::Event>,
    handled: u64,
}

impl<H: EventHandler> Engine<H> {
    /// Creates an engine around `handler` with the clock at zero.
    pub fn new(handler: H) -> Self {
        Engine {
            handler,
            sched: Scheduler::new(),
            handled: 0,
        }
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Number of events delivered so far.
    #[must_use]
    pub fn events_handled(&self) -> u64 {
        self.handled
    }

    /// Borrows the handler (e.g. to read out results).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutably borrows the handler.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Borrows the scheduler, e.g. to seed initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<H::Event> {
        &mut self.sched
    }

    /// Consumes the engine and returns the handler.
    pub fn into_handler(self) -> H {
        self.handler
    }

    /// Delivers the next event, advancing the clock to its activation time.
    pub fn step(&mut self) -> StepOutcome {
        match self.sched.queue.pop() {
            Some(scheduled) => {
                debug_assert!(scheduled.time >= self.sched.now);
                self.sched.now = scheduled.time;
                self.handler
                    .handle(scheduled.time, scheduled.event, &mut self.sched);
                self.handled += 1;
                StepOutcome::Handled
            }
            None => StepOutcome::Idle,
        }
    }

    /// Runs until no events remain.
    pub fn run_to_completion(&mut self) {
        while self.step() == StepOutcome::Handled {}
    }

    /// Runs until the clock would pass `deadline` or the queue empties.
    ///
    /// Events scheduled exactly at `deadline` are still delivered.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.sched.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
    }

    /// Runs until `predicate` returns true (checked after every event), the
    /// event `budget` is exhausted, or the queue empties.
    ///
    /// Returns `true` if the predicate caused the stop.
    pub fn run_while<F: FnMut(&H) -> bool>(&mut self, budget: u64, mut predicate: F) -> bool {
        for _ in 0..budget {
            if self.step() == StepOutcome::Idle {
                return false;
            }
            if predicate(&self.handler) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collector {
        seen: Vec<(f64, u32)>,
        respawn: bool,
    }

    impl EventHandler for Collector {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now.as_f64(), event));
            if self.respawn && event < 5 {
                sched.schedule_in(1.0, event + 1);
            }
        }
    }

    fn engine(respawn: bool) -> Engine<Collector> {
        Engine::new(Collector {
            seen: Vec::new(),
            respawn,
        })
    }

    #[test]
    fn delivers_in_time_order_and_advances_clock() {
        let mut e = engine(false);
        e.scheduler_mut().schedule_at(SimTime::new(2.0), 2);
        e.scheduler_mut().schedule_at(SimTime::new(1.0), 1);
        e.run_to_completion();
        assert_eq!(e.handler().seen, vec![(1.0, 1), (2.0, 2)]);
        assert_eq!(e.now(), SimTime::new(2.0));
        assert_eq!(e.events_handled(), 2);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut e = engine(true);
        e.scheduler_mut().schedule_at(SimTime::ZERO, 0);
        e.run_to_completion();
        assert_eq!(e.handler().seen.len(), 6);
        assert_eq!(e.now(), SimTime::new(5.0));
    }

    #[test]
    fn run_until_respects_deadline_inclusively() {
        let mut e = engine(true);
        e.scheduler_mut().schedule_at(SimTime::ZERO, 0);
        e.run_until(SimTime::new(2.0));
        // events at t = 0, 1, 2 fire; the one at t = 3 stays queued
        assert_eq!(e.handler().seen.len(), 3);
        assert_eq!(e.scheduler_mut().pending(), 1);
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut e = engine(true);
        e.scheduler_mut().schedule_at(SimTime::ZERO, 0);
        let stopped = e.run_while(1_000, |h| h.seen.len() >= 3);
        assert!(stopped);
        assert_eq!(e.handler().seen.len(), 3);
    }

    #[test]
    fn run_while_reports_quiescence() {
        let mut e = engine(false);
        e.scheduler_mut().schedule_at(SimTime::ZERO, 0);
        let stopped = e.run_while(1_000, |_| false);
        assert!(!stopped);
    }

    #[test]
    fn step_on_empty_queue_is_idle() {
        let mut e = engine(false);
        assert_eq!(e.step(), StepOutcome::Idle);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = engine(false);
        e.scheduler_mut().schedule_at(SimTime::new(5.0), 1);
        e.run_to_completion();
        e.scheduler_mut().schedule_at(SimTime::new(1.0), 2);
    }

    #[test]
    #[should_panic(expected = "invalid event delay")]
    fn negative_delay_panics() {
        let mut e = engine(false);
        e.scheduler_mut().schedule_in(-1.0, 7);
    }
}
