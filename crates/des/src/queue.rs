//! A stable, deterministic event queue.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::SimTime;

/// An event together with its activation time and insertion sequence number.
///
/// The sequence number makes the queue *stable*: two events scheduled for the
/// same instant are delivered in the order they were scheduled. Stability is
/// what makes whole simulation runs reproducible from a seed.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonically increasing insertion counter (unique per queue).
    pub seq: u64,
    /// The payload delivered to the handler.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The heap priority, packed into a single integer comparison.
///
/// `SimTime` is finite and non-negative by construction, and for such values
/// the IEEE-754 bit pattern orders exactly like the number itself. Packing
/// the time bits above the sequence number therefore gives one `u128` whose
/// natural order is precisely "earliest time first, FIFO within a tie" — and
/// a single integer compare is what every sift step of the heap executes,
/// instead of an f64 compare plus a tie-break branch.
fn pack_key(time: SimTime, seq: u64) -> u128 {
    (u128::from(time.as_f64().to_bits()) << 64) | u128::from(seq)
}

fn unpack_key<E>(key: u128, event: E) -> ScheduledEvent<E> {
    ScheduledEvent {
        time: SimTime::new(f64::from_bits((key >> 64) as u64)),
        seq: key as u64,
        event,
    }
}

/// A time-ordered queue of events with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use oml_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::new(2.0), "late");
/// q.push(SimTime::new(1.0), "early");
/// q.push(SimTime::new(1.0), "early-second");
///
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u128, EventSlot<E>)>>,
    next_seq: u64,
}

/// Wraps the payload so the heap's ordering never looks at it (events need
/// not be comparable, and comparing them would violate stability anyway).
#[derive(Debug, Clone)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl<E> Eq for EventSlot<E> {}

impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> Ordering {
        Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time` and returns its sequence number.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(Reverse((pack_key(time, seq), EventSlot(event))));
        seq
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties are returned in insertion order.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap
            .pop()
            .map(|Reverse((key, slot))| unpack_key(key, slot.0))
    }

    /// Returns the activation time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .peek()
            .map(|Reverse((key, _))| SimTime::new(f64::from_bits((key >> 64) as u64)))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(3.0), 3);
        q.push(SimTime::new(1.0), 1);
        q.push(SimTime::new(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::new(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::new(7.0), ());
        q.push(SimTime::new(4.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::new(4.0)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::new(7.0)));
    }

    #[test]
    fn len_and_totals_track_activity() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn sequence_numbers_are_unique_and_increasing() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::ZERO, ());
        let b = q.push(SimTime::ZERO, ());
        assert!(b > a);
    }
}
