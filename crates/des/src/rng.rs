//! Seeded randomness and the distributions used by the paper's model.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source for simulations.
///
/// All stochastic quantities in the paper's model (message durations, call
/// counts, think times, block gaps) are exponentially distributed; this type
/// provides [`SimRng::exp`] for those plus a few helpers for placing objects.
/// Seeding makes every run reproducible, which the test-suite and the
/// confidence-interval comparisons rely on.
///
/// # Example
///
/// ```
/// use oml_des::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.exp(1.0), b.exp(1.0));
/// assert!(a.exp(6.0) >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws from the exponential distribution with the given `mean`.
    ///
    /// A mean of zero is allowed and always yields zero, which models the
    /// degenerate "deterministic, instantaneous" case used in tests.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "invalid exponential mean: {mean}"
        );
        if mean == 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling; gen::<f64>() ∈ [0, 1), so 1 − u ∈ (0, 1] and
        // the logarithm is finite.
        let u: f64 = self.inner.gen();
        -mean * (1.0 - u).ln()
    }

    /// Draws a positive integer from the geometric-like discretization of an
    /// exponential with the given mean: `max(1, round(exp(mean)))`.
    ///
    /// The paper draws the number of calls in a move-block (`N`) from an
    /// exponential distribution; a block always contains at least one call.
    pub fn exp_count(&mut self, mean: f64) -> u64 {
        let x = self.exp(mean);
        (x.round() as u64).max(1)
    }

    /// Draws uniformly from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        self.inner.gen_range(0..n)
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.below(slice.len())]
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator (for splitting streams between
    /// e.g. workload generation and network latencies).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.exp(2.0), b.exp(2.0));
            assert_eq!(a.below(10), b.below(10));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.exp(1.0) == b.exp(1.0)).count();
        assert!(same < 32);
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut rng = SimRng::seed_from(123);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exp(6.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 6.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn exp_zero_mean_is_zero() {
        let mut rng = SimRng::seed_from(5);
        assert_eq!(rng.exp(0.0), 0.0);
    }

    #[test]
    fn exp_count_is_at_least_one() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..1_000 {
            assert!(rng.exp_count(0.3) >= 1);
        }
    }

    #[test]
    fn exp_count_mean_tracks_parameter() {
        let mut rng = SimRng::seed_from(11);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.exp_count(8.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.25, "sample mean {mean}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::seed_from(21);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..32).filter(|_| c1.exp(1.0) == c2.exp(1.0)).count();
        assert!(same < 32);
    }

    #[test]
    #[should_panic(expected = "invalid exponential mean")]
    fn negative_mean_panics() {
        SimRng::seed_from(0).exp(-1.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }
}
