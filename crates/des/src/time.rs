//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point on the simulated clock.
///
/// Time is a non-negative, finite `f64` measured in multiples of the mean
/// duration of one remote message (the paper normalizes the network so that a
/// remote invocation message has an exponentially distributed duration with
/// mean 1; see §4.1 of the paper).
///
/// `SimTime` is totally ordered: the constructor rejects NaN and negative
/// values, so `Ord` can be implemented without surprises.
///
/// # Example
///
/// ```
/// use oml_des::SimTime;
///
/// let t = SimTime::new(1.5) + 2.5;
/// assert_eq!(t, SimTime::new(4.0));
/// assert!(t > SimTime::ZERO);
/// assert_eq!(t - SimTime::new(1.0), 3.0);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time value.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN, infinite or negative — such values would break
    /// the total order the event queue relies on.
    #[must_use]
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite() && t >= 0.0, "invalid simulation time: {t}");
        SimTime(t)
    }

    /// Returns the raw clock value.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Values are guaranteed finite and non-negative by construction.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    /// Advances the clock by `rhs` time units.
    ///
    /// # Panics
    ///
    /// Panics if the result would not be a valid time (NaN/negative).
    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;

    /// Returns the (possibly negative) span from `rhs` to `self`.
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.min(a), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::new(3.25);
        assert_eq!((t + 0.75).as_f64(), 4.0);
        assert_eq!(t - SimTime::new(1.25), 2.0);
        assert_eq!(f64::from(t), 3.25);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn rejects_nan() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn rejects_negative() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
    }
}
