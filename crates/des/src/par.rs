//! Deterministic work-stealing parallelism for independent jobs.
//!
//! [`parallel_map`] fans `n` independent jobs across a fixed number of
//! worker threads and returns the results **indexed by job**, so the output
//! is identical to the sequential `(0..n).map(f)` regardless of thread
//! count or scheduling order. Workers claim jobs from a shared atomic
//! counter (work stealing), which keeps long and short jobs balanced
//! without any up-front partitioning.
//!
//! This is the engine room of the parallel replication runner: every
//! replication of a sweep point is an independent job with a derived seed
//! (see [`crate::stats::replication_seed`]), and because the results are
//! reassembled in index order before any floating-point accumulation
//! happens, the merged statistics are bit-identical at any thread count.

/// Runs `n` jobs on up to `threads` workers, returning results in job order.
///
/// With `threads <= 1` (or a single job) this degrades to a plain
/// sequential map with no thread machinery at all — the parallel and
/// sequential paths produce identical `Vec`s.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map<R: Send>(n: usize, threads: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for _ in 0..threads.min(n) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            out[i] = Some(r);
        }
    });
    out.into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_at_every_thread_count() {
        let sequential: Vec<u64> = (0..37).map(|i| (i as u64) * 3 + 1).collect();
        for threads in [0, 1, 2, 3, 8] {
            let parallel = parallel_map(37, threads, |i| (i as u64) * 3 + 1);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_job() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    #[cfg_attr(miri, ignore = "spin-wait is pointlessly slow under the interpreter")]
    fn workers_steal_unbalanced_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // one slow job must not serialize the rest behind it
        let done = AtomicUsize::new(0);
        let out = parallel_map(16, 4, |i| {
            if i == 0 {
                while done.load(Ordering::Relaxed) < 8 {
                    std::thread::yield_now();
                }
            }
            done.fetch_add(1, Ordering::Relaxed);
            i * i
        });
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }
}
