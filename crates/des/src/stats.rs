//! Online statistics and the paper's confidence-interval stopping rule.
//!
//! The paper (§4.1) runs every simulation "as long as a confidence interval
//! of 1 % was reached with probability p = 0.99". Raw per-call samples from a
//! steady-state simulation are autocorrelated, so the classical normal-theory
//! interval is computed over **batch means** ([`BatchMeans`]): consecutive
//! samples are grouped into fixed-size batches whose means are approximately
//! independent and normal.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use oml_des::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN would silently poison every later
    /// statistic).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot accumulate NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 if fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest sample seen, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// confidence level (e.g. `0.99`).
    ///
    /// Returns `None` with fewer than two samples.
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> Option<ConfidenceInterval> {
        if self.count < 2 {
            return None;
        }
        let z = normal_quantile(0.5 + confidence / 2.0);
        let half = z * self.std_err();
        Some(ConfidenceInterval {
            mean: self.mean,
            half_width: half,
            confidence,
            samples: self.count,
        })
    }
}

/// A symmetric confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval (`mean ± half_width`).
    pub half_width: f64,
    /// Confidence level used (e.g. 0.99).
    pub confidence: f64,
    /// Number of (batch) samples the interval is based on.
    pub samples: u64,
}

impl ConfidenceInterval {
    /// Half-width relative to the mean; `f64::INFINITY` when the mean is 0
    /// but the half-width is not.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            (self.half_width / self.mean).abs()
        }
    }

    /// Whether the interval satisfies the paper's "1 % at p = 0.99" style
    /// criterion for the given relative precision.
    #[must_use]
    pub fn is_within(&self, relative: f64) -> bool {
        self.relative_half_width() <= relative
    }
}

/// Inverse CDF of the standard normal distribution.
///
/// Uses the Acklam rational approximation (relative error below 1.15e-9 over
/// the whole domain), which is far more precision than a stopping rule needs.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability out of range: {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Batch-means estimator for steady-state simulation output.
///
/// Consecutive raw samples are grouped into batches of `batch_size`; the
/// confidence interval is computed over the batch means, which are much
/// closer to independent than the raw samples.
///
/// # Example
///
/// ```
/// use oml_des::stats::BatchMeans;
///
/// let mut bm = BatchMeans::new(100);
/// for i in 0..10_000 {
///     bm.push((i % 7) as f64);
/// }
/// let ci = bm.confidence_interval(0.99).unwrap();
/// assert!((ci.mean - 3.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batches: OnlineStats,
    raw: OnlineStats,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    #[must_use]
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: OnlineStats::new(),
            raw: OnlineStats::new(),
        }
    }

    /// Adds one raw sample.
    pub fn push(&mut self, x: f64) {
        self.raw.push(x);
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// The configured batch size.
    #[must_use]
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Number of completed batches.
    #[must_use]
    pub fn batch_count(&self) -> u64 {
        self.batches.count()
    }

    /// Total raw samples pushed.
    #[must_use]
    pub fn sample_count(&self) -> u64 {
        self.raw.count()
    }

    /// Statistics over the raw samples (exact mean; variance is biased by
    /// autocorrelation — use the batch interval for precision decisions).
    #[must_use]
    pub fn raw_stats(&self) -> &OnlineStats {
        &self.raw
    }

    /// Confidence interval over the batch means, or `None` with fewer than
    /// two completed batches.
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> Option<ConfidenceInterval> {
        self.batches.confidence_interval(confidence)
    }

    /// Folds another estimator of the **same batch size** into this one.
    ///
    /// Completed batches and raw samples merge exactly (via
    /// [`OnlineStats::merge`], which is order-dependent in the last float
    /// bits — callers wanting reproducibility must merge in a fixed order,
    /// e.g. replication index order). `other`'s *partial* batch, if any,
    /// contributes to the raw statistics but never becomes a batch mean:
    /// two partial batches from independent streams have no well-defined
    /// concatenation. The parallel replication runner sidesteps this by
    /// sizing each replication to a whole number of batches.
    ///
    /// # Panics
    ///
    /// Panics if the batch sizes differ.
    pub fn merge(&mut self, other: &BatchMeans) {
        assert_eq!(
            self.batch_size, other.batch_size,
            "cannot merge batch-means estimators with different batch sizes"
        );
        self.batches.merge(&other.batches);
        self.raw.merge(&other.raw);
    }
}

/// The paper's stopping rule: run until the confidence interval (over batch
/// means) has relative half-width ≤ `relative_precision` at the given
/// `confidence`, subject to a minimum number of batches and an overall
/// sample cap (so experiments always terminate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoppingRule {
    /// Target relative half-width, e.g. `0.01` for the paper's 1 %.
    pub relative_precision: f64,
    /// Confidence level, e.g. `0.99` for the paper's p = 0.99.
    pub confidence: f64,
    /// Never stop (on precision grounds) before this many batches.
    pub min_batches: u64,
    /// Hard cap on raw samples; reaching it stops the run regardless.
    pub max_samples: u64,
}

impl StoppingRule {
    /// The rule used throughout the paper: 1 % at p = 0.99.
    #[must_use]
    pub fn paper() -> Self {
        StoppingRule {
            relative_precision: 0.01,
            confidence: 0.99,
            min_batches: 20,
            max_samples: 2_000_000,
        }
    }

    /// A loose variant for quick smoke tests and benches (5 % at p = 0.95,
    /// small sample cap).
    #[must_use]
    pub fn quick() -> Self {
        StoppingRule {
            relative_precision: 0.05,
            confidence: 0.95,
            min_batches: 10,
            max_samples: 60_000,
        }
    }

    /// Whether a run described by `batches` may stop now.
    #[must_use]
    pub fn should_stop(&self, batches: &BatchMeans) -> bool {
        if batches.sample_count() >= self.max_samples {
            return true;
        }
        if batches.batch_count() < self.min_batches {
            return false;
        }
        batches
            .confidence_interval(self.confidence)
            .is_some_and(|ci| ci.is_within(self.relative_precision))
    }
}

impl Default for StoppingRule {
    fn default() -> Self {
        StoppingRule::paper()
    }
}

/// Lag-`k` sample autocorrelation of a series.
///
/// Steady-state simulation output is autocorrelated, which is why the
/// stopping rule works on batch means: this estimator lets you *check* that
/// a chosen batch size is large enough (the lag-1 autocorrelation of the
/// batch means should be near zero).
///
/// Returns `None` if the series is too short (`len <= lag`) or has zero
/// variance.
///
/// # Example
///
/// ```
/// use oml_des::stats::autocorrelation;
///
/// let alternating: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
/// let r1 = autocorrelation(&alternating, 1).unwrap();
/// assert!(r1 < -0.9); // strongly anti-correlated at lag 1
/// let r2 = autocorrelation(&alternating, 2).unwrap();
/// assert!(r2 > 0.9);
/// ```
#[must_use]
pub fn autocorrelation(xs: &[f64], lag: usize) -> Option<f64> {
    let n = xs.len();
    if lag == 0 {
        return (n > 0).then_some(1.0);
    }
    if n <= lag {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let denom: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    if denom == 0.0 {
        return None;
    }
    let num: f64 = xs
        .windows(lag + 1)
        .map(|w| (w[0] - mean) * (w[lag] - mean))
        .sum();
    Some(num / denom)
}

/// Runs `n` independent replications of a stochastic experiment and
/// aggregates their results.
///
/// Replications are the textbook alternative to batch means: each
/// replication runs with its own derived seed, and the per-replication
/// outputs are i.i.d., so the normal-theory confidence interval over them is
/// exact in distribution. Used by the test-suite to cross-validate the
/// batch-means intervals.
///
/// # Example
///
/// ```
/// use oml_des::stats::replicate;
/// use oml_des::SimRng;
///
/// let stats = replicate(20, 42, |seed| {
///     let mut rng = SimRng::seed_from(seed);
///     (0..1000).map(|_| rng.exp(2.0)).sum::<f64>() / 1000.0
/// });
/// assert_eq!(stats.count(), 20);
/// assert!((stats.mean() - 2.0).abs() < 0.1);
/// ```
pub fn replicate<F: FnMut(u64) -> f64>(n: u64, base_seed: u64, mut experiment: F) -> OnlineStats {
    let mut stats = OnlineStats::new();
    for i in 0..n {
        stats.push(experiment(replication_seed(base_seed, i)));
    }
    stats
}

/// Seed for replication `i` of an experiment with the given base seed.
///
/// SplitMix64-style derivation keeps replication seeds decorrelated; the
/// mapping is pure, so replication `i` gets the same seed whether the
/// replications run sequentially or on any number of worker threads — the
/// cornerstone of the parallel replication runner's bit-reproducibility.
#[must_use]
pub fn replication_seed(base_seed: u64, i: u64) -> u64 {
    (base_seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15))).wrapping_add(0x2545_f491_4f6c_dd1d)
}

/// Online quantile estimation with the P² algorithm (Jain & Chlamtac 1985).
///
/// Tracks one quantile in O(1) memory — no sample storage — which is what a
/// long simulation needs to report tail latencies (e.g. the p95 call time
/// inflated by blocking on in-transit objects).
///
/// # Example
///
/// ```
/// use oml_des::stats::P2Quantile;
///
/// let mut p95 = P2Quantile::new(0.95);
/// for i in 1..=10_000 {
///     p95.push(f64::from(i));
/// }
/// let v = p95.value().unwrap();
/// assert!((v - 9_500.0).abs() < 100.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// marker heights
    q: [f64; 5],
    /// marker positions (1-based)
    n: [f64; 5],
    /// desired marker positions
    np: [f64; 5],
    /// desired position increments
    dn: [f64; 5],
    count: u64,
    /// initial buffer until five samples arrived
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile (`0 < p < 1`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1): {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot accumulate NaN");
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                let mut sorted = self.init.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                for (i, &v) in sorted.iter().enumerate() {
                    self.q[i] = v;
                }
            }
            return;
        }

        // locate the cell and clamp the extremes
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            (0..4)
                .find(|&i| x < self.q[i + 1])
                .expect("x is within [q0, q4)")
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // adjust the three middle markers with parabolic interpolation
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current quantile estimate; `None` before the first observation.
    /// With fewer than five observations an exact small-sample quantile is
    /// returned.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.init.len() < 5 {
            let mut sorted = self.init.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let idx = ((sorted.len() as f64 - 1.0) * self.p).round() as usize;
            return Some(sorted[idx]);
        }
        Some(self.q[2])
    }

    /// Observations seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// A fixed-width histogram for distribution diagnostics (call-time spreads,
/// closure sizes).
///
/// # Example
///
/// ```
/// use oml_des::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.record(0.5);
/// h.record(9.99);
/// h.record(42.0); // overflow bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts()[0], 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `buckets` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range is empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations (including under/overflow).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bucket counts.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_textbook() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(x);
        }
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert!(s.confidence_interval(0.99).is_none());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(4.0);
        s.push(6.0);
        let snapshot = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, snapshot);
        let mut empty = OnlineStats::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.995) - 2.575_829_304).abs() < 1e-6);
        assert!((normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
        // tail region exercises the other branch
        assert!((normal_quantile(0.001) + 3.090_232_306).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_zero() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn confidence_interval_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        let mut x = 0.37_f64;
        for i in 0..10_000 {
            x = (x * 997.0 + 1.0) % 13.0; // deterministic pseudo-noise
            if i < 100 {
                small.push(x);
            }
            large.push(x);
        }
        let ci_small = small.confidence_interval(0.99).unwrap();
        let ci_large = large.confidence_interval(0.99).unwrap();
        assert!(ci_large.half_width < ci_small.half_width);
    }

    #[test]
    fn relative_half_width_edge_cases() {
        let zero_mean = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
            confidence: 0.99,
            samples: 10,
        };
        assert!(zero_mean.relative_half_width().is_infinite());
        let degenerate = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.0,
            confidence: 0.99,
            samples: 10,
        };
        assert_eq!(degenerate.relative_half_width(), 0.0);
        assert!(degenerate.is_within(0.01));
    }

    #[test]
    fn batch_means_mean_is_exact_over_full_batches() {
        let mut bm = BatchMeans::new(10);
        for i in 0..100 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batch_count(), 10);
        let ci = bm.confidence_interval(0.99).unwrap();
        assert!((ci.mean - 49.5).abs() < 1e-9);
        assert_eq!(bm.sample_count(), 100);
    }

    #[test]
    fn partial_batch_not_counted() {
        let mut bm = BatchMeans::new(10);
        for i in 0..15 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batch_count(), 1);
        assert_eq!(bm.sample_count(), 15);
    }

    #[test]
    fn stopping_rule_respects_min_batches() {
        let rule = StoppingRule {
            relative_precision: 0.5,
            confidence: 0.95,
            min_batches: 5,
            max_samples: 1_000_000,
        };
        let mut bm = BatchMeans::new(10);
        for _ in 0..40 {
            bm.push(1.0);
        }
        assert_eq!(bm.batch_count(), 4);
        assert!(!rule.should_stop(&bm));
        for _ in 0..10 {
            bm.push(1.0);
        }
        assert!(rule.should_stop(&bm));
    }

    #[test]
    fn stopping_rule_caps_samples() {
        let rule = StoppingRule {
            relative_precision: 1e-9,
            confidence: 0.99,
            min_batches: 10,
            max_samples: 50,
        };
        let mut bm = BatchMeans::new(10);
        let mut x = 0.1;
        for _ in 0..50 {
            x = (x * 31.0 + 7.0) % 5.0;
            bm.push(x);
        }
        assert!(rule.should_stop(&bm));
    }

    #[test]
    fn stopping_rule_constant_stream_stops_quickly() {
        let rule = StoppingRule::paper();
        let mut bm = BatchMeans::new(10);
        while !rule.should_stop(&bm) {
            bm.push(3.0);
        }
        assert!(bm.sample_count() <= 10 * rule.min_batches);
    }

    #[test]
    fn histogram_buckets_and_flows() {
        let mut h = Histogram::new(0.0, 5.0, 5);
        for x in [-1.0, 0.0, 0.9, 1.0, 4.999, 5.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bucket_counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.count(), 7);
    }

    #[test]
    #[should_panic(expected = "cannot accumulate NaN")]
    fn nan_sample_panics() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn autocorrelation_of_iid_noise_is_small() {
        let mut rng = crate::SimRng::seed_from(99);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.unit()).collect();
        let r1 = autocorrelation(&xs, 1).unwrap();
        assert!(r1.abs() < 0.05, "lag-1 {r1}");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[], 0), None);
        assert_eq!(autocorrelation(&[1.0], 0), Some(1.0));
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), None);
        // constant series: zero variance
        assert_eq!(autocorrelation(&[3.0; 10], 1), None);
    }

    #[test]
    fn autocorrelation_detects_positive_dependence() {
        // a slow ramp has high lag-1 autocorrelation
        let xs: Vec<f64> = (0..200).map(f64::from).collect();
        assert!(autocorrelation(&xs, 1).unwrap() > 0.9);
    }

    #[test]
    fn replicate_aggregates_independent_runs() {
        let stats = replicate(50, 7, |seed| (seed % 100) as f64);
        assert_eq!(stats.count(), 50);
        assert!(
            stats.variance() > 0.0,
            "seeds must differ across replications"
        );
    }

    #[test]
    fn p2_estimates_known_quantiles_of_uniform_noise() {
        let mut rng = crate::SimRng::seed_from(17);
        let mut median = P2Quantile::new(0.5);
        let mut p95 = P2Quantile::new(0.95);
        for _ in 0..100_000 {
            let x = rng.unit();
            median.push(x);
            p95.push(x);
        }
        assert!((median.value().unwrap() - 0.5).abs() < 0.02);
        assert!((p95.value().unwrap() - 0.95).abs() < 0.02);
        assert_eq!(median.count(), 100_000);
    }

    #[test]
    fn p2_exponential_median_matches_ln2() {
        let mut rng = crate::SimRng::seed_from(23);
        let mut median = P2Quantile::new(0.5);
        for _ in 0..100_000 {
            median.push(rng.exp(1.0));
        }
        assert!((median.value().unwrap() - std::f64::consts::LN_2).abs() < 0.02);
    }

    #[test]
    fn p2_small_samples_are_exact() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.value(), None);
        q.push(3.0);
        assert_eq!(q.value(), Some(3.0));
        q.push(1.0);
        q.push(2.0);
        // median of {1,2,3}
        assert_eq!(q.value(), Some(2.0));
    }

    #[test]
    fn p2_handles_constant_streams() {
        let mut q = P2Quantile::new(0.9);
        for _ in 0..1_000 {
            q.push(7.0);
        }
        assert_eq!(q.value(), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn p2_rejects_invalid_p() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn replicate_is_deterministic_in_base_seed() {
        let experiment = |seed: u64| (seed % 10_000) as f64;
        let a = replicate(10, 3, experiment);
        let b = replicate(10, 3, experiment);
        assert_eq!(a, b);
        let c = replicate(10, 4, experiment);
        assert_ne!(a.mean(), c.mean());
    }
}
