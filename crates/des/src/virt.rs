//! A virtual millisecond clock for model-checked executions.
//!
//! The systematic explorer in `oml-check` replaces wall time with an
//! explicitly advanced clock: lease expiries, client deadlines and failure
//! detection windows all read the same monotonically advancing millisecond
//! counter, and *advancing* it is itself a schedulable choice of the
//! explorer. This adapter keeps that clock in `oml-des` terms so model
//! timestamps and [`SimTime`] values stay interconvertible
//! (1 ms of virtual time = 1.0 simulated time unit).
//!
//! The clock deliberately has no notion of "now" outside what the scheduler
//! assigns: it only moves via [`VirtualClock::advance_to`] /
//! [`VirtualClock::advance_by`], and moving backwards panics — a schedule
//! that rewinds time is a bug in the explorer, not a state to tolerate.

use crate::SimTime;

/// A deterministic, explicitly advanced millisecond clock.
///
/// ```
/// use oml_des::virt::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// assert_eq!(clock.now_ms(), 0);
/// clock.advance_by(250);
/// clock.advance_to(1_000);
/// assert_eq!(clock.now_ms(), 1_000);
/// assert_eq!(clock.as_sim_time().as_f64(), 1_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// A clock at virtual time zero.
    #[must_use]
    pub fn new() -> Self {
        Self { now_ms: 0 }
    }

    /// The current virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances the clock to `at_ms`. A target in the past panics; a target
    /// equal to the current time is a no-op (timers may fire "now").
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is earlier than the current virtual time.
    pub fn advance_to(&mut self, at_ms: u64) {
        assert!(
            at_ms >= self.now_ms,
            "virtual clock moved backwards: {at_ms} < {}",
            self.now_ms
        );
        self.now_ms = at_ms;
    }

    /// Advances the clock by `delta_ms`.
    pub fn advance_by(&mut self, delta_ms: u64) {
        self.now_ms += delta_ms;
    }

    /// The current virtual time as a simulation timestamp
    /// (1 ms = 1.0 simulated time unit).
    #[must_use]
    pub fn as_sim_time(&self) -> SimTime {
        SimTime::new(self.now_ms as f64)
    }

    /// Builds a clock already advanced to `now_ms` (replay support).
    #[must_use]
    pub fn at(now_ms: u64) -> Self {
        Self { now_ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_by(10);
        c.advance_to(10); // equal target is fine
        c.advance_to(25);
        assert_eq!(c.now_ms(), 25);
    }

    #[test]
    #[should_panic(expected = "virtual clock moved backwards")]
    fn rewinding_panics() {
        let mut c = VirtualClock::at(100);
        c.advance_to(99);
    }

    #[test]
    fn converts_to_sim_time() {
        let c = VirtualClock::at(1_500);
        assert_eq!(c.as_sim_time(), SimTime::new(1_500.0));
    }
}
