//! # oml-des — deterministic discrete-event simulation engine
//!
//! This crate provides the simulation substrate used by the
//! [paper reproduction](https://example.invalid/oml) of *Object Migration in
//! Non-Monolithic Distributed Applications* (Ciupke, Kottmann, Walter;
//! ICDCS 1996):
//!
//! * [`SimTime`] — simulated clock values with a total order,
//! * [`EventQueue`] — a stable priority queue of timestamped events
//!   (ties broken by insertion order, so runs are fully deterministic),
//! * [`Scheduler`] / [`Engine`] — a minimal actor-style execution loop,
//! * [`SimRng`] — a seeded random source with the exponential sampling the
//!   paper's model is built on,
//! * [`stats`] — online statistics: Welford accumulators, batch means and the
//!   paper's stopping rule ("run until the 99 % confidence interval half-width
//!   is below 1 % of the mean"),
//! * [`par`] — a deterministic work-stealing `parallel_map` for fanning
//!   independent jobs (sweep points, replications) across cores,
//! * [`shard`] — a conservatively synchronized sharded engine that runs one
//!   huge world on many cores, bit-identical at any thread count,
//! * [`virt`] — an explicitly advanced millisecond clock for model-checked
//!   executions (the `oml-check` explorer's notion of time).
//!
//! The engine is intentionally generic: the distributed-object semantics live
//! in `oml-sim`, this crate only knows about time, events and randomness.
//!
//! # Example
//!
//! ```
//! use oml_des::{Engine, EventHandler, Scheduler, SimTime};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl EventHandler for Counter {
//!     type Event = &'static str;
//!     fn handle(&mut self, _now: SimTime, event: &'static str, sched: &mut Scheduler<Self::Event>) {
//!         self.fired += 1;
//!         if event == "tick" && self.fired < 3 {
//!             sched.schedule_in(1.0, "tick");
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.scheduler_mut().schedule_at(SimTime::ZERO, "tick");
//! engine.run_to_completion();
//! assert_eq!(engine.handler().fired, 3);
//! assert_eq!(engine.now(), SimTime::new(2.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// the simulation engine converts between times, counts and floats freely;
// the remaining allows are deliberate style choices
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::elidable_lifetime_names,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::manual_midpoint,
    clippy::missing_panics_doc,
    clippy::return_self_not_must_use,
    clippy::unreadable_literal
)]

mod engine;
mod queue;
mod rng;
mod time;

pub mod par;
pub mod shard;
pub mod stats;
pub mod trace;
pub mod virt;

pub use engine::{Engine, EventHandler, Scheduler, StepOutcome};
pub use queue::{EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use time::SimTime;
