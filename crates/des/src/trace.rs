//! A bounded event trace for debugging simulation runs.
//!
//! Simulations emit millions of events; when one misbehaves you usually want
//! the *last few thousand* things that happened, not a gigabyte of logs.
//! [`TraceBuffer`] is a fixed-capacity ring that keeps the tail of the
//! stream.

use crate::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// A timestamped trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord<T> {
    /// When the event happened.
    pub time: SimTime,
    /// The payload (usually a small enum or string).
    pub event: T,
}

/// A fixed-capacity ring buffer of trace records.
///
/// # Example
///
/// ```
/// use oml_des::trace::TraceBuffer;
/// use oml_des::SimTime;
///
/// let mut t = TraceBuffer::new(3);
/// for i in 0..5 {
///     t.record(SimTime::new(i as f64), format!("event {i}"));
/// }
/// // only the last three survive
/// let tail: Vec<&str> = t.iter().map(|r| r.event.as_str()).collect();
/// assert_eq!(tail, vec!["event 2", "event 3", "event 4"]);
/// assert_eq!(t.dropped(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer<T> {
    capacity: usize,
    records: VecDeque<TraceRecord<T>>,
    dropped: u64,
}

impl<T> TraceBuffer<T> {
    /// Creates a buffer keeping at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs capacity");
        TraceBuffer {
            capacity,
            records: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn record(&mut self, time: SimTime, event: T) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { time, event });
    }

    /// Iterates oldest → newest over the retained tail.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord<T>> {
        self.records.iter()
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded (or everything was dropped — impossible,
    /// the tail is always kept).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drops everything recorded so far.
    pub fn clear(&mut self) {
        self.dropped += self.records.len() as u64;
        self.records.clear();
    }
}

impl<T: fmt::Display> TraceBuffer<T> {
    /// Renders the retained tail, one record per line.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "… {} earlier records dropped …", self.dropped);
        }
        for r in &self.records {
            let _ = writeln!(out, "[{}] {}", r.time, r.event);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_tail() {
        let mut t = TraceBuffer::new(2);
        t.record(SimTime::new(1.0), 1);
        t.record(SimTime::new(2.0), 2);
        t.record(SimTime::new(3.0), 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let seen: Vec<i32> = t.iter().map(|r| r.event).collect();
        assert_eq!(seen, vec![2, 3]);
    }

    #[test]
    fn clear_counts_as_dropped() {
        let mut t = TraceBuffer::new(4);
        t.record(SimTime::ZERO, "a");
        t.record(SimTime::ZERO, "b");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn render_mentions_drops() {
        let mut t = TraceBuffer::new(1);
        t.record(SimTime::new(1.0), "x");
        t.record(SimTime::new(2.0), "y");
        let s = t.render();
        assert!(s.contains("1 earlier records dropped"));
        assert!(s.contains('y'));
        assert!(!s.contains('x'));
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        let _ = TraceBuffer::<u8>::new(0);
    }
}
