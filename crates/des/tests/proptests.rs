//! Property-based tests for the simulation engine and statistics.

use oml_des::stats::{normal_quantile, BatchMeans, OnlineStats};
use oml_des::{Engine, EventHandler, EventQueue, Scheduler, SimRng, SimTime};
use proptest::prelude::*;

fn finite_sample() -> impl Strategy<Value = f64> {
    (-1.0e6..1.0e6_f64).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    /// Popping the queue always yields events in non-decreasing time order,
    /// and insertion order within equal times.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0.0..1e6_f64, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::new(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time >= last_time);
            if ev.time > last_time {
                seen_at_time.clear();
            }
            // FIFO within a timestamp: payload indices increase.
            if let Some(&prev) = seen_at_time.last() {
                if ev.time == last_time {
                    prop_assert!(ev.event > prev);
                }
            }
            seen_at_time.push(ev.event);
            last_time = ev.time;
        }
    }

    /// Welford mean/variance agree with the naive two-pass computation.
    #[test]
    fn welford_matches_naive(xs in proptest::collection::vec(finite_sample(), 2..300)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let scale = 1.0 + mean.abs() + var.abs();
        prop_assert!((s.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((s.variance() - var).abs() / scale.powi(2).max(scale) < 1e-6);
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn merge_is_concatenation(
        xs in proptest::collection::vec(finite_sample(), 1..100),
        ys in proptest::collection::vec(finite_sample(), 1..100),
    ) {
        let mut a = OnlineStats::new();
        for &x in &xs { a.push(x); }
        let mut b = OnlineStats::new();
        for &y in &ys { b.push(y); }
        a.merge(&b);

        let mut whole = OnlineStats::new();
        for &x in xs.iter().chain(ys.iter()) { whole.push(x); }

        prop_assert_eq!(a.count(), whole.count());
        let scale = 1.0 + whole.mean().abs();
        prop_assert!((a.mean() - whole.mean()).abs() / scale < 1e-9);
    }

    /// The batch-means grand mean over complete batches equals the raw mean.
    #[test]
    fn batch_means_grand_mean(xs in proptest::collection::vec(0.0..100.0_f64, 30..300)) {
        let batch = 10u64;
        let mut bm = BatchMeans::new(batch);
        for &x in &xs { bm.push(x); }
        let complete = (xs.len() as u64 / batch * batch) as usize;
        if complete >= 20 {
            let mean = xs[..complete].iter().sum::<f64>() / complete as f64;
            let ci = bm.confidence_interval(0.99).unwrap();
            prop_assert!((ci.mean - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        }
    }

    /// The normal quantile is monotone and antisymmetric around 1/2.
    #[test]
    fn normal_quantile_shape(p in 0.0001..0.9999_f64, q in 0.0001..0.9999_f64) {
        if p < q {
            prop_assert!(normal_quantile(p) <= normal_quantile(q));
        }
        let anti = normal_quantile(p) + normal_quantile(1.0 - p);
        prop_assert!(anti.abs() < 1e-6);
    }

    /// Exponential samples are non-negative and reproducible from the seed.
    #[test]
    fn exp_samples_nonnegative_and_deterministic(seed in any::<u64>(), mean in 0.0..50.0_f64) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..20 {
            let x = a.exp(mean);
            prop_assert!(x >= 0.0);
            prop_assert_eq!(x, b.exp(mean));
        }
    }

    /// The engine delivers every scheduled event exactly once, regardless of
    /// scheduling order.
    #[test]
    fn engine_delivers_everything(times in proptest::collection::vec(0.0..1e3_f64, 1..100)) {
        struct Count(u64);
        impl EventHandler for Count {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut Scheduler<()>) {
                self.0 += 1;
            }
        }
        let mut e = Engine::new(Count(0));
        for &t in &times {
            e.scheduler_mut().schedule_at(SimTime::new(t), ());
        }
        e.run_to_completion();
        prop_assert_eq!(e.handler().0, times.len() as u64);
        prop_assert_eq!(e.events_handled(), times.len() as u64);
    }
}
