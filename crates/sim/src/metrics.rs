//! Output metrics of a simulation run.
//!
//! The paper's figures are all built from three quantities:
//!
//! * the **mean duration of one call** (Fig. 10) — issue to result,
//!   including blocking on in-transit objects,
//! * the **mean migration time per call** (Fig. 11) — migration durations
//!   "evenly distributed to the invocations belonging to that migration",
//! * their sum plus control-message overhead, the **mean communication time
//!   per call** (Figs. 8, 12, 14, 16).

use oml_des::stats::{
    BatchMeans, ConfidenceInterval, Histogram, OnlineStats, P2Quantile, StoppingRule,
};
use serde::{Deserialize, Serialize};

/// Counters and accumulators produced by a run.
#[derive(Debug, Clone)]
pub struct SimMetrics {
    /// Completed invocations (after warm-up).
    pub calls: u64,
    /// Sum of call durations (issue → result).
    pub total_call_time: f64,
    /// Sum of migration transfer latencies experienced by the system (one
    /// `M · max-size` per migration; closure members travel in parallel).
    pub total_migration_time: f64,
    /// Sum of per-object transfer work (`M · size` for every object moved —
    /// `k·M` for a closure of `k`). The gap between this and
    /// `total_migration_time` is exactly the §2.4 underestimation: movers
    /// pay for objects other applications attached.
    pub total_transfer_load: f64,
    /// Sum of control-message durations clients spent waiting on
    /// move-requests and denial indications.
    pub total_control_time: f64,
    /// Move-requests issued (after warm-up).
    pub moves_issued: u64,
    /// Move-requests granted.
    pub moves_granted: u64,
    /// Move-requests denied.
    pub moves_denied: u64,
    /// Migrations performed (closure moves count once).
    pub migrations: u64,
    /// Objects physically moved (sum of closure sizes actually in transit).
    pub objects_migrated: u64,
    /// Migration cost not attributable to any block (policy-initiated
    /// reinstantiation migrations).
    pub unattributed_migration_time: f64,
    /// Move-blocks completed.
    pub blocks_completed: u64,
    /// Extra forwarding hops taken by messages that chased a moved object.
    pub forward_hops: u64,
    /// Calls that had to block on an in-transit object at least once.
    pub blocked_calls: u64,
    /// Distribution of migrated-closure sizes.
    pub closure_sizes: Histogram,
    /// Per-call communication-time samples (call duration plus the block's
    /// amortized migration and control overhead), feeding the stopping rule.
    pub samples: BatchMeans,
    /// Raw per-call durations (Fig. 10's quantity) as a distribution.
    pub call_durations: OnlineStats,
    /// Online 95th percentile of call durations — the tail the blocking on
    /// in-transit objects produces.
    pub call_p95: P2Quantile,
    /// Per-client communication-time distributions — the §2.4 "egoistic
    /// implementor" diagnostic: who wins and who pays under each policy.
    pub per_client_comm: Vec<OnlineStats>,
}

impl SimMetrics {
    /// Creates empty metrics with the given batch size for the stopping rule.
    #[must_use]
    pub fn new(batch_size: u64) -> Self {
        SimMetrics {
            calls: 0,
            total_call_time: 0.0,
            total_migration_time: 0.0,
            total_transfer_load: 0.0,
            total_control_time: 0.0,
            moves_issued: 0,
            moves_granted: 0,
            moves_denied: 0,
            migrations: 0,
            objects_migrated: 0,
            unattributed_migration_time: 0.0,
            blocks_completed: 0,
            forward_hops: 0,
            blocked_calls: 0,
            closure_sizes: Histogram::new(0.0, 32.0, 32),
            samples: BatchMeans::new(batch_size),
            call_durations: OnlineStats::new(),
            call_p95: P2Quantile::new(0.95),
            per_client_comm: Vec::new(),
        }
    }

    /// Resizes the per-client accumulators (called once at world build).
    pub fn init_clients(&mut self, clients: usize) {
        self.per_client_comm = vec![OnlineStats::new(); clients];
    }

    /// Mean communication time per call of one client, or 0 if it completed
    /// no calls.
    #[must_use]
    pub fn client_comm_time(&self, client: usize) -> f64 {
        self.per_client_comm
            .get(client)
            .map_or(0.0, OnlineStats::mean)
    }

    /// Jain's fairness index over the per-client mean communication times
    /// (1.0 = perfectly fair; 1/n = one client hogs everything). Clients
    /// with no calls are skipped.
    #[must_use]
    pub fn fairness_index(&self) -> f64 {
        let means: Vec<f64> = self
            .per_client_comm
            .iter()
            .filter(|s| s.count() > 0)
            .map(OnlineStats::mean)
            .collect();
        if means.is_empty() {
            return 1.0;
        }
        let sum: f64 = means.iter().sum();
        let sum_sq: f64 = means.iter().map(|m| m * m).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (means.len() as f64 * sum_sq)
    }

    /// Mean duration of one call (Fig. 10). Zero if no calls completed.
    #[must_use]
    pub fn call_time_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_call_time / self.calls as f64
        }
    }

    /// Mean migration time per call (Fig. 11). Zero if no calls completed.
    #[must_use]
    pub fn migration_time_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_migration_time / self.calls as f64
        }
    }

    /// Mean per-object transfer load per call (the §2.4 underestimation
    /// diagnostic; equals the migration time per call when closures are
    /// singletons).
    #[must_use]
    pub fn transfer_load_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_transfer_load / self.calls as f64
        }
    }

    /// The 95th-percentile call duration (0 if no calls completed).
    #[must_use]
    pub fn call_time_p95(&self) -> f64 {
        self.call_p95.value().unwrap_or(0.0)
    }

    /// Mean control-message (move/indication) time per call.
    #[must_use]
    pub fn control_time_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_control_time / self.calls as f64
        }
    }

    /// Mean communication time per call (Figs. 8, 12, 14, 16): call duration
    /// plus migration and control overhead evenly distributed over calls.
    #[must_use]
    pub fn comm_time_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            (self.total_call_time + self.total_migration_time + self.total_control_time)
                / self.calls as f64
        }
    }

    /// Fraction of move-requests that were denied.
    #[must_use]
    pub fn denial_rate(&self) -> f64 {
        if self.moves_issued == 0 {
            0.0
        } else {
            self.moves_denied as f64 / self.moves_issued as f64
        }
    }

    /// Mean number of objects dragged along per migration.
    #[must_use]
    pub fn mean_closure_size(&self) -> f64 {
        if self.migrations == 0 {
            0.0
        } else {
            self.objects_migrated as f64 / self.migrations as f64
        }
    }

    /// The confidence interval over the communication-time samples, if
    /// enough batches completed.
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> Option<ConfidenceInterval> {
        self.samples.confidence_interval(confidence)
    }

    /// Whether the stopping rule is satisfied on the sample stream.
    #[must_use]
    pub fn should_stop(&self, rule: &StoppingRule) -> bool {
        rule.should_stop(&self.samples)
    }
}

/// Final result of a run: the metrics plus bookkeeping about the run itself.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// All collected metrics.
    pub metrics: SimMetrics,
    /// Simulated time at which the run stopped.
    pub sim_time: f64,
    /// Events the engine delivered.
    pub events: u64,
    /// Whether the stopping rule's precision target was met (as opposed to
    /// hitting the sample or event cap).
    pub converged: bool,
}

/// A compact, serializable row for experiment tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsRow {
    /// Mean communication time per call (the headline metric).
    pub comm_time: f64,
    /// Mean duration of one call.
    pub call_time: f64,
    /// Mean migration time per call.
    pub migration_time: f64,
    /// Mean control time per call.
    pub control_time: f64,
    /// 99 % CI half-width of the communication time, if available.
    pub ci_half_width: Option<f64>,
    /// Calls observed.
    pub calls: u64,
    /// Denial rate.
    pub denial_rate: f64,
    /// Mean migrated-closure size.
    pub mean_closure: f64,
    /// Mean per-object transfer load per call (k·M amortized).
    pub transfer_load: f64,
    /// 95th-percentile call duration.
    pub call_p95: f64,
}

impl From<&SimMetrics> for MetricsRow {
    fn from(m: &SimMetrics) -> Self {
        MetricsRow {
            comm_time: m.comm_time_per_call(),
            call_time: m.call_time_per_call(),
            migration_time: m.migration_time_per_call(),
            control_time: m.control_time_per_call(),
            ci_half_width: m.confidence_interval(0.99).map(|ci| ci.half_width),
            calls: m.calls,
            denial_rate: m.denial_rate(),
            mean_closure: m.mean_closure_size(),
            transfer_load: m.transfer_load_per_call(),
            call_p95: m.call_time_p95(),
        }
    }
}

/// Order-sensitive merge of independent replications of one sweep point.
///
/// The parallel replication runner executes replications on worker threads
/// but **absorbs their outcomes in replication-index order**, so every
/// floating-point accumulation below happens in exactly the same sequence
/// at any thread count — the aggregate is bit-identical whether the
/// replications ran on one core or sixteen.
///
/// Counters and time totals add exactly. The communication-time batch means
/// merge exactly as well (each replication contributes whole batches; see
/// [`BatchMeans::merge`]). The only approximation is the 95th percentile:
/// P² markers cannot be merged, so the aggregate reports the call-weighted
/// mean of the per-replication p95 estimates — documented in DESIGN.md §13.
#[derive(Debug, Clone, Default)]
pub struct ReplicationAggregate {
    /// Replications absorbed so far.
    pub replications: u64,
    /// Events delivered across all replications.
    pub events: u64,
    /// Total simulated time across all replications (sum, not max).
    pub sim_time: f64,
    calls: u64,
    total_call_time: f64,
    total_migration_time: f64,
    total_control_time: f64,
    total_transfer_load: f64,
    moves_issued: u64,
    moves_denied: u64,
    migrations: u64,
    objects_migrated: u64,
    samples: Option<BatchMeans>,
    p95_call_weight: f64,
}

impl ReplicationAggregate {
    /// An empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        ReplicationAggregate::default()
    }

    /// Folds one replication's outcome into the aggregate.
    ///
    /// Call this in replication-index order (the runner does) — see the
    /// type docs for why the order is part of the reproducibility contract.
    ///
    /// # Panics
    ///
    /// Panics if replications used different batch sizes.
    pub fn absorb(&mut self, out: &SimOutcome) {
        let m = &out.metrics;
        self.replications += 1;
        self.events += out.events;
        self.sim_time += out.sim_time;
        self.calls += m.calls;
        self.total_call_time += m.total_call_time;
        self.total_migration_time += m.total_migration_time;
        self.total_control_time += m.total_control_time;
        self.total_transfer_load += m.total_transfer_load;
        self.moves_issued += m.moves_issued;
        self.moves_denied += m.moves_denied;
        self.migrations += m.migrations;
        self.objects_migrated += m.objects_migrated;
        self.p95_call_weight += m.call_time_p95() * m.calls as f64;
        match &mut self.samples {
            Some(samples) => samples.merge(&m.samples),
            None => self.samples = Some(m.samples.clone()),
        }
    }

    /// Total communication-time samples collected.
    #[must_use]
    pub fn sample_count(&self) -> u64 {
        self.samples.as_ref().map_or(0, BatchMeans::sample_count)
    }

    /// Calls completed across all replications.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// The merged batch-means estimator, once a replication was absorbed.
    #[must_use]
    pub fn samples(&self) -> Option<&BatchMeans> {
        self.samples.as_ref()
    }

    /// Confidence interval over the merged batch means.
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> Option<ConfidenceInterval> {
        self.samples
            .as_ref()
            .and_then(|s| s.confidence_interval(confidence))
    }

    /// Whether the stopping rule is satisfied on the merged sample stream.
    #[must_use]
    pub fn should_stop(&self, rule: &StoppingRule) -> bool {
        self.samples.as_ref().is_some_and(|s| rule.should_stop(s))
    }

    /// Whether the precision target itself was met (not just the caps).
    #[must_use]
    pub fn converged(&self, rule: &StoppingRule) -> bool {
        self.samples
            .as_ref()
            .and_then(|s| s.confidence_interval(rule.confidence))
            .is_some_and(|ci| {
                self.samples.as_ref().map_or(0, BatchMeans::batch_count) >= rule.min_batches
                    && ci.is_within(rule.relative_precision)
            })
    }

    /// The aggregate as a standard experiment-table row.
    #[must_use]
    pub fn row(&self) -> MetricsRow {
        let per_call = |total: f64| {
            if self.calls == 0 {
                0.0
            } else {
                total / self.calls as f64
            }
        };
        MetricsRow {
            comm_time: per_call(
                self.total_call_time + self.total_migration_time + self.total_control_time,
            ),
            call_time: per_call(self.total_call_time),
            migration_time: per_call(self.total_migration_time),
            control_time: per_call(self.total_control_time),
            ci_half_width: self.confidence_interval(0.99).map(|ci| ci.half_width),
            calls: self.calls,
            denial_rate: if self.moves_issued == 0 {
                0.0
            } else {
                self.moves_denied as f64 / self.moves_issued as f64
            },
            mean_closure: if self.migrations == 0 {
                0.0
            } else {
                self.objects_migrated as f64 / self.migrations as f64
            },
            transfer_load: per_call(self.total_transfer_load),
            // call-weighted mean of per-replication P² estimates (see docs)
            call_p95: per_call(self.p95_call_weight),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> SimMetrics {
        let mut m = SimMetrics::new(10);
        m.calls = 100;
        m.total_call_time = 120.0;
        m.total_migration_time = 60.0;
        m.total_transfer_load = 180.0;
        m.total_control_time = 20.0;
        m.moves_issued = 40;
        m.moves_granted = 30;
        m.moves_denied = 10;
        m.migrations = 30;
        m.objects_migrated = 90;
        m
    }

    #[test]
    fn per_call_means() {
        let m = populated();
        assert!((m.call_time_per_call() - 1.2).abs() < 1e-12);
        assert!((m.migration_time_per_call() - 0.6).abs() < 1e-12);
        assert!((m.transfer_load_per_call() - 1.8).abs() < 1e-12);
        assert!((m.control_time_per_call() - 0.2).abs() < 1e-12);
        assert!((m.comm_time_per_call() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comm_time_is_sum_of_components() {
        let m = populated();
        let sum = m.call_time_per_call() + m.migration_time_per_call() + m.control_time_per_call();
        assert!((m.comm_time_per_call() - sum).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = SimMetrics::new(10);
        assert_eq!(m.comm_time_per_call(), 0.0);
        assert_eq!(m.denial_rate(), 0.0);
        assert_eq!(m.mean_closure_size(), 0.0);
        assert!(m.confidence_interval(0.99).is_none());
    }

    #[test]
    fn rates_and_ratios() {
        let m = populated();
        assert!((m.denial_rate() - 0.25).abs() < 1e-12);
        assert!((m.mean_closure_size() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_conversion_matches() {
        let m = populated();
        let row = MetricsRow::from(&m);
        assert_eq!(row.calls, 100);
        assert!((row.comm_time - 2.0).abs() < 1e-12);
        assert!(row.ci_half_width.is_none());
    }

    #[test]
    fn stopping_rule_integrates_with_samples() {
        let mut m = SimMetrics::new(5);
        let rule = StoppingRule {
            relative_precision: 0.5,
            confidence: 0.95,
            min_batches: 2,
            max_samples: 1_000,
        };
        assert!(!m.should_stop(&rule));
        for _ in 0..20 {
            m.samples.push(1.0);
        }
        assert!(m.should_stop(&rule));
    }

    #[test]
    fn p95_tracks_the_call_duration_tail() {
        let mut m = SimMetrics::new(10);
        for i in 0..1_000 {
            m.call_p95.push(f64::from(i % 100));
        }
        let p95 = m.call_time_p95();
        assert!((90.0..100.0).contains(&p95), "{p95}");
    }

    #[test]
    fn p95_is_zero_without_calls() {
        assert_eq!(SimMetrics::new(10).call_time_p95(), 0.0);
    }

    #[test]
    fn fairness_index_detects_skew() {
        let mut m = SimMetrics::new(10);
        m.init_clients(3);
        for _ in 0..10 {
            m.per_client_comm[0].push(1.0);
            m.per_client_comm[1].push(1.0);
            m.per_client_comm[2].push(1.0);
        }
        assert!((m.fairness_index() - 1.0).abs() < 1e-12, "equal → fair");
        assert_eq!(m.client_comm_time(1), 1.0);

        let mut skewed = SimMetrics::new(10);
        skewed.init_clients(2);
        for _ in 0..10 {
            skewed.per_client_comm[0].push(0.1);
            skewed.per_client_comm[1].push(10.0);
        }
        assert!(skewed.fairness_index() < 0.6, "{}", skewed.fairness_index());
    }

    #[test]
    fn replication_aggregate_sums_counters_and_merges_samples() {
        let outcome = |seed: u64| {
            let mut m = populated();
            for i in 0..40 {
                m.samples.push((seed + i) as f64 % 7.0);
            }
            SimOutcome {
                metrics: m,
                sim_time: 50.0,
                events: 1_000,
                converged: false,
            }
        };
        let mut agg = ReplicationAggregate::new();
        agg.absorb(&outcome(0));
        agg.absorb(&outcome(3));
        assert_eq!(agg.replications, 2);
        assert_eq!(agg.events, 2_000);
        assert_eq!(agg.calls(), 200);
        assert_eq!(agg.sample_count(), 80);
        assert_eq!(agg.samples().unwrap().batch_count(), 8);
        let row = agg.row();
        assert_eq!(row.calls, 200);
        // per-call means are unchanged by doubling both numerator and denominator
        assert!((row.comm_time - 2.0).abs() < 1e-12);
        assert!((row.denial_rate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn replication_aggregate_absorb_order_is_the_contract() {
        // absorbing in index order must be reproducible run-to-run
        let make = |offset: f64| {
            let mut m = SimMetrics::new(5);
            m.calls = 10;
            for i in 0..15 {
                m.samples.push(offset + i as f64 * 0.37);
            }
            SimOutcome {
                metrics: m,
                sim_time: 1.0,
                events: 10,
                converged: false,
            }
        };
        let run = || {
            let mut agg = ReplicationAggregate::new();
            for i in 0..4 {
                agg.absorb(&make(i as f64));
            }
            agg.confidence_interval(0.99).unwrap().mean
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn fairness_index_skips_idle_clients() {
        let mut m = SimMetrics::new(10);
        m.init_clients(3);
        m.per_client_comm[0].push(2.0);
        // clients 1 and 2 never completed a call
        assert!((m.fairness_index() - 1.0).abs() < 1e-12);
        assert_eq!(m.client_comm_time(2), 0.0);
        // out-of-range client ids are benign
        assert_eq!(m.client_comm_time(99), 0.0);
    }
}
