//! Assembling and running simulations.

use oml_core::alliance::AllianceRegistry;
use oml_core::attach::{AttachOutcome, AttachmentGraph, AttachmentMode, ClosureScratch};
use oml_core::error::AttachError;
use oml_core::ids::{AllianceId, ClientId, NodeId, ObjectId};
use oml_core::object::{Mobility, ObjectDescriptor};
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_des::{Engine, SimRng, SimTime};
use oml_net::Network;

use crate::dense::{NodeObjectTable, ScanMap};
use crate::event::Event;
use crate::metrics::{SimMetrics, SimOutcome};
use crate::state::{BlockFlavor, BlockParams, ClientState, LocationMechanism, ObjectState};
use crate::world::World;

/// Fluent construction of a [`Simulation`].
///
/// # Example
///
/// ```
/// use oml_core::policy::PolicyKind;
/// use oml_core::attach::AttachmentMode;
/// use oml_des::stats::StoppingRule;
/// use oml_net::Network;
/// use oml_sim::{BlockParams, SimulationBuilder};
/// use oml_core::ids::NodeId;
///
/// let mut b = SimulationBuilder::new(Network::paper(3))
///     .policy(PolicyKind::TransientPlacement)
///     .seed(42)
///     .stopping(StoppingRule::quick());
/// let s1 = b.add_object(NodeId::new(1));
/// b.add_client(NodeId::new(0), vec![s1], BlockParams::paper(30.0));
/// let mut sim = b.build();
/// let outcome = sim.run();
/// assert!(outcome.metrics.calls > 0);
/// ```
#[derive(Debug)]
pub struct SimulationBuilder {
    network: Network,
    policy: PolicyKind,
    custom_policy: Option<Box<dyn oml_core::policy::MovePolicy>>,
    attachment_mode: AttachmentMode,
    migration_duration: f64,
    stopping: StoppingRule,
    warmup_time: f64,
    batch_size: u64,
    seed: u64,
    trace_capacity: Option<usize>,
    location_mechanism: LocationMechanism,
    alliances: AllianceRegistry,
    attachments: Option<AttachmentGraph>,
    objects: Vec<ObjectState>,
    clients: Vec<ClientState>,
}

impl SimulationBuilder {
    /// Starts a builder over the given network, with the paper's defaults:
    /// conventional migration policy, unrestricted attachment, `M = 6`,
    /// the 1 %/p=0.99 stopping rule, warm-up of 200 time units.
    #[must_use]
    pub fn new(network: Network) -> Self {
        SimulationBuilder {
            network,
            policy: PolicyKind::ConventionalMigration,
            custom_policy: None,
            attachment_mode: AttachmentMode::Unrestricted,
            migration_duration: 6.0,
            stopping: StoppingRule::paper(),
            warmup_time: 200.0,
            batch_size: 500,
            seed: 0,
            trace_capacity: None,
            location_mechanism: LocationMechanism::ImmediateUpdate,
            alliances: AllianceRegistry::new(),
            attachments: None,
            objects: Vec::new(),
            clients: Vec::new(),
        }
    }

    /// Sets the migration policy.
    #[must_use]
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self.custom_policy = None;
        self
    }

    /// Installs a user-defined migration policy instead of one of the
    /// built-ins — the [`oml_core::policy::MovePolicy`] trait is the
    /// extension point the paper's "building blocks for arbitrary control
    /// policies" (§2.3) map to.
    #[must_use]
    pub fn policy_custom(mut self, policy: impl oml_core::policy::MovePolicy + 'static) -> Self {
        self.custom_policy = Some(Box::new(policy));
        self
    }

    /// Sets the attachment semantics.
    ///
    /// # Panics
    ///
    /// Panics if called after the first [`SimulationBuilder::attach`] — the
    /// mode governs attach-time behaviour (exclusive rejection), so it must
    /// be fixed first.
    #[must_use]
    pub fn attachment_mode(mut self, mode: AttachmentMode) -> Self {
        assert!(
            self.attachments.is_none(),
            "attachment mode must be set before the first attach()"
        );
        self.attachment_mode = mode;
        self
    }

    /// Sets the base migration duration `M` (Table 1).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not finite and positive.
    #[must_use]
    pub fn migration_duration(mut self, m: f64) -> Self {
        assert!(
            m.is_finite() && m > 0.0,
            "migration duration must be positive"
        );
        self.migration_duration = m;
        self
    }

    /// Sets the stopping rule.
    #[must_use]
    pub fn stopping(mut self, rule: StoppingRule) -> Self {
        self.stopping = rule;
        self
    }

    /// Sets the simulated warm-up period excluded from all metrics.
    #[must_use]
    pub fn warmup(mut self, time: f64) -> Self {
        assert!(
            time.is_finite() && time >= 0.0,
            "warm-up must be non-negative"
        );
        self.warmup_time = time;
        self
    }

    /// Sets the batch size for the batch-means stopping rule.
    #[must_use]
    pub fn batch_size(mut self, size: u64) -> Self {
        assert!(size > 0, "batch size must be positive");
        self.batch_size = size;
        self
    }

    /// Seeds the random source; equal seeds give bit-identical runs.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the high-level run trace, keeping the last `capacity`
    /// records (block starts, grants/denials, migrations). Read it back
    /// with [`Simulation::trace`].
    #[must_use]
    pub fn trace(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        self.trace_capacity = Some(capacity);
        self
    }

    /// Selects how invocations locate moved objects (§4.1's alternatives;
    /// defaults to immediate update, the paper's effective model). The
    /// mechanism applies to invocation traffic; move-requests always use
    /// forwarding, as in the base model.
    ///
    /// # Panics
    ///
    /// Panics if a name-server node lies outside the network.
    #[must_use]
    pub fn location_mechanism(mut self, mechanism: LocationMechanism) -> Self {
        if let LocationMechanism::NameServer { node } = mechanism {
            assert!(
                self.network.topology().contains(node),
                "name-server node {node} outside the network"
            );
        }
        self.location_mechanism = mechanism;
        self
    }

    /// Adds a mobile server object installed at `node`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the network.
    pub fn add_object(&mut self, node: NodeId) -> ObjectId {
        assert!(
            self.network.topology().contains(node),
            "object home {node} outside the network"
        );
        let id = ObjectId::new(self.objects.len() as u32);
        self.objects
            .push(ObjectState::new(ObjectDescriptor::new(id, node)));
        id
    }

    /// Permanently fixes an object (type-level sedentariness, §2.2).
    ///
    /// # Panics
    ///
    /// Panics if `object` was not added.
    pub fn fix_object(&mut self, object: ObjectId) {
        self.objects[object.index()].descriptor.mobility = Mobility::Sedentary;
    }

    /// Sets an object's relative state size (its migration takes
    /// `M · factor`).
    pub fn set_size_factor(&mut self, object: ObjectId, factor: f64) {
        let d = std::mem::replace(
            &mut self.objects[object.index()].descriptor,
            ObjectDescriptor::new(object, NodeId::new(0)),
        );
        self.objects[object.index()].descriptor = d.with_size_factor(factor);
    }

    /// Declares the cooperation context in which moves of `object` are
    /// invoked (selects the A-transitive closure, §3.4).
    pub fn set_move_context(&mut self, object: ObjectId, context: Option<AllianceId>) {
        self.objects[object.index()].move_context = context;
    }

    /// Declares the second-layer working set `object` calls into (Fig. 7).
    ///
    /// # Panics
    ///
    /// Panics if any target does not exist or equals `object`.
    pub fn set_nested_targets(&mut self, object: ObjectId, targets: Vec<ObjectId>) {
        for &t in &targets {
            assert!(t.index() < self.objects.len(), "unknown nested target {t}");
            assert_ne!(t, object, "an object cannot call itself as second layer");
        }
        self.objects[object.index()].nested_targets = targets;
    }

    /// Creates an alliance.
    pub fn create_alliance(&mut self, name: &str) -> AllianceId {
        self.alliances.create(name)
    }

    /// Adds an object to an alliance.
    ///
    /// # Panics
    ///
    /// Panics on unknown alliances or duplicate joins (configuration bugs).
    pub fn join_alliance(&mut self, alliance: AllianceId, object: ObjectId) {
        self.alliances
            .join(alliance, object)
            .expect("invalid alliance configuration");
    }

    /// Attaches `object` to `to` in the given cooperation context, under the
    /// builder's attachment mode.
    ///
    /// # Errors
    ///
    /// Propagates [`AttachError`] (self-attachment, unknown alliance,
    /// non-member endpoints).
    pub fn attach(
        &mut self,
        object: ObjectId,
        to: ObjectId,
        context: Option<AllianceId>,
    ) -> Result<AttachOutcome, AttachError> {
        let graph = self
            .attachments
            .get_or_insert_with(|| AttachmentGraph::new(self.attachment_mode));
        graph.attach_checked(object, to, context, &self.alliances)
    }

    /// Adds a client pinned at `node` that issues move-blocks against the
    /// given servers; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the network, `servers` is empty, or a
    /// server does not exist.
    pub fn add_client(
        &mut self,
        node: NodeId,
        servers: Vec<ObjectId>,
        params: BlockParams,
    ) -> ClientId {
        self.add_client_with_flavor(node, servers, params, BlockFlavor::Move)
    }

    /// Like [`SimulationBuilder::add_client`] with an explicit block flavor
    /// (`move` vs `visit`).
    pub fn add_client_with_flavor(
        &mut self,
        node: NodeId,
        servers: Vec<ObjectId>,
        params: BlockParams,
        flavor: BlockFlavor,
    ) -> ClientId {
        assert!(
            self.network.topology().contains(node),
            "client node {node} outside the network"
        );
        assert!(!servers.is_empty(), "a client needs at least one server");
        for &s in &servers {
            assert!(s.index() < self.objects.len(), "unknown server {s}");
        }
        let id = ClientId::new(self.clients.len() as u32);
        self.clients.push(ClientState {
            id,
            node,
            servers,
            params,
            flavor,
            blocks_completed: 0,
        });
        id
    }

    /// Finalizes the world and returns a runnable [`Simulation`].
    ///
    /// # Panics
    ///
    /// Panics if no clients were added.
    #[must_use]
    pub fn build(self) -> Simulation {
        assert!(!self.clients.is_empty(), "a simulation needs clients");
        let rng = SimRng::seed_from(self.seed);
        let n_clients = self.clients.len();
        let mut metrics = SimMetrics::new(self.batch_size);
        metrics.init_clients(n_clients);
        let n_nodes = self.network.len() as usize;
        let n_objects = self.objects.len();

        let world = World {
            net: self.network,
            rng,
            policy: self.custom_policy.unwrap_or_else(|| self.policy.build()),
            attachments: self
                .attachments
                .unwrap_or_else(|| AttachmentGraph::new(self.attachment_mode)),
            objects: self.objects,
            clients: self.clients,
            blocks: ScanMap::new(),
            next_block: 0,
            calls: ScanMap::new(),
            next_call: 0,
            migrations: ScanMap::new(),
            next_migration: 0,
            migration_duration: self.migration_duration,
            warmup_time: self.warmup_time,
            metrics,
            stopping: self.stopping,
            trace: self.trace_capacity.map(oml_des::trace::TraceBuffer::new),
            location_mechanism: self.location_mechanism,
            location_cache: NodeObjectTable::new(n_nodes, n_objects),
            forward_pointers: NodeObjectTable::new(n_nodes, n_objects),
            closure_scratch: ClosureScratch::new(),
            mover_pool: Vec::new(),
        };
        let mut engine = Engine::new(world);
        // All clients start their first block at t = 0; the warm-up period
        // absorbs the synchronized-start transient.
        for i in 0..n_clients {
            engine.scheduler_mut().schedule_at(
                SimTime::ZERO,
                Event::BlockStart {
                    client: ClientId::new(i as u32),
                },
            );
        }
        Simulation { engine }
    }
}

/// A runnable simulation.
#[derive(Debug)]
pub struct Simulation {
    engine: Engine<World>,
}

impl Simulation {
    /// Runs until the stopping rule is satisfied (or, as a backstop, until an
    /// event budget proportional to the sample cap is exhausted) and returns
    /// the outcome.
    pub fn run(&mut self) -> SimOutcome {
        // Generous backstop: a call costs a handful of events; 64 events per
        // budgeted sample cannot starve a legitimate run.
        let budget = self
            .engine
            .handler()
            .stopping
            .max_samples
            .saturating_mul(64);
        // The stopping rule is a function of the sample stream alone, so its
        // verdict can only change when a sample lands. Most events deliver
        // none; re-evaluating the confidence interval on every event would
        // dominate the hot loop for nothing. Checking only when the count
        // moves stops at the *exact* same event as the naive predicate: while
        // the count is unchanged the verdict is the unchanged `false` (had it
        // been `true`, the run would already have stopped).
        let mut checked_at = u64::MAX;
        self.engine.run_while(budget, |world| {
            let n = world.metrics().samples.sample_count();
            if n == checked_at {
                return false;
            }
            checked_at = n;
            world.should_stop()
        });
        self.outcome()
    }

    /// Runs for `duration` units of simulated time (for deterministic
    /// tests).
    pub fn run_for(&mut self, duration: f64) -> SimOutcome {
        let deadline = self.engine.now() + duration;
        self.engine.run_until(deadline);
        self.outcome()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Metrics collected so far.
    #[must_use]
    pub fn metrics(&self) -> &SimMetrics {
        self.engine.handler().metrics()
    }

    /// The node an object is installed at (`None` while in transit).
    #[must_use]
    pub fn object_node(&self, object: ObjectId) -> Option<NodeId> {
        self.engine.handler().object_node(object)
    }

    /// The high-level run trace, if enabled with
    /// `SimulationBuilder::trace`.
    #[must_use]
    pub fn trace(&self) -> Option<&oml_des::trace::TraceBuffer<crate::event::TraceEvent>> {
        self.engine.handler().trace()
    }

    fn outcome(&self) -> SimOutcome {
        let world = self.engine.handler();
        let rule = &world.stopping;
        let converged = world
            .metrics()
            .confidence_interval(rule.confidence)
            .is_some_and(|ci| ci.is_within(rule.relative_precision));
        SimOutcome {
            metrics: world.metrics().clone(),
            sim_time: self.engine.now().as_f64(),
            events: self.engine.events_handled(),
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oml_net::{LatencyModel, Topology};

    fn deterministic_net(nodes: u32) -> Network {
        Network::new(
            Topology::FullMesh { nodes },
            LatencyModel::Deterministic { value: 1.0 },
        )
    }

    /// One sedentary client calling one remote server: every call costs
    /// exactly 2 (call + result message).
    #[test]
    fn sedentary_remote_calls_cost_two() {
        let mut b = SimulationBuilder::new(deterministic_net(2))
            .policy(PolicyKind::Sedentary)
            .warmup(0.0)
            .seed(1);
        let s = b.add_object(NodeId::new(1));
        b.add_client(
            NodeId::new(0),
            vec![s],
            BlockParams {
                mean_calls: 0.0, // exp(0) → 1 call per block
                mean_think: 0.0,
                mean_gap: 0.0,
            },
        );
        let mut sim = b.build();
        let out = sim.run_for(500.0);
        assert!(out.metrics.calls > 100);
        assert!((out.metrics.call_time_per_call() - 2.0).abs() < 1e-9);
        assert_eq!(out.metrics.migrations, 0);
        assert_eq!(out.metrics.moves_issued, 0);
        // object never moved
        assert_eq!(sim.object_node(s), Some(NodeId::new(1)));
    }

    /// A single mover under placement: the first block migrates the object
    /// (move message 1 + migration 6), after which everything is local and
    /// subsequent blocks lock in place for free.
    #[test]
    fn placement_single_client_migrates_once() {
        let mut b = SimulationBuilder::new(deterministic_net(2))
            .policy(PolicyKind::TransientPlacement)
            .warmup(0.0)
            .seed(2);
        let s = b.add_object(NodeId::new(1));
        b.add_client(
            NodeId::new(0),
            vec![s],
            BlockParams {
                mean_calls: 0.0,
                mean_think: 0.0,
                // nonzero: with all interactions local after the migration,
                // only the inter-block gap advances the clock
                mean_gap: 1.0,
            },
        );
        let mut sim = b.build();
        let out = sim.run_for(500.0);
        assert_eq!(out.metrics.migrations, 1);
        assert_eq!(sim.object_node(s), Some(NodeId::new(0)));
        // all calls were local after the first migration
        assert_eq!(out.metrics.call_time_per_call(), 0.0);
        // exactly one migration of one unit-size object
        assert!((out.metrics.total_migration_time - 6.0).abs() < 1e-9);
    }

    /// A visit-block migrates the object back after completion.
    #[test]
    fn visit_blocks_return_the_object() {
        let mut b = SimulationBuilder::new(deterministic_net(2))
            .policy(PolicyKind::ConventionalMigration)
            .warmup(0.0)
            .seed(3);
        let s = b.add_object(NodeId::new(1));
        b.add_client_with_flavor(
            NodeId::new(0),
            vec![s],
            BlockParams {
                mean_calls: 0.0,
                mean_think: 0.0,
                mean_gap: 1e12, // effectively one block
            },
            BlockFlavor::Visit,
        );
        let mut sim = b.build();
        let _ = sim.run_for(1e5);
        // after the single visit completed, the object is home again
        assert_eq!(sim.object_node(s), Some(NodeId::new(1)));
        assert_eq!(sim.metrics().migrations, 2); // there and back
    }

    /// Fixed objects never migrate; moves are denied.
    #[test]
    fn fixed_objects_stay_put() {
        let mut b = SimulationBuilder::new(deterministic_net(2))
            .policy(PolicyKind::ConventionalMigration)
            .warmup(0.0)
            .seed(4);
        let s = b.add_object(NodeId::new(1));
        b.fix_object(s);
        b.add_client(
            NodeId::new(0),
            vec![s],
            BlockParams {
                mean_calls: 0.0,
                mean_think: 0.0,
                mean_gap: 0.0,
            },
        );
        let mut sim = b.build();
        let out = sim.run_for(300.0);
        assert_eq!(out.metrics.migrations, 0);
        assert!(out.metrics.moves_denied > 0);
        assert_eq!(out.metrics.moves_granted, 0);
        assert_eq!(sim.object_node(s), Some(NodeId::new(1)));
        // denied blocks call remotely: 2 per call, plus move msg + denial
        assert!((out.metrics.call_time_per_call() - 2.0).abs() < 1e-9);
        assert!(out.metrics.control_time_per_call() > 0.0);
    }

    /// Nested (two-layer) calls accumulate the second-layer legs.
    #[test]
    fn nested_calls_add_legs() {
        let mut b = SimulationBuilder::new(deterministic_net(3))
            .policy(PolicyKind::Sedentary)
            .warmup(0.0)
            .seed(5);
        let s1 = b.add_object(NodeId::new(1));
        let s2 = b.add_object(NodeId::new(2));
        b.set_nested_targets(s1, vec![s2]);
        b.add_client(
            NodeId::new(0),
            vec![s1],
            BlockParams {
                mean_calls: 0.0,
                mean_think: 0.0,
                mean_gap: 0.0,
            },
        );
        let mut sim = b.build();
        let out = sim.run_for(300.0);
        // client→s1 (1) + s1→s2 (1) + s2→s1 (1) + s1→client (1) = 4
        assert!((out.metrics.call_time_per_call() - 4.0).abs() < 1e-9);
    }

    /// Attached objects migrate together (unrestricted closure).
    #[test]
    fn attached_objects_travel_together() {
        let mut b = SimulationBuilder::new(deterministic_net(3))
            .policy(PolicyKind::ConventionalMigration)
            .warmup(0.0)
            .seed(6);
        let s1 = b.add_object(NodeId::new(1));
        let s2 = b.add_object(NodeId::new(2));
        b.attach(s2, s1, None).unwrap();
        b.add_client(
            NodeId::new(0),
            vec![s1],
            BlockParams {
                mean_calls: 0.0,
                mean_think: 0.0,
                mean_gap: 1e12,
            },
        );
        let mut sim = b.build();
        let _ = sim.run_for(1e5);
        assert_eq!(sim.object_node(s1), Some(NodeId::new(0)));
        assert_eq!(sim.object_node(s2), Some(NodeId::new(0)));
        let m = sim.metrics();
        assert_eq!(m.migrations, 1);
        assert_eq!(m.objects_migrated, 2);
        // both objects travel in parallel: one M of latency…
        assert!((m.total_migration_time - 6.0).abs() < 1e-9);
        // …but two objects' worth of transfer work (the §2.4 diagnostic)
        assert!((m.total_transfer_load - 12.0).abs() < 1e-9);
    }

    /// Same-seed runs are bit-identical; different seeds are not.
    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut b = SimulationBuilder::new(Network::paper(3))
                .policy(PolicyKind::TransientPlacement)
                .warmup(0.0)
                .seed(seed);
            let s: Vec<ObjectId> = (0..3).map(|i| b.add_object(NodeId::new(i))).collect();
            for i in 0..3 {
                b.add_client(NodeId::new(i), s.clone(), BlockParams::paper(5.0));
            }
            let mut sim = b.build();
            let out = sim.run_for(2_000.0);
            (out.metrics.calls, out.metrics.comm_time_per_call())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// Under placement contention, every decision is accounted for and no
    /// object is ever lost.
    #[test]
    fn contention_conserves_objects_and_decisions() {
        let mut b = SimulationBuilder::new(Network::paper(3))
            .policy(PolicyKind::TransientPlacement)
            .warmup(0.0)
            .seed(31);
        let servers: Vec<ObjectId> = (0..3).map(|i| b.add_object(NodeId::new(i))).collect();
        for i in 0..3 {
            b.add_client(NodeId::new(i), servers.clone(), BlockParams::paper(2.0));
        }
        let mut sim = b.build();
        let out = sim.run_for(5_000.0);
        let m = &out.metrics;
        assert!(m.moves_issued > 100);
        assert!(m.moves_denied > 0, "contention must cause denials");
        // at most the in-flight requests are undecided
        assert!(m.moves_granted + m.moves_denied <= m.moves_issued);
        assert!(m.moves_granted + m.moves_denied >= m.moves_issued.saturating_sub(16));
        // objects still exist (installed or in transit)
        for &s in &servers {
            // object_node() is None only while in transit, which is fine
            let _ = sim.object_node(s);
        }
        // per-client accounting sums to the global call count
        let per_client: u64 = m
            .per_client_comm
            .iter()
            .map(oml_des::stats::OnlineStats::count)
            .sum();
        assert_eq!(per_client, m.calls);
    }

    /// Conventional migration under contention steals objects mid-block,
    /// which must show up as blocked calls and forwarded messages.
    #[test]
    fn conventional_contention_blocks_and_forwards() {
        let mut b = SimulationBuilder::new(Network::paper(3))
            .policy(PolicyKind::ConventionalMigration)
            .warmup(0.0)
            .seed(32);
        let s = b.add_object(NodeId::new(2));
        for i in 0..3 {
            b.add_client(NodeId::new(i), vec![s], BlockParams::paper(1.0));
        }
        let mut sim = b.build();
        let out = sim.run_for(5_000.0);
        assert!(out.metrics.blocked_calls > 0, "steals must block callers");
        assert!(
            out.metrics.forward_hops > 0,
            "messages must chase the object"
        );
        assert_eq!(out.metrics.moves_denied, 0);
    }

    /// The trace records the decision flow in order.
    #[test]
    fn trace_records_the_decision_flow() {
        let mut b = SimulationBuilder::new(deterministic_net(2))
            .policy(PolicyKind::TransientPlacement)
            .warmup(0.0)
            .trace(64)
            .seed(40);
        let s = b.add_object(NodeId::new(1));
        b.add_client(
            NodeId::new(0),
            vec![s],
            BlockParams {
                mean_calls: 0.0,
                mean_think: 0.0,
                mean_gap: 1e12,
            },
        );
        let mut sim = b.build();
        let _ = sim.run_for(1e5);
        let trace = sim.trace().expect("trace enabled");
        let rendered = trace.render();
        assert!(rendered.contains("starts a block"), "{rendered}");
        assert!(rendered.contains("granted"), "{rendered}");
        assert!(rendered.contains("departs"), "{rendered}");
        assert!(rendered.contains("lands"), "{rendered}");
        assert!(rendered.contains("finishes"), "{rendered}");
        // ordering: the grant precedes the landing precedes the finish
        let pos = |needle: &str| rendered.find(needle).unwrap();
        assert!(pos("granted") < pos("lands"));
        assert!(pos("lands") < pos("finishes"));
    }

    #[test]
    fn trace_is_absent_unless_enabled() {
        let mut b = SimulationBuilder::new(deterministic_net(2))
            .warmup(0.0)
            .seed(1);
        let s = b.add_object(NodeId::new(1));
        b.add_client(NodeId::new(0), vec![s], BlockParams::paper(10.0));
        let sim = b.build();
        assert!(sim.trace().is_none());
    }

    /// Under conventional contention, every location mechanism keeps the
    /// system running and produces comparable results; forwarding recovery
    /// traffic appears for the cache-based mechanisms.
    #[test]
    fn location_mechanisms_all_work_under_contention() {
        let run = |mech: LocationMechanism| {
            let mut b = SimulationBuilder::new(Network::paper(3))
                .policy(PolicyKind::ConventionalMigration)
                .location_mechanism(mech)
                .warmup(100.0)
                .seed(77);
            let s = b.add_object(NodeId::new(2));
            for i in 0..3 {
                b.add_client(NodeId::new(i), vec![s], BlockParams::paper(3.0));
            }
            let mut sim = b.build();
            let out = sim.run_for(8_000.0);
            assert!(out.metrics.calls > 500, "{mech:?}");
            out.metrics
        };
        let immediate = run(LocationMechanism::ImmediateUpdate);
        let forwarding = run(LocationMechanism::ForwardAddressing);
        let ns = run(LocationMechanism::NameServer {
            node: NodeId::new(0),
        });
        let bc = run(LocationMechanism::Broadcast);

        // cache-based mechanisms chase moved objects
        assert!(forwarding.forward_hops > 0);
        assert!(ns.forward_hops > 0);
        assert!(bc.forward_hops > 0);

        // and the headline metric stays in the same ballpark (§4.1's
        // justification for neglecting the difference)
        let base = immediate.comm_time_per_call();
        for (label, m) in [("fwd", &forwarding), ("ns", &ns), ("bc", &bc)] {
            let v = m.comm_time_per_call();
            assert!((v - base).abs() / base < 0.35, "{label}: {v} vs {base}");
        }
    }

    /// With a single client the cache converges and stale deliveries stop:
    /// forwarding behaves exactly like immediate update in the steady state.
    #[test]
    fn forwarding_cache_converges_without_contention() {
        let mut b = SimulationBuilder::new(deterministic_net(2))
            .policy(PolicyKind::TransientPlacement)
            .location_mechanism(LocationMechanism::ForwardAddressing)
            .warmup(0.0)
            .seed(78);
        let s = b.add_object(NodeId::new(1));
        b.add_client(
            NodeId::new(0),
            vec![s],
            BlockParams {
                mean_calls: 0.0,
                mean_think: 0.0,
                mean_gap: 1.0,
            },
        );
        let mut sim = b.build();
        let out = sim.run_for(1_000.0);
        // after the single migration the object is local; at most one stale
        // delivery can ever have happened
        assert!(
            out.metrics.forward_hops <= 1,
            "{}",
            out.metrics.forward_hops
        );
        // only the single stale first call ever paid messages
        assert!(out.metrics.total_call_time <= 2.0 + 1e-9);
    }

    /// Reinstantiation migrations (policy-initiated, §4.3) happen and are
    /// accounted as unattributed migration time.
    #[test]
    fn reinstantiation_produces_unattributed_migrations() {
        let mut b = SimulationBuilder::new(Network::paper(3))
            .policy(PolicyKind::CompareAndReinstantiate)
            .warmup(100.0)
            .seed(81);
        let s = b.add_object(NodeId::new(2));
        // two clients per node: clear majorities form regularly
        for i in 0..6 {
            b.add_client(NodeId::new(i % 3), vec![s], BlockParams::paper(4.0));
        }
        let mut sim = b.build();
        let out = sim.run_for(20_000.0);
        assert!(
            out.metrics.unattributed_migration_time > 0.0,
            "end-request majorities should trigger reinstantiation"
        );
        assert!(out.metrics.moves_denied > 0);
    }

    /// A custom policy drives the same machinery as the built-ins.
    #[test]
    fn custom_policy_runs_through_the_builder() {
        use oml_core::policies::CooldownFixing;
        let mut b = SimulationBuilder::new(Network::paper(3))
            .policy_custom(CooldownFixing::new(2))
            .warmup(100.0)
            .seed(82);
        let s = b.add_object(NodeId::new(2));
        for i in 0..3 {
            b.add_client(NodeId::new(i), vec![s], BlockParams::paper(4.0));
        }
        let mut sim = b.build();
        let out = sim.run_for(10_000.0);
        assert!(out.metrics.moves_denied > 0, "cooldown denies conflicts");
        assert!(out.metrics.moves_granted > 0);
    }

    #[test]
    #[should_panic(expected = "name-server node")]
    fn name_server_outside_network_rejected() {
        let _ = SimulationBuilder::new(Network::paper(2)).location_mechanism(
            LocationMechanism::NameServer {
                node: NodeId::new(7),
            },
        );
    }

    #[test]
    #[should_panic(expected = "needs at least one server")]
    fn client_without_servers_rejected() {
        let mut b = SimulationBuilder::new(Network::paper(2));
        b.add_client(NodeId::new(0), vec![], BlockParams::paper(1.0));
    }

    #[test]
    #[should_panic(expected = "outside the network")]
    fn object_outside_network_rejected() {
        let mut b = SimulationBuilder::new(Network::paper(2));
        let _ = b.add_object(NodeId::new(5));
    }

    #[test]
    #[should_panic(expected = "needs clients")]
    fn build_without_clients_rejected() {
        let _ = SimulationBuilder::new(Network::paper(2)).build();
    }

    #[test]
    #[should_panic(expected = "attachment mode must be set before")]
    fn late_attachment_mode_change_rejected() {
        let mut b = SimulationBuilder::new(Network::paper(2));
        let a = b.add_object(NodeId::new(0));
        let c = b.add_object(NodeId::new(1));
        b.attach(a, c, None).unwrap();
        let _ = b.attachment_mode(AttachmentMode::Exclusive);
    }
}
