//! Dense, deterministic replacements for the world's hot-path hash maps.
//!
//! The simulator's bookkeeping maps share two properties that make a general
//! `HashMap` the wrong tool: the live entry count is tiny (bounded by the
//! number of clients — each client drives at most one move-block, call chain
//! and triggered migration at a time), and determinism forbids any
//! iteration-order dependence. [`ScanMap`] is a linear-scan association list
//! with `swap_remove` deletion: inserts and removals never allocate once the
//! backing `Vec` has reached steady-state capacity, and a scan over a handful
//! of entries beats hashing on every access. [`NodeObjectTable`] is the
//! node×object matrix behind the location caches: both dimensions are fixed
//! at build time, so a flat `Vec` lookup replaces hashing a `(NodeId,
//! ObjectId)` pair entirely.

use oml_core::ids::{NodeId, ObjectId};

/// A small association list keyed by a `Copy` key.
///
/// All operations are O(live entries); the world keeps live counts bounded by
/// the client count, where a scan is faster than any hash. Iteration order is
/// insertion-plus-`swap_remove` order and is therefore deterministic — but no
/// caller iterates; the map is only ever probed by key.
#[derive(Debug, Clone, Default)]
pub(crate) struct ScanMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Copy + Eq, V> ScanMap<K, V> {
    pub(crate) fn new() -> Self {
        ScanMap {
            entries: Vec::new(),
        }
    }

    /// Inserts a fresh entry. Keys are monotonically allocated by the world
    /// and never reused, so the entry must not already exist.
    pub(crate) fn insert(&mut self, key: K, value: V) {
        debug_assert!(!self.entries.iter().any(|(k, _)| *k == key));
        self.entries.push((key, value));
    }

    pub(crate) fn get(&self, key: K) -> Option<&V> {
        self.entries
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub(crate) fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.entries
            .iter_mut()
            .find(|&&mut (k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub(crate) fn remove(&mut self, key: K) -> Option<V> {
        let i = self.entries.iter().position(|&(k, _)| k == key)?;
        Some(self.entries.swap_remove(i).1)
    }
}

impl<K: Copy + Eq, V> std::ops::Index<K> for ScanMap<K, V> {
    type Output = V;

    fn index(&self, key: K) -> &V {
        self.get(key).expect("key present in ScanMap")
    }
}

/// Raw `NodeId` sentinel for "no entry".
const EMPTY: u32 = u32::MAX;

/// A node×object matrix of optional node ids, O(1) lookup with no hashing.
///
/// Backs the per-node location caches and the forwarding-pointer table; both
/// dimensions are known when the world is built and never grow afterwards.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeObjectTable {
    objects: usize,
    data: Vec<u32>,
}

impl NodeObjectTable {
    pub(crate) fn new(nodes: usize, objects: usize) -> Self {
        NodeObjectTable {
            objects,
            data: vec![EMPTY; nodes * objects],
        }
    }

    fn idx(&self, node: NodeId, object: ObjectId) -> usize {
        debug_assert!(object.index() < self.objects);
        node.index() * self.objects + object.index()
    }

    pub(crate) fn get(&self, node: NodeId, object: ObjectId) -> Option<NodeId> {
        match self.data[self.idx(node, object)] {
            EMPTY => None,
            raw => Some(NodeId::new(raw)),
        }
    }

    pub(crate) fn set(&mut self, node: NodeId, object: ObjectId, value: NodeId) {
        let i = self.idx(node, object);
        self.data[i] = value.as_u32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_map_behaves_like_a_map() {
        let mut m: ScanMap<u64, &str> = ScanMap::new();
        m.insert(1, "a");
        m.insert(9, "b");
        m.insert(4, "c");
        assert_eq!(m.get(9), Some(&"b"));
        assert_eq!(m[4], "c");
        *m.get_mut(1).unwrap() = "z";
        assert_eq!(m.remove(1), Some("z"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(4), Some(&"c"));
    }

    #[test]
    fn node_object_table_round_trips() {
        let mut t = NodeObjectTable::new(3, 4);
        let (n0, n2) = (NodeId::new(0), NodeId::new(2));
        let o = ObjectId::new(3);
        assert_eq!(t.get(n0, o), None);
        t.set(n0, o, n2);
        assert_eq!(t.get(n0, o), Some(n2));
        t.set(n0, o, n0);
        assert_eq!(t.get(n0, o), Some(n0));
        assert_eq!(t.get(n2, o), None);
    }
}
