//! Mutable state of objects, clients, move-blocks, calls and migrations.

use crate::event::Leg;
use oml_core::ids::{AllianceId, BlockId, ClientId, NodeId, ObjectId};
use oml_core::object::ObjectDescriptor;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Where an object currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Installed and operational at a node.
    At(NodeId),
    /// Linearized and on the wire: "an object that is linearized and
    /// transferred over the net can not perform any operation until it is
    /// reinstalled at the target node" (§4.1).
    InTransit {
        /// Destination node.
        to: NodeId,
        /// The migration carrying it.
        migration: u64,
    },
}

impl Location {
    /// The node the object is installed at, or `None` while in transit.
    #[must_use]
    pub fn node(self) -> Option<NodeId> {
        match self {
            Location::At(n) => Some(n),
            Location::InTransit { .. } => None,
        }
    }
}

/// A call waiting for an in-transit object.
#[derive(Debug, Clone, Copy)]
pub struct BlockedCall {
    /// Dense call index.
    pub call: u64,
    /// Which leg was trying to reach the object.
    pub leg: Leg,
    /// The node the message was waiting at.
    pub from: NodeId,
}

/// An end-request that reached an in-transit object and waits for landing.
#[derive(Debug, Clone, Copy)]
pub struct QueuedEnd {
    /// The ending block.
    pub block: BlockId,
    /// The ending block's node.
    pub from: NodeId,
    /// Whether that block's move had been granted.
    pub was_granted: bool,
}

/// Dynamic state of one object.
#[derive(Debug)]
pub struct ObjectState {
    /// Static properties.
    pub descriptor: ObjectDescriptor,
    /// Current location.
    pub location: Location,
    /// The cooperation context in which moves of this object are invoked
    /// (determines the A-transitive closure, §3.4).
    pub move_context: Option<AllianceId>,
    /// Second-layer working set this object calls into (Fig. 7); empty for
    /// leaf servers.
    pub nested_targets: Vec<ObjectId>,
    /// Move-requests that arrived while the object was in transit.
    pub queued_moves: VecDeque<BlockId>,
    /// End-requests that arrived while the object was in transit.
    pub queued_ends: Vec<QueuedEnd>,
    /// Calls blocked on the transit.
    pub blocked_calls: Vec<BlockedCall>,
}

impl ObjectState {
    /// Creates the state for a freshly installed object.
    #[must_use]
    pub fn new(descriptor: ObjectDescriptor) -> Self {
        let home = descriptor.home;
        ObjectState {
            descriptor,
            location: Location::At(home),
            move_context: None,
            nested_targets: Vec::new(),
            queued_moves: VecDeque::new(),
            queued_ends: Vec::new(),
            blocked_calls: Vec::new(),
        }
    }

    /// The node the object is installed at, if not in transit.
    #[must_use]
    pub fn node(&self) -> Option<NodeId> {
        self.location.node()
    }
}

/// Workload parameters of one client (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockParams {
    /// Mean number of calls in a move-block (`N`, exponentially distributed,
    /// at least 1 per block).
    pub mean_calls: f64,
    /// Mean time between two calls in a block (`t_i`).
    pub mean_think: f64,
    /// Mean time between two move-blocks (`t_m`).
    pub mean_gap: f64,
}

impl BlockParams {
    /// The parameter set shared by Figs. 8–14: `N ~ exp(8)`, `t_i ~ exp(1)`.
    #[must_use]
    pub fn paper(mean_gap: f64) -> Self {
        BlockParams {
            mean_calls: 8.0,
            mean_think: 1.0,
            mean_gap,
        }
    }
}

/// How invocations find a moved object (§4.1 cites four alternatives whose
/// "effects … we neglected"; this makes the claim testable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LocationMechanism {
    /// Every sender always knows the current location — location updates
    /// propagate immediately (\[Dec86\]'s distributed object manager). The
    /// paper's effective model; the default.
    #[default]
    ImmediateUpdate,
    /// Senders use a per-node location cache; a message arriving where the
    /// object used to be follows the chain of forwarding pointers the
    /// object left behind (\[JLH+88\], Emerald).
    ForwardAddressing,
    /// A stale delivery asks a dedicated name-server node for the current
    /// location and is re-sent there (\[ChC91\]): two extra messages per
    /// recovery.
    NameServer {
        /// The node hosting the name server.
        node: NodeId,
    },
    /// A stale delivery broadcasts a location query; the owner answers and
    /// the message is re-sent (\[DLA+91\], Clouds): two extra message
    /// latencies per recovery.
    Broadcast,
}

/// Whether a block migrates the object back when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BlockFlavor {
    /// `move`: a one-way migration tied to the block (the figures use this).
    #[default]
    Move,
    /// `visit`: "the combination of a move and a migrate back" (§2.3).
    Visit,
}

/// Dynamic state of one client.
#[derive(Debug)]
pub struct ClientState {
    /// The client's identity.
    pub id: ClientId,
    /// The node the client is pinned to (clients are sedentary, §4.1).
    pub node: NodeId,
    /// First-layer servers this client uses (one is picked per block).
    pub servers: Vec<ObjectId>,
    /// Workload parameters.
    pub params: BlockParams,
    /// Block flavor issued by this client.
    pub flavor: BlockFlavor,
    /// Blocks completed so far.
    pub blocks_completed: u64,
}

/// Dynamic state of one move-block.
#[derive(Debug)]
pub struct BlockState {
    /// The block's identity.
    pub id: BlockId,
    /// The issuing client.
    pub client: ClientId,
    /// The client's node.
    pub client_node: NodeId,
    /// The first-layer server the block works on.
    pub target: ObjectId,
    /// Number of calls this block will perform.
    pub n_calls: u64,
    /// Calls completed so far.
    pub calls_done: u64,
    /// Whether the move was granted (`None` until the outcome arrives;
    /// sedentary blocks are `Some(false)` from the start).
    pub granted: Option<bool>,
    /// Whether a move-request was issued at all.
    pub issued_move: bool,
    /// Where the object was installed before this block's migration (for
    /// `visit` blocks' migrate-back).
    pub origin_node: Option<NodeId>,
    /// Migration cost attributed to this block (`M · size` per object the
    /// block's move dragged along).
    pub migration_cost: f64,
    /// Control-message time (move-request and denial indication) the block
    /// spent.
    pub control_cost: f64,
    /// Durations of the block's completed calls.
    pub call_durations: Vec<f64>,
}

impl BlockState {
    /// Creates a pending block.
    #[must_use]
    pub fn new(
        id: BlockId,
        client: ClientId,
        client_node: NodeId,
        target: ObjectId,
        n_calls: u64,
    ) -> Self {
        BlockState {
            id,
            client,
            client_node,
            target,
            n_calls,
            calls_done: 0,
            granted: None,
            issued_move: false,
            origin_node: None,
            migration_cost: 0.0,
            control_cost: 0.0,
            call_durations: Vec::with_capacity(n_calls as usize),
        }
    }
}

/// Dynamic state of one in-flight invocation.
#[derive(Debug)]
pub struct CallState {
    /// The issuing block.
    pub block: BlockId,
    /// The client's node (where the result must return to).
    pub client_node: NodeId,
    /// The first-layer callee.
    pub target: ObjectId,
    /// The second-layer callee chosen for this invocation, if any.
    pub nested: Option<ObjectId>,
    /// When the call was issued.
    pub issued_at: f64,
    /// Where the first-layer execution happened (return address for the
    /// nested result).
    pub exec_node: Option<NodeId>,
    /// Whether this call ever blocked on an in-transit object.
    pub ever_blocked: bool,
}

/// One migration in progress.
#[derive(Debug)]
pub struct MigrationState {
    /// The named object the move-request was about.
    pub main: ObjectId,
    /// Objects actually in transit (movable closure members not already at
    /// the destination).
    pub movers: Vec<ObjectId>,
    /// Destination node.
    pub to: NodeId,
    /// The block whose granted move caused this migration (`None` for
    /// policy-initiated reinstantiation).
    pub block: Option<BlockId>,
    /// Total migration cost (`Σ M · size_factor`).
    pub cost: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_node_extraction() {
        assert_eq!(Location::At(NodeId::new(3)).node(), Some(NodeId::new(3)));
        assert_eq!(
            Location::InTransit {
                to: NodeId::new(1),
                migration: 0
            }
            .node(),
            None
        );
    }

    #[test]
    fn object_state_starts_at_home() {
        let d = ObjectDescriptor::new(ObjectId::new(0), NodeId::new(5));
        let s = ObjectState::new(d);
        assert_eq!(s.node(), Some(NodeId::new(5)));
        assert!(s.queued_moves.is_empty());
        assert!(s.blocked_calls.is_empty());
    }

    #[test]
    fn paper_params() {
        let p = BlockParams::paper(30.0);
        assert_eq!(p.mean_calls, 8.0);
        assert_eq!(p.mean_think, 1.0);
        assert_eq!(p.mean_gap, 30.0);
    }

    #[test]
    fn block_state_initialization() {
        let b = BlockState::new(
            BlockId::new(1),
            ClientId::new(2),
            NodeId::new(3),
            ObjectId::new(4),
            7,
        );
        assert_eq!(b.n_calls, 7);
        assert_eq!(b.calls_done, 0);
        assert!(b.granted.is_none());
        assert!(!b.issued_move);
    }

    #[test]
    fn default_flavor_is_move() {
        assert_eq!(BlockFlavor::default(), BlockFlavor::Move);
    }
}
