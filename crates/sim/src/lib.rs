//! # oml-sim — discrete-event simulator of the paper's §4 model
//!
//! A faithful enactment of the simulation model in *Object Migration in
//! Non-Monolithic Distributed Applications* (§4.1):
//!
//! * sedentary **clients** issue move-blocks against mobile **servers**,
//! * move-requests are trapped and interpreted *at the object's node* by a
//!   pluggable [`oml_core::policy::MovePolicy`],
//! * remote messages cost Exp(1) time, local interactions are free,
//! * migrations keep objects in transit for `M · size`, blocking callers,
//! * attachments drag their (mode-dependent) closure along,
//! * runs stop when the 99 % confidence interval of the mean communication
//!   time per call is within 1 % (configurable via
//!   [`oml_des::stats::StoppingRule`]).
//!
//! Build worlds with [`SimulationBuilder`], run them with [`Simulation`],
//! read results from [`metrics::SimMetrics`].
//!
//! # Example: the paper's conflict, quantified
//!
//! ```
//! use oml_core::ids::NodeId;
//! use oml_core::policy::PolicyKind;
//! use oml_des::stats::StoppingRule;
//! use oml_net::Network;
//! use oml_sim::{BlockParams, SimulationBuilder};
//!
//! let run = |policy| {
//!     let mut b = SimulationBuilder::new(Network::paper(3))
//!         .policy(policy)
//!         .stopping(StoppingRule::quick())
//!         .seed(7);
//!     let servers: Vec<_> = (0..3).map(|i| b.add_object(NodeId::new(i))).collect();
//!     for i in 0..3 {
//!         // three clients hammering the same servers with little pause
//!         b.add_client(NodeId::new(i), servers.clone(), BlockParams::paper(5.0));
//!     }
//!     b.build().run().metrics.comm_time_per_call()
//! };
//!
//! let conventional = run(PolicyKind::ConventionalMigration);
//! let placement = run(PolicyKind::TransientPlacement);
//! // under contention, transient placement beats conventional migration
//! assert!(placement < conventional);
//! ```

#![warn(clippy::pedantic)]
// the §4 model mixes simulated time, counts and float metrics; casts are
// inherent, the rest are deliberate style choices
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::elidable_lifetime_names,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::manual_midpoint,
    clippy::missing_panics_doc,
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    clippy::unreadable_literal,
    clippy::wildcard_imports
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod world;

pub(crate) mod dense;
pub mod event;
pub mod metrics;
pub mod state;

pub use builder::{Simulation, SimulationBuilder};
pub use state::{BlockFlavor, BlockParams, Location, LocationMechanism};
pub use world::World;
