//! The event vocabulary of the simulator.

use oml_core::ids::{BlockId, ClientId, NodeId};

/// Which leg of a (possibly nested) invocation a message belongs to.
///
/// Each synchronous invocation "dynamically creates a client–server
/// relationship" (§4.1); in the two-layer structure of Fig. 7 a call to a
/// first-layer server triggers one call into its second-layer working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Client → first-layer server.
    Target,
    /// First-layer server → second-layer server.
    Nested,
}

/// A high-level observable action, recorded in the optional run trace.
///
/// Distinct from [`Event`] (the engine's internal schedule entries): trace
/// records describe *decisions and completions*, the level a person debugs
/// policies at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A client began a move-block against an object.
    BlockStarted {
        /// The issuing client.
        client: ClientId,
        /// The target object.
        object: oml_core::ids::ObjectId,
    },
    /// A move-request was granted.
    MoveGranted {
        /// The requesting block.
        block: BlockId,
    },
    /// A move-request was denied.
    MoveDenied {
        /// The requesting block.
        block: BlockId,
    },
    /// A migration departed towards a node with the given closure size.
    MigrationStarted {
        /// Destination node.
        to: NodeId,
        /// Number of objects in transit.
        movers: usize,
    },
    /// A migration landed.
    MigrationLanded {
        /// Destination node.
        to: NodeId,
    },
    /// A move-block completed all its calls.
    BlockFinished {
        /// The completed block.
        block: BlockId,
    },
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::BlockStarted { client, object } => {
                write!(f, "{client} starts a block on {object}")
            }
            TraceEvent::MoveGranted { block } => write!(f, "move of {block} granted"),
            TraceEvent::MoveDenied { block } => write!(f, "move of {block} denied"),
            TraceEvent::MigrationStarted { to, movers } => {
                write!(f, "migration of {movers} object(s) to {to} departs")
            }
            TraceEvent::MigrationLanded { to } => write!(f, "migration lands at {to}"),
            TraceEvent::BlockFinished { block } => write!(f, "{block} finishes"),
        }
    }
}

/// Everything that can happen in the simulated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A client's inter-block gap (`t_m`) elapsed: begin the next move-block.
    BlockStart {
        /// The client starting a block.
        client: ClientId,
    },
    /// A move-request message reaches `node` (where the object was when the
    /// message was sent or last forwarded).
    MoveMsgArrive {
        /// The requesting block.
        block: BlockId,
        /// The node the message was addressed to.
        node: NodeId,
    },
    /// The move outcome (arrival of the object, or a denial indication)
    /// reaches the requesting client.
    MoveOutcome {
        /// The requesting block.
        block: BlockId,
        /// Whether the move was granted.
        granted: bool,
    },
    /// A migration completes: all objects in transit under it are
    /// reinstalled at the destination.
    MigrationLand {
        /// Dense migration index.
        migration: u64,
    },
    /// A block's think time (`t_i`) elapsed: issue the next invocation.
    NextCall {
        /// The block issuing the call.
        block: BlockId,
    },
    /// A call message reaches `node` (where the callee was when the message
    /// was sent or last forwarded).
    CallMsgArrive {
        /// Dense call index.
        call: u64,
        /// The node the message was addressed to.
        node: NodeId,
        /// Which leg of the invocation chain this is.
        leg: Leg,
    },
    /// A result message arrives: for `Leg::Nested` at the first-layer
    /// server, for `Leg::Target` back at the client (completing the call).
    CallReturn {
        /// Dense call index.
        call: u64,
        /// Which leg returned.
        leg: Leg,
    },
}
