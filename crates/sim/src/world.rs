//! The simulated world: run-time support for migration interpreted at the
//! callee's node (§3.1), driven by discrete events.
//!
//! # The §4.1 model, made precise
//!
//! * Every remote **message** (call, result, move-request, denial
//!   indication) takes a random duration drawn from the network's latency
//!   model (Exp(1) in the paper's setup); messages between collocated
//!   parties are free.
//! * A **migration** keeps all moved objects in transit for `M · size`;
//!   calls addressed to them block until reinstallation.
//! * A **move-block** is: move-request → outcome (object arrival or denial
//!   indication) → `N` invocations separated by think times `t_i` →
//!   end-request. End-requests are local operations (free); for the dynamic
//!   policies they are delivered to the object with their bookkeeping cost
//!   neglected, exactly as the paper does (§4.3).
//! * Messages that arrive where the object used to be chase it with
//!   forward-addressing hops.

use oml_core::attach::{AttachmentGraph, ClosureScratch};
use oml_core::ids::{BlockId, ClientId, NodeId, ObjectId};
use oml_core::policy::{EndRequest, MoveDecision, MovePolicy, MoveRequest};
use oml_des::stats::StoppingRule;
use oml_des::{EventHandler, Scheduler, SimRng, SimTime};
use oml_net::Network;

use crate::dense::{NodeObjectTable, ScanMap};
use crate::event::{Event, Leg, TraceEvent};
use crate::metrics::SimMetrics;
use crate::state::{
    BlockFlavor, BlockState, BlockedCall, CallState, ClientState, Location, LocationMechanism,
    MigrationState, ObjectState, QueuedEnd,
};
use oml_des::trace::TraceBuffer;

/// The complete simulation state; implements [`EventHandler`].
///
/// Constructed through [`crate::SimulationBuilder`]; not intended to be
/// driven directly.
#[derive(Debug)]
pub struct World {
    pub(crate) net: Network,
    pub(crate) rng: SimRng,
    pub(crate) policy: Box<dyn MovePolicy>,
    pub(crate) attachments: AttachmentGraph,
    pub(crate) objects: Vec<ObjectState>,
    pub(crate) clients: Vec<ClientState>,
    pub(crate) blocks: ScanMap<BlockId, BlockState>,
    pub(crate) next_block: u32,
    pub(crate) calls: ScanMap<u64, CallState>,
    pub(crate) next_call: u64,
    pub(crate) migrations: ScanMap<u64, MigrationState>,
    pub(crate) next_migration: u64,
    /// `M`: base migration duration for a unit-size object.
    pub(crate) migration_duration: f64,
    /// Metrics recording starts after this simulated time (transient
    /// warm-up removal).
    pub(crate) warmup_time: f64,
    pub(crate) metrics: SimMetrics,
    pub(crate) stopping: StoppingRule,
    /// Optional high-level run trace (ring buffer of the tail).
    pub(crate) trace: Option<TraceBuffer<TraceEvent>>,
    /// How invocations locate moved objects (§4.1's neglected alternatives).
    pub(crate) location_mechanism: LocationMechanism,
    /// Per-node cached object locations (used by every mechanism except
    /// immediate update).
    pub(crate) location_cache: NodeObjectTable,
    /// Forwarding pointers: the node an object departed from remembers where
    /// it went (Emerald-style forward addressing).
    pub(crate) forward_pointers: NodeObjectTable,
    /// Reusable buffers for [`AttachmentGraph::migration_closure_into`], so
    /// the closure of a migration is computed without allocating.
    pub(crate) closure_scratch: ClosureScratch,
    /// Retired mover lists, recycled by the next migration.
    pub(crate) mover_pool: Vec<Vec<ObjectId>>,
}

impl World {
    /// Collected metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Whether the stopping rule is satisfied.
    #[must_use]
    pub fn should_stop(&self) -> bool {
        self.metrics.should_stop(&self.stopping)
    }

    /// The node an object is currently installed at (`None` while in
    /// transit).
    #[must_use]
    pub fn object_node(&self, object: ObjectId) -> Option<NodeId> {
        self.objects[object.index()].node()
    }

    fn recording(&self, now: SimTime) -> bool {
        now.as_f64() >= self.warmup_time
    }

    /// The run trace, if enabled at build time.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceBuffer<TraceEvent>> {
        self.trace.as_ref()
    }

    fn record_trace(&mut self, now: SimTime, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.record(now, event);
        }
    }

    /// Where `from`'s runtime believes `object` lives (defaults to the
    /// object's home node until a result message teaches it better).
    fn cached_location(&self, from: NodeId, object: ObjectId) -> NodeId {
        self.location_cache
            .get(from, object)
            .unwrap_or(self.objects[object.index()].descriptor.home)
    }

    fn learn_location(&mut self, at: NodeId, object: ObjectId, is: NodeId) {
        self.location_cache.set(at, object, is);
    }

    /// Samples one message delay between two nodes.
    fn delay(&mut self, from: NodeId, to: NodeId) -> f64 {
        let World { net, rng, .. } = self;
        net.message_delay(from, to, rng)
    }

    // ------------------------------------------------------------------
    // move-blocks
    // ------------------------------------------------------------------

    fn on_block_start(&mut self, now: SimTime, client_id: ClientId, sched: &mut Scheduler<Event>) {
        let (node, target, n_calls) = {
            let World { rng, clients, .. } = self;
            let client = &clients[client_id.index()];
            let target = *rng.pick(&client.servers);
            let n_calls = rng.exp_count(client.params.mean_calls);
            (client.node, target, n_calls)
        };
        let block_id = BlockId::new(self.next_block);
        self.next_block += 1;
        let mut block = BlockState::new(block_id, client_id, node, target, n_calls);

        self.record_trace(
            now,
            TraceEvent::BlockStarted {
                client: client_id,
                object: target,
            },
        );
        if self.policy.uses_move_requests() {
            block.issued_move = true;
            if self.recording(now) {
                self.metrics.moves_issued += 1;
            }
            self.blocks.insert(block_id, block);
            self.send_move(block_id, sched);
        } else {
            // Sedentary applications do not attempt migration at all.
            block.granted = Some(false);
            self.blocks.insert(block_id, block);
            sched.schedule_in(0.0, Event::NextCall { block: block_id });
        }
    }

    fn send_move(&mut self, block_id: BlockId, sched: &mut Scheduler<Event>) {
        let (target, client_node) = {
            let b = &self.blocks[block_id];
            (b.target, b.client_node)
        };
        match self.objects[target.index()].location {
            Location::At(n) => {
                let d = self.delay(client_node, n);
                self.blocks
                    .get_mut(block_id)
                    .expect("live block")
                    .control_cost += d;
                sched.schedule_in(
                    d,
                    Event::MoveMsgArrive {
                        block: block_id,
                        node: n,
                    },
                );
            }
            Location::InTransit { .. } => {
                // The request chases the object and is interpreted when it
                // lands; the chasing message's cost is charged on delivery.
                self.objects[target.index()]
                    .queued_moves
                    .push_back(block_id);
            }
        }
    }

    fn on_move_msg_arrive(
        &mut self,
        now: SimTime,
        block_id: BlockId,
        node: NodeId,
        sched: &mut Scheduler<Event>,
    ) {
        let target = self.blocks[block_id].target;
        match self.objects[target.index()].location {
            Location::At(n) if n == node => self.process_move(now, block_id, node, sched),
            Location::At(m) => {
                // forward-addressing hop
                if self.recording(now) {
                    self.metrics.forward_hops += 1;
                }
                let d = self.delay(node, m);
                self.blocks
                    .get_mut(block_id)
                    .expect("live block")
                    .control_cost += d;
                sched.schedule_in(
                    d,
                    Event::MoveMsgArrive {
                        block: block_id,
                        node: m,
                    },
                );
            }
            Location::InTransit { .. } => {
                self.objects[target.index()]
                    .queued_moves
                    .push_back(block_id);
            }
        }
    }

    /// Interpret a move-request at the object's current node (§3.1, Fig. 3).
    fn process_move(
        &mut self,
        now: SimTime,
        block_id: BlockId,
        at: NodeId,
        sched: &mut Scheduler<Event>,
    ) {
        let (target, from) = {
            let b = &self.blocks[block_id];
            (b.target, b.client_node)
        };
        debug_assert_eq!(self.objects[target.index()].node(), Some(at));

        let movable = self.objects[target.index()]
            .descriptor
            .mobility
            .is_movable();
        let decision = if movable {
            self.policy.on_move(&MoveRequest {
                object: target,
                at,
                from,
                block: block_id,
            })
        } else {
            // Fixed objects are sedentary regardless of policy (§2.2).
            MoveDecision::Deny
        };

        match decision {
            MoveDecision::Grant => {
                self.record_trace(now, TraceEvent::MoveGranted { block: block_id });
                if self.recording(now) {
                    self.metrics.moves_granted += 1;
                }
                self.blocks
                    .get_mut(block_id)
                    .expect("live block")
                    .origin_node = Some(at);
                if at == from {
                    // Already local: no migration, install (and lock) here.
                    self.policy.on_installed(target, at, block_id);
                    sched.schedule_in(
                        0.0,
                        Event::MoveOutcome {
                            block: block_id,
                            granted: true,
                        },
                    );
                } else {
                    self.start_migration(now, target, from, Some(block_id), sched);
                }
            }
            MoveDecision::Deny => {
                self.record_trace(now, TraceEvent::MoveDenied { block: block_id });
                if self.recording(now) {
                    self.metrics.moves_denied += 1;
                }
                let d = self.delay(at, from);
                self.blocks
                    .get_mut(block_id)
                    .expect("live block")
                    .control_cost += d;
                sched.schedule_in(
                    d,
                    Event::MoveOutcome {
                        block: block_id,
                        granted: false,
                    },
                );
            }
        }
    }

    fn on_move_outcome(
        &mut self,
        _now: SimTime,
        block_id: BlockId,
        granted: bool,
        sched: &mut Scheduler<Event>,
    ) {
        let block = self.blocks.get_mut(block_id).expect("live block");
        debug_assert!(block.granted.is_none());
        block.granted = Some(granted);
        sched.schedule_in(0.0, Event::NextCall { block: block_id });
    }

    // ------------------------------------------------------------------
    // migration
    // ------------------------------------------------------------------

    /// Starts migrating `main` (with its mode-dependent attachment closure)
    /// towards `to`. `install_block` is the granted block to notify and
    /// install for, or `None` for policy-initiated migrations and
    /// visit-blocks' migrate-back.
    fn start_migration(
        &mut self,
        now: SimTime,
        main: ObjectId,
        to: NodeId,
        install_block: Option<BlockId>,
        sched: &mut Scheduler<Event>,
    ) {
        let ctx = self.objects[main.index()].move_context;
        self.attachments
            .migration_closure_into(main, ctx, &mut self.closure_scratch);

        let mid = self.next_migration;
        self.next_migration += 1;

        let mut movers = self.mover_pool.pop().unwrap_or_default();
        debug_assert!(movers.is_empty());
        let mut transfer_load = 0.0;
        let mut land_delay: f64 = 0.0;
        for i in 0..self.closure_scratch.members().len() {
            let member = self.closure_scratch.members()[i];
            let obj = &self.objects[member.index()];
            let movable = obj.descriptor.mobility.is_movable();
            // A placement lock makes an object transiently sedentary (§3.2),
            // so other blocks' closure migrations leave it behind.
            let pinned = self.policy.is_pinned(member);
            let here = matches!(obj.location, Location::At(n) if n != to);
            if movable && !pinned && here {
                movers.push(member);
                let duration = self.migration_duration * obj.descriptor.size_factor;
                transfer_load += duration;
                // Objects transfer in parallel (the network is unsaturated,
                // §4.1); the migration lands when its largest member does.
                land_delay = land_delay.max(duration);
            }
        }
        for &member in &movers {
            if let Location::At(old) = self.objects[member.index()].location {
                // Emerald-style forwarding pointer at the departure node.
                self.forward_pointers.set(old, member, to);
            }
            self.objects[member.index()].location = Location::InTransit { to, migration: mid };
        }

        // All cost accounting happens at departure so a triggering block can
        // be charged before it completes. The *migration time* a block is
        // charged is the transfer latency (objects travel in parallel); the
        // per-object network load (`k · M`) is tracked separately as the
        // §2.4 underestimation diagnostic.
        if self.recording(now) && !movers.is_empty() {
            self.metrics.migrations += 1;
            self.metrics.objects_migrated += movers.len() as u64;
            self.metrics.total_migration_time += land_delay;
            self.metrics.total_transfer_load += transfer_load;
            self.metrics.closure_sizes.record(movers.len() as f64);
            if install_block.is_none() {
                self.metrics.unattributed_migration_time += land_delay;
            }
        }
        if let Some(bid) = install_block {
            if let Some(block) = self.blocks.get_mut(bid) {
                block.migration_cost += land_delay;
            }
        }

        self.record_trace(
            now,
            TraceEvent::MigrationStarted {
                to,
                movers: movers.len(),
            },
        );
        self.migrations.insert(
            mid,
            MigrationState {
                main,
                movers,
                to,
                block: install_block,
                cost: transfer_load,
            },
        );
        sched.schedule_in(land_delay, Event::MigrationLand { migration: mid });
    }

    fn on_migration_land(&mut self, now: SimTime, mid: u64, sched: &mut Scheduler<Event>) {
        let mig = self.migrations.remove(mid).expect("live migration");
        self.record_trace(now, TraceEvent::MigrationLanded { to: mig.to });
        for &mover in &mig.movers {
            self.objects[mover.index()].location = Location::At(mig.to);
            self.policy.on_arrival(mover, mig.to);
        }
        if let Some(bid) = mig.block {
            // The granted requester's object is installed; placement-style
            // policies take their lock now, before any queued conflicting
            // request is interpreted (Fig. 4's timeline).
            self.policy.on_installed(mig.main, mig.to, bid);
            sched.schedule_in(
                0.0,
                Event::MoveOutcome {
                    block: bid,
                    granted: true,
                },
            );
        }
        // Wake everything that waited for the landing, object by object:
        // end-requests first (they may release locks), then blocked calls,
        // then queued move-requests (which may immediately re-migrate).
        for &mover in &mig.movers {
            self.drain_after_landing(now, mover, mig.to, sched);
        }
        let mut movers = mig.movers;
        movers.clear();
        self.mover_pool.push(movers);
    }

    fn drain_after_landing(
        &mut self,
        now: SimTime,
        object: ObjectId,
        landed_at: NodeId,
        sched: &mut Scheduler<Event>,
    ) {
        let ends: Vec<QueuedEnd> = std::mem::take(&mut self.objects[object.index()].queued_ends);
        for e in ends {
            self.process_end_request(now, object, landed_at, e, sched);
        }

        let blocked: Vec<BlockedCall> =
            std::mem::take(&mut self.objects[object.index()].blocked_calls);
        for bc in blocked {
            if bc.from == landed_at {
                sched.schedule_in(
                    0.0,
                    Event::CallMsgArrive {
                        call: bc.call,
                        node: landed_at,
                        leg: bc.leg,
                    },
                );
            } else {
                if self.recording(now) {
                    self.metrics.forward_hops += 1;
                }
                let d = self.delay(bc.from, landed_at);
                sched.schedule_in(
                    d,
                    Event::CallMsgArrive {
                        call: bc.call,
                        node: landed_at,
                        leg: bc.leg,
                    },
                );
            }
        }

        // Queued move-requests are interpreted in arrival order until one of
        // them migrates the object away again.
        while matches!(self.objects[object.index()].location, Location::At(n) if n == landed_at) {
            let Some(bid) = self.objects[object.index()].queued_moves.pop_front() else {
                break;
            };
            self.process_move(now, bid, landed_at, sched);
        }
    }

    fn process_end_request(
        &mut self,
        now: SimTime,
        object: ObjectId,
        at: NodeId,
        q: QueuedEnd,
        sched: &mut Scheduler<Event>,
    ) {
        let action = self.policy.on_end(&EndRequest {
            object,
            at,
            from: q.from,
            block: q.block,
            was_granted: q.was_granted,
        });
        if let oml_core::policy::EndAction::Migrate(node) = action {
            if node != at {
                self.start_migration(now, object, node, None, sched);
            }
        }
    }

    // ------------------------------------------------------------------
    // invocations
    // ------------------------------------------------------------------

    fn on_next_call(&mut self, now: SimTime, block_id: BlockId, sched: &mut Scheduler<Event>) {
        let (target, client_node) = {
            let b = &self.blocks[block_id];
            (b.target, b.client_node)
        };
        let nested = {
            let World { rng, objects, .. } = self;
            let candidates = &objects[target.index()].nested_targets;
            if candidates.is_empty() {
                None
            } else {
                Some(*rng.pick(candidates))
            }
        };
        let call_id = self.next_call;
        self.next_call += 1;
        self.calls.insert(
            call_id,
            CallState {
                block: block_id,
                client_node,
                target,
                nested,
                issued_at: now.as_f64(),
                exec_node: None,
                ever_blocked: false,
            },
        );
        self.send_leg(call_id, Leg::Target, client_node, sched);
    }

    fn leg_object(&self, call_id: u64, leg: Leg) -> ObjectId {
        let call = &self.calls[call_id];
        match leg {
            Leg::Target => call.target,
            Leg::Nested => call.nested.expect("nested leg without nested target"),
        }
    }

    fn send_leg(&mut self, call_id: u64, leg: Leg, from: NodeId, sched: &mut Scheduler<Event>) {
        let object = self.leg_object(call_id, leg);
        if self.location_mechanism != LocationMechanism::ImmediateUpdate {
            // the sender trusts its cache; staleness is resolved on arrival
            let dest = self.cached_location(from, object);
            let d = self.delay(from, dest);
            sched.schedule_in(
                d,
                Event::CallMsgArrive {
                    call: call_id,
                    node: dest,
                    leg,
                },
            );
            return;
        }
        match self.objects[object.index()].location {
            Location::At(n) => {
                let d = self.delay(from, n);
                sched.schedule_in(
                    d,
                    Event::CallMsgArrive {
                        call: call_id,
                        node: n,
                        leg,
                    },
                );
            }
            Location::InTransit { .. } => {
                self.calls.get_mut(call_id).expect("live call").ever_blocked = true;
                self.objects[object.index()]
                    .blocked_calls
                    .push(BlockedCall {
                        call: call_id,
                        leg,
                        from,
                    });
            }
        }
    }

    fn on_call_msg_arrive(
        &mut self,
        now: SimTime,
        call_id: u64,
        node: NodeId,
        leg: Leg,
        sched: &mut Scheduler<Event>,
    ) {
        let object = self.leg_object(call_id, leg);
        match self.objects[object.index()].location {
            Location::At(n) if n == node => self.execute_leg(call_id, node, leg, sched),
            Location::At(m) => {
                // Stale delivery: recover per the configured mechanism.
                let (hops, d, next) = match self.location_mechanism {
                    // a raced migration: one direct hop (the sender's
                    // knowledge was current when it sent)
                    LocationMechanism::ImmediateUpdate => (1, self.delay(node, m), m),
                    // follow the forwarding pointer this node left behind
                    // (it may itself be stale → the chase continues there)
                    LocationMechanism::ForwardAddressing => {
                        let next = self.forward_pointers.get(node, object).unwrap_or(m);
                        (1, self.delay(node, next), next)
                    }
                    // ask the name server, which redirects the message
                    LocationMechanism::NameServer { node: ns } => {
                        let d = self.delay(node, ns) + self.delay(ns, m);
                        (2, d, m)
                    }
                    // broadcast a query; the owner's answer fetches the call
                    LocationMechanism::Broadcast => {
                        let d = self.delay(node, m) + self.delay(m, node);
                        (2, d, m)
                    }
                };
                if self.recording(now) {
                    self.metrics.forward_hops += hops;
                }
                sched.schedule_in(
                    d,
                    Event::CallMsgArrive {
                        call: call_id,
                        node: next,
                        leg,
                    },
                );
            }
            Location::InTransit { .. } => {
                self.calls.get_mut(call_id).expect("live call").ever_blocked = true;
                self.objects[object.index()]
                    .blocked_calls
                    .push(BlockedCall {
                        call: call_id,
                        leg,
                        from: node,
                    });
            }
        }
    }

    fn execute_leg(&mut self, call_id: u64, node: NodeId, leg: Leg, sched: &mut Scheduler<Event>) {
        match leg {
            Leg::Target => {
                let (has_nested, client_node, target) = {
                    let call = self.calls.get_mut(call_id).expect("live call");
                    call.exec_node = Some(node);
                    (call.nested.is_some(), call.client_node, call.target)
                };
                // the caller's runtime learns the object's location from the
                // interaction
                self.learn_location(client_node, target, node);

                if has_nested {
                    self.send_leg(call_id, Leg::Nested, node, sched);
                } else {
                    let client_node = self.calls[call_id].client_node;
                    let d = self.delay(node, client_node);
                    sched.schedule_in(
                        d,
                        Event::CallReturn {
                            call: call_id,
                            leg: Leg::Target,
                        },
                    );
                }
            }
            Leg::Nested => {
                // Execute at the second-layer server, send the result back
                // to where the first-layer server ran.
                let (exec_node, nested) = {
                    let call = &self.calls[call_id];
                    (
                        call.exec_node.expect("target leg ran first"),
                        call.nested.expect("nested leg has a target"),
                    )
                };
                self.learn_location(exec_node, nested, node);
                let d = self.delay(node, exec_node);
                sched.schedule_in(
                    d,
                    Event::CallReturn {
                        call: call_id,
                        leg: Leg::Nested,
                    },
                );
            }
        }
    }

    fn on_call_return(
        &mut self,
        now: SimTime,
        call_id: u64,
        leg: Leg,
        sched: &mut Scheduler<Event>,
    ) {
        match leg {
            Leg::Nested => {
                // Nested result reached the first-layer server; relay the
                // overall result to the client.
                let (exec_node, client_node) = {
                    let call = &self.calls[call_id];
                    (call.exec_node.expect("exec node set"), call.client_node)
                };
                let d = self.delay(exec_node, client_node);
                sched.schedule_in(
                    d,
                    Event::CallReturn {
                        call: call_id,
                        leg: Leg::Target,
                    },
                );
            }
            Leg::Target => {
                let call = self.calls.remove(call_id).expect("live call");
                let duration = now.as_f64() - call.issued_at;
                if call.ever_blocked && self.recording(now) {
                    self.metrics.blocked_calls += 1;
                }
                let block_id = call.block;
                let (done, total, client) = {
                    let block = self.blocks.get_mut(block_id).expect("live block");
                    block.calls_done += 1;
                    block.call_durations.push(duration);
                    (block.calls_done, block.n_calls, block.client)
                };
                if done < total {
                    let think = {
                        let mean = self.clients[client.index()].params.mean_think;
                        self.rng.exp(mean)
                    };
                    sched.schedule_in(think, Event::NextCall { block: block_id });
                } else {
                    self.finish_block(now, block_id, sched);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // block completion
    // ------------------------------------------------------------------

    fn finish_block(&mut self, now: SimTime, block_id: BlockId, sched: &mut Scheduler<Event>) {
        let (client_id, target, issued_move, granted, origin, client_node) = {
            let b = &self.blocks[block_id];
            (
                b.client,
                b.target,
                b.issued_move,
                b.granted.unwrap_or(false),
                b.origin_node,
                b.client_node,
            )
        };

        if issued_move {
            let q = QueuedEnd {
                block: block_id,
                from: client_node,
                was_granted: granted,
            };
            match self.objects[target.index()].location {
                Location::At(at) => self.process_end_request(now, target, at, q, sched),
                Location::InTransit { .. } => {
                    self.objects[target.index()].queued_ends.push(q);
                }
            }

            // visit-blocks migrate the object back to where it came from
            let flavor = self.clients[client_id.index()].flavor;
            if flavor == BlockFlavor::Visit && granted {
                if let (Some(origin), Location::At(cur)) =
                    (origin, self.objects[target.index()].location)
                {
                    if cur != origin {
                        self.start_migration(now, target, origin, None, sched);
                    }
                }
            }
        }

        // Emit metrics: each call's communication time is its duration plus
        // the block's migration and control overhead evenly distributed
        // (Fig. 8's definition).
        if self.recording(now) {
            let block = &self.blocks[block_id];
            let n = block.call_durations.len().max(1) as f64;
            let overhead = (block.migration_cost + block.control_cost) / n;
            for &d in &block.call_durations {
                self.metrics.calls += 1;
                self.metrics.total_call_time += d;
                self.metrics.call_durations.push(d);
                self.metrics.call_p95.push(d);
                self.metrics.samples.push(d + overhead);
                self.metrics.per_client_comm[client_id.index()].push(d + overhead);
            }
            self.metrics.total_control_time += block.control_cost;
            self.metrics.blocks_completed += 1;
        }

        self.record_trace(now, TraceEvent::BlockFinished { block: block_id });
        self.blocks.remove(block_id);

        let gap = {
            let client = &mut self.clients[client_id.index()];
            client.blocks_completed += 1;
            let mean = client.params.mean_gap;
            self.rng.exp(mean)
        };
        sched.schedule_in(gap, Event::BlockStart { client: client_id });
    }
}

impl EventHandler for World {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<Event>) {
        match event {
            Event::BlockStart { client } => self.on_block_start(now, client, sched),
            Event::MoveMsgArrive { block, node } => {
                self.on_move_msg_arrive(now, block, node, sched);
            }
            Event::MoveOutcome { block, granted } => {
                self.on_move_outcome(now, block, granted, sched);
            }
            Event::MigrationLand { migration } => self.on_migration_land(now, migration, sched),
            Event::NextCall { block } => self.on_next_call(now, block, sched),
            Event::CallMsgArrive { call, node, leg } => {
                self.on_call_msg_arrive(now, call, node, leg, sched);
            }
            Event::CallReturn { call, leg } => self.on_call_return(now, call, leg, sched),
        }
    }
}
