//! Strongly typed identifiers for the entities of the object system.
//!
//! Every entity — node, object, alliance, client, move-block — is addressed
//! by a dense `u32` index wrapped in a newtype, so the different id spaces
//! cannot be confused (C-NEWTYPE) and all lookups stay `Vec`-indexable.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index.
            #[must_use]
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw index, usable for `Vec` lookups.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw `u32` value.
            #[must_use]
            pub const fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// A network node (a machine in the distributed system).
    NodeId,
    "n"
);
define_id!(
    /// A distribution unit: one migratable (or sedentary) object.
    ObjectId,
    "o"
);
define_id!(
    /// A cooperation context (§3.4): alliances scope attachment
    /// transitiveness.
    AllianceId,
    "a"
);
define_id!(
    /// A client application instance (sedentary by construction, §4.1).
    ClientId,
    "c"
);
define_id!(
    /// One dynamic move-block instance (a `move`/`visit` region).
    BlockId,
    "b"
);

/// Yields the sequence `prefix0, prefix1, …` of ids — convenient for building
/// scenarios.
///
/// # Example
///
/// ```
/// use oml_core::ids::{id_range, ObjectId};
///
/// let servers: Vec<ObjectId> = id_range(3, 5).collect();
/// assert_eq!(servers.len(), 5);
/// assert_eq!(servers[0], ObjectId::new(3));
/// ```
pub fn id_range<T: From32>(start: u32, count: u32) -> impl Iterator<Item = T> {
    (start..start + count).map(T::from_u32)
}

/// Sealed helper for [`id_range`]; implemented by all id newtypes.
pub trait From32: private::Sealed {
    /// Builds the id from a raw index.
    fn from_u32(raw: u32) -> Self;
}

mod private {
    pub trait Sealed {}
}

macro_rules! impl_from32 {
    ($($t:ty),*) => {
        $(
            impl private::Sealed for $t {}
            impl From32 for $t {
                fn from_u32(raw: u32) -> Self {
                    <$t>::new(raw)
                }
            }
        )*
    };
}

impl_from32!(NodeId, ObjectId, AllianceId, ClientId, BlockId);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.as_u32(), 7);
        assert_eq!(usize::from(n), 7);
    }

    #[test]
    fn display_includes_prefix() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(ObjectId::new(0).to_string(), "o0");
        assert_eq!(AllianceId::new(1).to_string(), "a1");
        assert_eq!(ClientId::new(2).to_string(), "c2");
        assert_eq!(BlockId::new(9).to_string(), "b9");
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(ObjectId::new(1) < ObjectId::new(2));
        let set: HashSet<ObjectId> = [ObjectId::new(1), ObjectId::new(1)].into_iter().collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn id_range_produces_consecutive_ids() {
        let ids: Vec<NodeId> = id_range(2, 3).collect();
        assert_eq!(ids, vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)]);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ObjectId::default(), ObjectId::new(0));
    }
}
