//! Object descriptors and the `fix`/`unfix`/`refix` primitives (§2.2).

use crate::ids::{NodeId, ObjectId};
use serde::{Deserialize, Serialize};

/// Whether an object may migrate.
///
/// The paper distinguishes a *permanent* property ("often expressed as a type
/// attribute in order to force all of its instances to be sedentary") from a
/// *transient* one ("mostly the consequence of run-time decisions, e.g., to
/// avoid thrashing"), controlled with `fix()`, `unfix()` and `refix()`.
///
/// # Example
///
/// ```
/// use oml_core::object::Mobility;
///
/// let mut m = Mobility::Mobile;
/// m.fix();
/// assert!(!m.is_movable());
/// m.unfix();
/// assert!(m.is_movable());
/// m.refix();
/// assert!(!m.is_movable());
///
/// let mut sedentary = Mobility::Sedentary;
/// sedentary.unfix(); // type-level fixing cannot be undone at run time
/// assert!(!sedentary.is_movable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Mobility {
    /// Permanently sedentary (type attribute); `unfix()` has no effect.
    Sedentary,
    /// Transiently fixed by a run-time `fix()`/`refix()` decision.
    Fixed,
    /// Free to migrate.
    #[default]
    Mobile,
}

impl Mobility {
    /// Whether a migration of this object is currently permitted.
    #[must_use]
    pub fn is_movable(self) -> bool {
        self == Mobility::Mobile
    }

    /// `fix()` — transiently pin the object at its current node.
    ///
    /// Has no effect on permanently sedentary objects (they are already as
    /// fixed as they can be).
    pub fn fix(&mut self) {
        if *self == Mobility::Mobile {
            *self = Mobility::Fixed;
        }
    }

    /// `unfix()` — lift a transient fix. Permanent (type-level) fixing is not
    /// affected.
    pub fn unfix(&mut self) {
        if *self == Mobility::Fixed {
            *self = Mobility::Mobile;
        }
    }

    /// `refix()` — re-establish a transient fix; identical to [`Mobility::fix`]
    /// but kept as a separate primitive to mirror the linguistic support the
    /// paper describes.
    pub fn refix(&mut self) {
        self.fix();
    }
}

/// Static description of one object in the system.
///
/// Dynamic state (current node, in-transit status, queued calls) lives in the
/// substrate (`oml-sim` / `oml-runtime`); the descriptor carries the
/// properties policies may consult.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectDescriptor {
    /// The object's identity.
    pub id: ObjectId,
    /// Where the object is created.
    pub home: NodeId,
    /// Migration permission.
    pub mobility: Mobility,
    /// Relative state size. The migration duration of an object is
    /// `M · size_factor`, reflecting that "the cost of a migration depends on
    /// the size of the object" (§3.2). The paper's experiments use 1.0 for
    /// all servers.
    pub size_factor: f64,
}

impl ObjectDescriptor {
    /// Creates a mobile, unit-size object.
    #[must_use]
    pub fn new(id: ObjectId, home: NodeId) -> Self {
        ObjectDescriptor {
            id,
            home,
            mobility: Mobility::Mobile,
            size_factor: 1.0,
        }
    }

    /// Builder-style: marks the object permanently sedentary.
    #[must_use]
    pub fn sedentary(mut self) -> Self {
        self.mobility = Mobility::Sedentary;
        self
    }

    /// Builder-style: sets the relative state size.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn with_size_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "size factor must be positive: {factor}"
        );
        self.size_factor = factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fix_unfix_refix_cycle() {
        let mut m = Mobility::Mobile;
        assert!(m.is_movable());
        m.fix();
        assert_eq!(m, Mobility::Fixed);
        m.refix(); // idempotent
        assert_eq!(m, Mobility::Fixed);
        m.unfix();
        assert_eq!(m, Mobility::Mobile);
        m.unfix(); // idempotent
        assert_eq!(m, Mobility::Mobile);
    }

    #[test]
    fn sedentary_is_immutable_at_runtime() {
        let mut m = Mobility::Sedentary;
        m.unfix();
        assert_eq!(m, Mobility::Sedentary);
        m.fix();
        assert_eq!(m, Mobility::Sedentary);
        assert!(!m.is_movable());
    }

    #[test]
    fn default_mobility_is_mobile() {
        assert_eq!(Mobility::default(), Mobility::Mobile);
    }

    #[test]
    fn descriptor_builders() {
        let d = ObjectDescriptor::new(ObjectId::new(1), NodeId::new(2))
            .sedentary()
            .with_size_factor(2.5);
        assert_eq!(d.mobility, Mobility::Sedentary);
        assert_eq!(d.size_factor, 2.5);
        assert_eq!(d.home, NodeId::new(2));
    }

    #[test]
    #[should_panic(expected = "size factor must be positive")]
    fn zero_size_factor_rejected() {
        let _ = ObjectDescriptor::new(ObjectId::new(0), NodeId::new(0)).with_size_factor(0.0);
    }
}
