//! The migration-policy interface shared by the simulator and the runtime.
//!
//! A policy is interpreted *at the node of the callee* (§3.1, Fig. 3): the
//! substrate forwards `move()`-requests to the object's current location and
//! asks the policy what to do, instead of blindly executing the migration.
//! This file defines that conversation; the concrete policies live in
//! [`crate::policies`].

use crate::ids::{BlockId, NodeId, ObjectId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A `move()`-request as seen by the policy at the object's current node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveRequest {
    /// The object the move names.
    pub object: ObjectId,
    /// The object's current node — where the request is being interpreted.
    pub at: NodeId,
    /// The requester's node (the move's target).
    pub from: NodeId,
    /// The move-block on whose behalf the request was issued.
    pub block: BlockId,
}

/// The policy's answer to a move-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveDecision {
    /// Honour the request: migrate the object (and its attachment closure)
    /// to the requester — or, if it is already there, leave it and report
    /// success. The substrate calls [`MovePolicy::on_installed`] once the
    /// object is in place.
    Grant,
    /// Refuse: the object stays put and the requester receives a denial
    /// indication; its subsequent calls are forwarded to the object (§3.2).
    Deny,
}

/// An `end`-request: the block that issued a move has completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndRequest {
    /// The object the original move named.
    pub object: ObjectId,
    /// The object's current node when the end is processed.
    pub at: NodeId,
    /// The node of the block that ends.
    pub from: NodeId,
    /// The ending block.
    pub block: BlockId,
    /// Whether this block's move had been granted.
    pub was_granted: bool,
}

/// What the policy wants done after an end-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndAction {
    /// Nothing — the common case.
    None,
    /// Proactively migrate the object to the given node ("comparing and
    /// reinstantiation", §4.3: an end-request may reveal that some other node
    /// now holds a clear majority of open move-requests).
    Migrate(NodeId),
}

/// A migration-control policy, interpreted at the object's current node.
///
/// Implementations must be deterministic functions of the request stream:
/// both substrates replay identical streams in tests and expect identical
/// decisions.
pub trait MovePolicy: fmt::Debug + Send {
    /// Which built-in policy this is (for reporting).
    fn kind(&self) -> PolicyKind;

    /// Whether applications should issue `move()`-requests at all. The
    /// sedentary baseline returns `false`: its applications never attempt
    /// migration (and therefore never pay for move messages).
    fn uses_move_requests(&self) -> bool {
        true
    }

    /// Decide a move-request.
    fn on_move(&mut self, req: &MoveRequest) -> MoveDecision;

    /// The object is installed at `node` on behalf of the granted `block`
    /// (either after a completed migration or immediately, when it already
    /// was local). Placement-style policies take their lock here.
    fn on_installed(&mut self, object: ObjectId, node: NodeId, block: BlockId);

    /// Process an end-request.
    fn on_end(&mut self, req: &EndRequest) -> EndAction;

    /// The object landed at `node` for any reason (granted move or
    /// policy-initiated migration). Dynamic policies may update their notion
    /// of the object's location here; the default does nothing.
    fn on_arrival(&mut self, object: ObjectId, node: NodeId) {
        let _ = (object, node);
    }

    /// Whether the policy currently pins `object` in place. A pinned object
    /// is "sedentary as long as the block … completes" (§3.2): it is not
    /// dragged along when another object's attachment closure migrates.
    /// Defaults to `false`; transient placement reports its locks here.
    fn is_pinned(&self, object: ObjectId) -> bool {
        let _ = object;
        false
    }

    /// Activity inside `object`'s granted block at time `now_ms`: policies
    /// whose locks are leases (see [`crate::lease::LeaseTable`]) extend the
    /// lease here. The default (and every lock-free policy) does nothing.
    fn renew_lease(&mut self, object: ObjectId, now_ms: u64) {
        let _ = (object, now_ms);
    }

    /// Advances the policy's lease clock to `now_ms` and releases locks
    /// whose leases ran out — the recovery path when a holder crashed or
    /// its end-request was lost. Returns the `(object, block)` pairs that
    /// expired. Lock-free policies (and lock tables without a TTL) return
    /// nothing.
    fn expire_leases(&mut self, now_ms: u64) -> Vec<(ObjectId, BlockId)> {
        let _ = now_ms;
        Vec::new()
    }

    /// The lease TTL of this policy's placement locks: `Some(ms)` when its
    /// locks expire after `ms` of inactivity, `None` for never-expiring
    /// locks and lock-free policies. Diagnostics and trace instrumentation
    /// read this; it never influences decisions.
    fn lease_ttl_ms(&self) -> Option<u64> {
        None
    }

    /// The node hosting `objects` crashed. Placement locks on those objects
    /// were volatile state of the dead host: the blocks that held them ran
    /// there and their end-requests can never arrive, so the policy must
    /// release them now rather than leave the objects locked until lease
    /// expiry (or forever, without a TTL). Returns the `(object, block)`
    /// pairs actually released. Lock-free policies release nothing.
    fn release_locks_for(&mut self, objects: &[ObjectId]) -> Vec<(ObjectId, BlockId)> {
        let _ = objects;
        Vec::new()
    }

    /// The placement locks currently held, for diagnostics and invariant
    /// checks. Lock-free policies return an empty list.
    fn held_locks(&self) -> Vec<(ObjectId, BlockId)> {
        Vec::new()
    }
}

/// The built-in policies, as data (serializable, usable in configs and on
/// the command line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// "Without migration": objects never move (baseline in every figure).
    Sedentary,
    /// Conventional `move()`: every request migrates immediately (§2.3).
    ConventionalMigration,
    /// Transient placement: migrate-if-unlocked (§3.2).
    TransientPlacement,
    /// Dynamic: keep the object where the most open move-requests are
    /// ("comparing the nodes", §4.3).
    CompareNodes,
    /// Dynamic: additionally re-migrate on end-requests when another node
    /// holds a clear majority ("comparing and reinstantiation", §4.3).
    CompareAndReinstantiate,
}

impl PolicyKind {
    /// All built-in policies, in presentation order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Sedentary,
        PolicyKind::ConventionalMigration,
        PolicyKind::TransientPlacement,
        PolicyKind::CompareNodes,
        PolicyKind::CompareAndReinstantiate,
    ];

    /// Instantiates the policy.
    #[must_use]
    pub fn build(self) -> Box<dyn MovePolicy> {
        use crate::policies::*;
        match self {
            PolicyKind::Sedentary => Box::new(Sedentary::new()),
            PolicyKind::ConventionalMigration => Box::new(ConventionalMigration::new()),
            PolicyKind::TransientPlacement => Box::new(TransientPlacement::new()),
            PolicyKind::CompareNodes => Box::new(CompareNodes::new()),
            PolicyKind::CompareAndReinstantiate => Box::new(CompareAndReinstantiate::new()),
        }
    }

    /// Instantiates the policy with lease-based locks expiring after
    /// `ttl_ms` of inactivity (the fault-tolerant runtime's configuration).
    /// Policies without locks ignore the TTL.
    ///
    /// # Panics
    ///
    /// Panics if `ttl_ms` is zero.
    #[must_use]
    pub fn build_with_lease(self, ttl_ms: u64) -> Box<dyn MovePolicy> {
        use crate::policies::*;
        match self {
            PolicyKind::Sedentary => Box::new(Sedentary::new()),
            PolicyKind::ConventionalMigration => Box::new(ConventionalMigration::new()),
            PolicyKind::TransientPlacement => Box::new(TransientPlacement::with_lease_ms(ttl_ms)),
            PolicyKind::CompareNodes => Box::new(CompareNodes::with_lease_ms(ttl_ms)),
            PolicyKind::CompareAndReinstantiate => {
                Box::new(CompareAndReinstantiate::with_lease_ms(ttl_ms))
            }
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyKind::Sedentary => "sedentary",
            PolicyKind::ConventionalMigration => "migration",
            PolicyKind::TransientPlacement => "placement",
            PolicyKind::CompareNodes => "compare-nodes",
            PolicyKind::CompareAndReinstantiate => "compare-reinstantiate",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing an unknown policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy `{}` (expected one of: sedentary, migration, placement, compare-nodes, compare-reinstantiate)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sedentary" | "without-migration" | "fixed" => Ok(PolicyKind::Sedentary),
            "migration" | "conventional" | "move" => Ok(PolicyKind::ConventionalMigration),
            "placement" | "transient-placement" | "place" => Ok(PolicyKind::TransientPlacement),
            "compare-nodes" | "comparing" => Ok(PolicyKind::CompareNodes),
            "compare-reinstantiate" | "reinstantiate" => Ok(PolicyKind::CompareAndReinstantiate),
            other => Err(ParsePolicyError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_matching_policies() {
        for kind in PolicyKind::ALL {
            let policy = kind.build();
            assert_eq!(policy.kind(), kind);
        }
    }

    #[test]
    fn display_and_parse_round_trip() {
        for kind in PolicyKind::ALL {
            let s = kind.to_string();
            assert_eq!(s.parse::<PolicyKind>().unwrap(), kind);
        }
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(
            "move".parse::<PolicyKind>().unwrap(),
            PolicyKind::ConventionalMigration
        );
        assert_eq!(
            "place".parse::<PolicyKind>().unwrap(),
            PolicyKind::TransientPlacement
        );
        let err = "bogus".parse::<PolicyKind>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn only_sedentary_skips_move_requests() {
        for kind in PolicyKind::ALL {
            let policy = kind.build();
            assert_eq!(
                policy.uses_move_requests(),
                kind != PolicyKind::Sedentary,
                "{kind}"
            );
        }
    }
}
