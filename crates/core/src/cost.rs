//! The analytical cost model of §3.2.
//!
//! Let `C` be the cost of one remote invocation *message*, `N` the number of
//! calls to the object inside a move-block, and `M` the cost of a migration
//! (`M > C`, since the object's state dwarfs a call frame). A move-block is
//! *sensible* when `N·C > M` — the paper assumes programmers only write
//! sensible blocks, and the workload generators enforce it.
//!
//! For the two-mover conflict of Fig. 4 the paper derives:
//!
//! * **place-policy**: `M + (2N + 1)·C` — one migration, the loser performs
//!   its `N` invocations remotely (call + result each) plus one denial
//!   indication message;
//! * **conventional move (worst case)**: `2M + (2N + 2)·C` — the object
//!   migrates twice, the first mover's `N` calls all happen remotely after
//!   the steal, and both move-requests cost a message.
//!
//! Placement therefore always saves `M + C` in this scenario, which is the
//! seed of the simulation results in §4.2.

use serde::{Deserialize, Serialize};

/// The §3.2 cost parameters.
///
/// # Example
///
/// ```
/// use oml_core::cost::CostModel;
///
/// // The paper's simulation defaults: M = 6, C = 1 (normalized).
/// let model = CostModel::new(6.0, 1.0);
/// assert!(model.is_sensible_block(8));
/// assert!(model.placement_conflict(8) < model.conventional_conflict_worst(8));
/// assert_eq!(model.placement_advantage(8), 6.0 + 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    migration: f64,
    message: f64,
}

impl CostModel {
    /// Creates a model with migration cost `m` and message cost `c`.
    ///
    /// # Panics
    ///
    /// Panics unless both costs are finite and positive; the paper further
    /// assumes `M > C` ("naturally M > C"), which is asserted as well.
    #[must_use]
    pub fn new(m: f64, c: f64) -> Self {
        assert!(m.is_finite() && m > 0.0, "migration cost must be positive");
        assert!(c.is_finite() && c > 0.0, "message cost must be positive");
        assert!(m > c, "a migration must cost more than a message (M > C)");
        CostModel {
            migration: m,
            message: c,
        }
    }

    /// The paper's normalized simulation parameters: `M = 6`, `C = 1`.
    #[must_use]
    pub fn paper() -> Self {
        CostModel::new(6.0, 1.0)
    }

    /// Migration cost `M`.
    #[must_use]
    pub fn migration(&self) -> f64 {
        self.migration
    }

    /// Message cost `C`.
    #[must_use]
    pub fn message(&self) -> f64 {
        self.message
    }

    /// Whether a block of `n` invocations satisfies the sensibility
    /// criterion `N·C > M`.
    #[must_use]
    pub fn is_sensible_block(&self, n: u64) -> bool {
        n as f64 * self.message > self.migration
    }

    /// The smallest call count that makes a move-block sensible.
    #[must_use]
    pub fn min_sensible_calls(&self) -> u64 {
        // smallest integer n with n·C > M
        (self.migration / self.message).floor() as u64 + 1
    }

    /// Cost of executing a block of `n` invocations purely remotely (no
    /// migration at all): `2N·C`.
    #[must_use]
    pub fn remote_block(&self, n: u64) -> f64 {
        2.0 * n as f64 * self.message
    }

    /// Cost of an uncontended, granted move-block: one move-request message,
    /// one migration, `n` local calls: `M + C`.
    #[must_use]
    pub fn uncontended_move(&self, _n: u64) -> f64 {
        self.migration + self.message
    }

    /// §3.2, place-policy under the two-mover conflict: `M + (2N + 1)·C`.
    #[must_use]
    pub fn placement_conflict(&self, n: u64) -> f64 {
        self.migration + (2 * n + 1) as f64 * self.message
    }

    /// §3.2, conventional move worst case under the two-mover conflict:
    /// `2M + (2N + 2)·C`.
    #[must_use]
    pub fn conventional_conflict_worst(&self, n: u64) -> f64 {
        2.0 * self.migration + (2 * n + 2) as f64 * self.message
    }

    /// How much placement saves over the conventional worst case: always
    /// `M + C`, independent of `N`.
    #[must_use]
    pub fn placement_advantage(&self, n: u64) -> f64 {
        self.conventional_conflict_worst(n) - self.placement_conflict(n)
    }

    /// Cost of migrating an attachment closure of `k` objects (each of unit
    /// size): `k·M`. This is the quantity a mover *underestimates* when other
    /// applications have silently enlarged the transitive closure (§2.4).
    #[must_use]
    pub fn closure_migration(&self, k: usize) -> f64 {
        k as f64 * self.migration
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

/// Closed-form predictions for the sedentary baseline, used to anchor the
/// simulator (§4.2.1's "the mean duration of a call for sedentary nodes is
/// 4/3" sanity check, generalized).
///
/// A client picks uniformly among `servers`; `local` of them sit on the
/// client's own node. A local call is free, a remote one costs a call plus a
/// result message (2·C):
///
/// ```
/// use oml_core::cost::sedentary_call_time;
///
/// // the paper's Fig. 8 world: 3 servers, 1 per node → 4/3
/// assert!((sedentary_call_time(3, 1, 1.0) - 4.0 / 3.0).abs() < 1e-12);
/// // the Fig. 12 world: servers and clients mostly apart → 2
/// assert_eq!(sedentary_call_time(3, 0, 1.0), 2.0);
/// ```
///
/// # Panics
///
/// Panics if `servers == 0`, `local > servers`, or `message_cost` is not
/// finite and positive.
#[must_use]
pub fn sedentary_call_time(servers: u32, local: u32, message_cost: f64) -> f64 {
    assert!(servers > 0, "a client needs servers");
    assert!(local <= servers, "more local servers than servers");
    assert!(
        message_cost.is_finite() && message_cost > 0.0,
        "message cost must be positive"
    );
    let p_remote = 1.0 - f64::from(local) / f64::from(servers);
    2.0 * message_cost * p_remote
}

/// Closed-form prediction for the *uncontended* migrating client in the
/// steady state: once the object lives at the client's node, a block only
/// pays when it picks a server that is not already local. With one client
/// and `servers` servers kept at the client's node by its own moves, the
/// steady-state cost per call tends to `0`; with the servers initially
/// spread one per node, the transient per-block cost is `(M + C)·p_remote`
/// amortized over `n` calls.
#[must_use]
pub fn uncontended_block_cost_per_call(model: &CostModel, n: u64, p_remote: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_remote), "p_remote is a probability");
    p_remote * (model.migration() + model.message()) / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let m = CostModel::paper();
        assert_eq!(m.migration(), 6.0);
        assert_eq!(m.message(), 1.0);
        // the worked example in §3.2 with N = 8:
        assert_eq!(m.placement_conflict(8), 6.0 + 17.0);
        assert_eq!(m.conventional_conflict_worst(8), 12.0 + 18.0);
    }

    #[test]
    fn placement_always_beats_conventional_worst_case() {
        for &(m, c) in &[(6.0, 1.0), (2.0, 1.0), (100.0, 0.5), (1.5, 1.0)] {
            let model = CostModel::new(m, c);
            for n in 1..200 {
                assert!(
                    model.placement_conflict(n) < model.conventional_conflict_worst(n),
                    "m={m} c={c} n={n}"
                );
                assert!((model.placement_advantage(n) - (m + c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sensibility_threshold() {
        let m = CostModel::paper();
        assert!(!m.is_sensible_block(6)); // 6·1 = 6, not > 6
        assert!(m.is_sensible_block(7));
        assert_eq!(m.min_sensible_calls(), 7);
    }

    #[test]
    fn min_sensible_calls_is_tight() {
        for &(mig, msg) in &[(6.0, 1.0), (5.5, 1.0), (10.0, 3.0)] {
            let m = CostModel::new(mig, msg);
            let n = m.min_sensible_calls();
            assert!(m.is_sensible_block(n));
            assert!(!m.is_sensible_block(n - 1));
        }
    }

    #[test]
    fn closure_migration_scales_linearly() {
        let m = CostModel::paper();
        assert_eq!(m.closure_migration(0), 0.0);
        assert_eq!(m.closure_migration(1), 6.0);
        assert_eq!(m.closure_migration(12), 72.0);
    }

    #[test]
    fn remote_block_is_two_messages_per_call() {
        let m = CostModel::paper();
        assert_eq!(m.remote_block(8), 16.0);
    }

    #[test]
    #[should_panic(expected = "M > C")]
    fn message_dearer_than_migration_is_rejected() {
        let _ = CostModel::new(0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "migration cost must be positive")]
    fn nonpositive_migration_rejected() {
        let _ = CostModel::new(0.0, 1.0);
    }

    #[test]
    fn sedentary_predictions() {
        assert!((sedentary_call_time(3, 1, 1.0) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(sedentary_call_time(1, 1, 1.0), 0.0);
        assert_eq!(sedentary_call_time(4, 0, 0.5), 1.0);
    }

    #[test]
    #[should_panic(expected = "more local servers")]
    fn sedentary_rejects_impossible_locality() {
        let _ = sedentary_call_time(2, 3, 1.0);
    }

    #[test]
    fn uncontended_block_cost_scales() {
        let m = CostModel::paper();
        // 2/3 remote picks, M + C = 7 per migration, 8 calls per block
        let v = uncontended_block_cost_per_call(&m, 8, 2.0 / 3.0);
        assert!((v - 7.0 * 2.0 / 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(uncontended_block_cost_per_call(&m, 0, 0.5), 3.5);
    }
}
