//! The attachment graph: `attach()` / `detach()` and its closure semantics
//! (§2.2, §3.4).
//!
//! `attach(o, to)` asks the system to keep `o` together with `to` until an
//! explicit `detach`. Attachment is *transitive*: migrating any object drags
//! the whole connected component along. In a non-monolithic system that
//! transitive closure silently grows beyond what any single application
//! predicted — the paper's central hazard. This module implements the three
//! semantics the paper analyses:
//!
//! * [`AttachmentMode::Unrestricted`] — classic behaviour: the closure is the
//!   connected component over *all* attachment edges.
//! * [`AttachmentMode::ATransitive`] — each edge carries a cooperation
//!   context (an alliance); the closure followed by a migration is restricted
//!   to edges of the alliance the migration primitive was invoked in.
//! * [`AttachmentMode::Exclusive`] — first-come-first-served: an object may
//!   be latched to at most one target; later `attach` calls on it are
//!   silently ignored (§3.4's cheaper alternative that needs no new
//!   construct).
//!
//! Edges are *directed* at bookkeeping level (`attach(o, to)` records
//! `o → to`, mirroring the primitive's asymmetry and making "o may be latched
//! only once" well defined for the exclusive mode) but *undirected* for
//! closure traversal, because the system keeps both endpoints together
//! regardless of who asked.

use crate::alliance::AllianceRegistry;
use crate::error::AttachError;
use crate::ids::{AllianceId, ObjectId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// System-wide attachment semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AttachmentMode {
    /// Conventional fully transitive attachment.
    #[default]
    Unrestricted,
    /// Alliance-scoped transitiveness (§3.4).
    ATransitive,
    /// At most one outgoing attachment per object, first-come-first-served.
    Exclusive,
}

impl std::fmt::Display for AttachmentMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttachmentMode::Unrestricted => "unrestricted",
            AttachmentMode::ATransitive => "a-transitive",
            AttachmentMode::Exclusive => "exclusive",
        };
        f.write_str(s)
    }
}

/// What an `attach` call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachOutcome {
    /// A new edge was recorded.
    Attached,
    /// The identical edge (same endpoints, same context) already existed.
    AlreadyAttached,
    /// The edge existed with a different context; the context was replaced.
    Retagged,
    /// Exclusive mode: the object already has an attachment, the call was
    /// ignored (the paper: "all additional attachments for this object are
    /// ignored").
    IgnoredExclusive,
}

/// How a closure query walks the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traversal {
    /// Follow every edge (conventional transitive attachment).
    AllEdges,
    /// Follow only edges whose cooperation context equals the given one
    /// (A-transitive attachment; `None` selects context-free edges).
    Context(Option<AllianceId>),
}

/// The attachment relation over all objects.
///
/// # Example
///
/// ```
/// use oml_core::attach::{AttachmentGraph, AttachmentMode, Traversal};
/// use oml_core::ids::{AllianceId, ObjectId};
///
/// let mut g = AttachmentGraph::new(AttachmentMode::ATransitive);
/// let (s1, s2a, s2b) = (ObjectId::new(0), ObjectId::new(1), ObjectId::new(2));
/// let work = Some(AllianceId::new(0));
/// let other = Some(AllianceId::new(1));
///
/// g.attach(s2a, s1, work).unwrap();
/// g.attach(s2b, s1, other).unwrap();
///
/// // A migration invoked in the `work` alliance drags only s2a along…
/// let ws = g.closure(s1, Traversal::Context(work));
/// assert!(ws.contains(&s2a) && !ws.contains(&s2b));
/// // …while the unrestricted closure would take everything.
/// assert_eq!(g.closure(s1, Traversal::AllEdges).len(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttachmentGraph {
    mode: AttachmentMode,
    /// `outgoing[o][to] = context` for every `attach(o, to, context)`.
    outgoing: BTreeMap<ObjectId, BTreeMap<ObjectId, Option<AllianceId>>>,
    /// Reverse adjacency for undirected traversal.
    incoming: BTreeMap<ObjectId, BTreeSet<ObjectId>>,
    edge_count: usize,
}

impl AttachmentGraph {
    /// Creates an empty graph with the given semantics.
    #[must_use]
    pub fn new(mode: AttachmentMode) -> Self {
        AttachmentGraph {
            mode,
            outgoing: BTreeMap::new(),
            incoming: BTreeMap::new(),
            edge_count: 0,
        }
    }

    /// The semantics this graph was created with.
    #[must_use]
    pub fn mode(&self) -> AttachmentMode {
        self.mode
    }

    /// `attach(object, to)` — ask the system to keep `object` with `to`.
    ///
    /// `context` names the alliance the cooperation belongs to (`None` for a
    /// context-free attachment). Membership is *not* validated here; use
    /// [`AttachmentGraph::attach_checked`] when a registry is available.
    ///
    /// # Errors
    ///
    /// Returns [`AttachError::SelfAttachment`] if `object == to`.
    pub fn attach(
        &mut self,
        object: ObjectId,
        to: ObjectId,
        context: Option<AllianceId>,
    ) -> Result<AttachOutcome, AttachError> {
        if object == to {
            return Err(AttachError::SelfAttachment(object));
        }
        if self.mode == AttachmentMode::Exclusive {
            let already = self.outgoing.get(&object).is_some_and(|m| !m.is_empty());
            if already && !self.contains_edge(object, to) {
                return Ok(AttachOutcome::IgnoredExclusive);
            }
        }
        let slot = self.outgoing.entry(object).or_default();
        match slot.insert(to, context) {
            None => {
                self.incoming.entry(to).or_default().insert(object);
                self.edge_count += 1;
                Ok(AttachOutcome::Attached)
            }
            Some(old) if old == context => Ok(AttachOutcome::AlreadyAttached),
            Some(_) => Ok(AttachOutcome::Retagged),
        }
    }

    /// Like [`AttachmentGraph::attach`], but also validates that both
    /// endpoints belong to the named alliance.
    ///
    /// # Errors
    ///
    /// In addition to [`AttachError::SelfAttachment`], returns
    /// [`AttachError::UnknownAlliance`] or [`AttachError::NotAllianceMember`]
    /// when a context is given and membership does not hold.
    pub fn attach_checked(
        &mut self,
        object: ObjectId,
        to: ObjectId,
        context: Option<AllianceId>,
        registry: &AllianceRegistry,
    ) -> Result<AttachOutcome, AttachError> {
        if let Some(alliance) = context {
            if !registry.exists(alliance) {
                return Err(AttachError::UnknownAlliance(alliance));
            }
            for end in [object, to] {
                if !registry.is_member(alliance, end) {
                    return Err(AttachError::NotAllianceMember {
                        object: end,
                        alliance,
                    });
                }
            }
        }
        self.attach(object, to, context)
    }

    /// `detach(object, to)` — removes the attachment recorded by
    /// `attach(object, to)`. Returns whether an edge was removed.
    pub fn detach(&mut self, object: ObjectId, to: ObjectId) -> bool {
        let removed = self
            .outgoing
            .get_mut(&object)
            .is_some_and(|m| m.remove(&to).is_some());
        if removed {
            if let Some(rev) = self.incoming.get_mut(&to) {
                rev.remove(&object);
            }
            self.edge_count -= 1;
        }
        removed
    }

    /// Removes every edge touching `object` (used when an object is
    /// destroyed). Returns the number of edges removed.
    pub fn detach_all(&mut self, object: ObjectId) -> usize {
        let mut removed = 0;
        if let Some(out) = self.outgoing.remove(&object) {
            for to in out.keys() {
                if let Some(rev) = self.incoming.get_mut(to) {
                    rev.remove(&object);
                }
            }
            removed += out.len();
        }
        if let Some(srcs) = self.incoming.remove(&object) {
            for src in srcs {
                if let Some(out) = self.outgoing.get_mut(&src) {
                    if out.remove(&object).is_some() {
                        removed += 1;
                    }
                }
            }
        }
        self.edge_count -= removed;
        removed
    }

    /// Whether the directed edge `object → to` exists.
    #[must_use]
    pub fn contains_edge(&self, object: ObjectId, to: ObjectId) -> bool {
        self.outgoing
            .get(&object)
            .is_some_and(|m| m.contains_key(&to))
    }

    /// The context of the edge `object → to`, if the edge exists.
    ///
    /// `Some(None)` means the edge exists without a cooperation context.
    #[must_use]
    pub fn edge_context(&self, object: ObjectId, to: ObjectId) -> Option<Option<AllianceId>> {
        self.outgoing.get(&object).and_then(|m| m.get(&to)).copied()
    }

    /// Total number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of outgoing attachments of `object`.
    #[must_use]
    pub fn out_degree(&self, object: ObjectId) -> usize {
        self.outgoing.get(&object).map_or(0, BTreeMap::len)
    }

    /// Neighbours of `object` reachable in one undirected step under the
    /// given traversal, in id order.
    pub fn neighbours(&self, object: ObjectId, traversal: Traversal) -> Vec<ObjectId> {
        let mut out: BTreeSet<ObjectId> = BTreeSet::new();
        if let Some(m) = self.outgoing.get(&object) {
            for (&to, &ctx) in m {
                if traversal_admits(traversal, ctx) {
                    out.insert(to);
                }
            }
        }
        if let Some(srcs) = self.incoming.get(&object) {
            for &src in srcs {
                let ctx = self.outgoing[&src][&object];
                if traversal_admits(traversal, ctx) {
                    out.insert(src);
                }
            }
        }
        out.into_iter().collect()
    }

    /// The transitive closure of `start` under the given traversal — the set
    /// of objects the system must migrate together with `start`.
    ///
    /// Always contains `start` itself.
    pub fn closure(&self, start: ObjectId, traversal: Traversal) -> BTreeSet<ObjectId> {
        let mut seen: BTreeSet<ObjectId> = BTreeSet::new();
        let mut frontier = VecDeque::new();
        seen.insert(start);
        frontier.push_back(start);
        while let Some(obj) = frontier.pop_front() {
            for next in self.neighbours(obj, traversal) {
                if seen.insert(next) {
                    frontier.push_back(next);
                }
            }
        }
        seen
    }

    /// The closure a migration invoked in `context` must move, respecting the
    /// graph's [`AttachmentMode`]:
    ///
    /// * `Unrestricted` / `Exclusive` — the full connected component (the
    ///   exclusive mode constrains the graph at attach time instead),
    /// * `ATransitive` — only edges of `context`.
    pub fn migration_closure(
        &self,
        start: ObjectId,
        context: Option<AllianceId>,
    ) -> BTreeSet<ObjectId> {
        let traversal = match self.mode {
            AttachmentMode::Unrestricted | AttachmentMode::Exclusive => Traversal::AllEdges,
            AttachmentMode::ATransitive => Traversal::Context(context),
        };
        self.closure(start, traversal)
    }

    /// All objects that currently appear in at least one edge, in id order.
    pub fn attached_objects(&self) -> BTreeSet<ObjectId> {
        let mut set: BTreeSet<ObjectId> = BTreeSet::new();
        for (from, tos) in &self.outgoing {
            if !tos.is_empty() {
                set.insert(*from);
                set.extend(tos.keys().copied());
            }
        }
        set
    }
}

impl Default for AttachmentGraph {
    fn default() -> Self {
        AttachmentGraph::new(AttachmentMode::Unrestricted)
    }
}

fn traversal_admits(traversal: Traversal, edge_ctx: Option<AllianceId>) -> bool {
    match traversal {
        Traversal::AllEdges => true,
        Traversal::Context(ctx) => edge_ctx == ctx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn ally(i: u32) -> Option<AllianceId> {
        Some(AllianceId::new(i))
    }

    #[test]
    fn attach_and_closure_are_undirected() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        // closure from either endpoint contains both
        assert!(g.closure(obj(1), Traversal::AllEdges).contains(&obj(2)));
        assert!(g.closure(obj(2), Traversal::AllEdges).contains(&obj(1)));
    }

    #[test]
    fn closure_always_contains_start() {
        let g = AttachmentGraph::default();
        let c = g.closure(obj(7), Traversal::AllEdges);
        assert_eq!(c.len(), 1);
        assert!(c.contains(&obj(7)));
    }

    #[test]
    fn transitive_chaining_of_overlapping_working_sets() {
        // S1a → S2x ← S1b: the paper's overlap hazard.
        let mut g = AttachmentGraph::default();
        g.attach(obj(10), obj(1), None).unwrap(); // s2x latched by s1a
        g.attach(obj(10), obj(2), None).unwrap(); // s2x also latched by s1b (unrestricted allows it)
        let c = g.closure(obj(1), Traversal::AllEdges);
        assert!(c.contains(&obj(2)), "overlap chains both working sets");
    }

    #[test]
    fn a_transitive_cuts_foreign_context_edges() {
        let mut g = AttachmentGraph::new(AttachmentMode::ATransitive);
        g.attach(obj(2), obj(1), ally(0)).unwrap();
        g.attach(obj(3), obj(1), ally(1)).unwrap();
        g.attach(obj(4), obj(3), ally(1)).unwrap();
        let ws0 = g.migration_closure(obj(1), ally(0));
        assert_eq!(ws0.into_iter().collect::<Vec<_>>(), vec![obj(1), obj(2)]);
        let ws1 = g.migration_closure(obj(1), ally(1));
        assert_eq!(
            ws1.into_iter().collect::<Vec<_>>(),
            vec![obj(1), obj(3), obj(4)]
        );
    }

    #[test]
    fn a_transitive_with_no_context_follows_untagged_edges_only() {
        let mut g = AttachmentGraph::new(AttachmentMode::ATransitive);
        g.attach(obj(2), obj(1), None).unwrap();
        g.attach(obj(3), obj(1), ally(0)).unwrap();
        let ws = g.migration_closure(obj(1), None);
        assert_eq!(ws.into_iter().collect::<Vec<_>>(), vec![obj(1), obj(2)]);
    }

    #[test]
    fn unrestricted_mode_ignores_contexts_for_migration() {
        let mut g = AttachmentGraph::new(AttachmentMode::Unrestricted);
        g.attach(obj(2), obj(1), ally(0)).unwrap();
        g.attach(obj(3), obj(1), ally(1)).unwrap();
        assert_eq!(g.migration_closure(obj(1), ally(0)).len(), 3);
    }

    #[test]
    fn exclusive_mode_is_first_come_first_served() {
        let mut g = AttachmentGraph::new(AttachmentMode::Exclusive);
        assert_eq!(
            g.attach(obj(5), obj(1), None).unwrap(),
            AttachOutcome::Attached
        );
        assert_eq!(
            g.attach(obj(5), obj(2), None).unwrap(),
            AttachOutcome::IgnoredExclusive
        );
        assert!(!g.contains_edge(obj(5), obj(2)));
        // but the same edge can be re-issued
        assert_eq!(
            g.attach(obj(5), obj(1), None).unwrap(),
            AttachOutcome::AlreadyAttached
        );
        // and stars around a hub are allowed (many incoming edges)
        assert_eq!(
            g.attach(obj(6), obj(1), None).unwrap(),
            AttachOutcome::Attached
        );
    }

    #[test]
    fn duplicate_and_retag_outcomes() {
        let mut g = AttachmentGraph::default();
        assert_eq!(
            g.attach(obj(1), obj(2), ally(0)).unwrap(),
            AttachOutcome::Attached
        );
        assert_eq!(
            g.attach(obj(1), obj(2), ally(0)).unwrap(),
            AttachOutcome::AlreadyAttached
        );
        assert_eq!(
            g.attach(obj(1), obj(2), ally(1)).unwrap(),
            AttachOutcome::Retagged
        );
        assert_eq!(g.edge_context(obj(1), obj(2)), Some(ally(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_attachment_is_rejected() {
        let mut g = AttachmentGraph::default();
        assert_eq!(
            g.attach(obj(3), obj(3), None),
            Err(AttachError::SelfAttachment(obj(3)))
        );
    }

    #[test]
    fn detach_restores_independence() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        assert!(g.detach(obj(1), obj(2)));
        assert!(!g.detach(obj(1), obj(2)));
        assert_eq!(g.closure(obj(1), Traversal::AllEdges).len(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn detach_is_directional() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        // detaching in the wrong direction does nothing
        assert!(!g.detach(obj(2), obj(1)));
        assert!(g.contains_edge(obj(1), obj(2)));
    }

    #[test]
    fn detach_all_cleans_both_directions() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        g.attach(obj(3), obj(1), None).unwrap();
        g.attach(obj(4), obj(5), None).unwrap();
        assert_eq!(g.detach_all(obj(1)), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.closure(obj(2), Traversal::AllEdges).len(), 1);
        assert_eq!(g.closure(obj(3), Traversal::AllEdges).len(), 1);
    }

    #[test]
    fn attach_checked_validates_membership() {
        let mut reg = AllianceRegistry::new();
        let a = reg.create("ws");
        reg.join(a, obj(1)).unwrap();
        let mut g = AttachmentGraph::new(AttachmentMode::ATransitive);
        let err = g.attach_checked(obj(1), obj(2), Some(a), &reg).unwrap_err();
        assert_eq!(
            err,
            AttachError::NotAllianceMember {
                object: obj(2),
                alliance: a
            }
        );
        reg.join(a, obj(2)).unwrap();
        assert_eq!(
            g.attach_checked(obj(1), obj(2), Some(a), &reg).unwrap(),
            AttachOutcome::Attached
        );
        let ghost = AllianceId::new(42);
        assert_eq!(
            g.attach_checked(obj(1), obj(3), Some(ghost), &reg)
                .unwrap_err(),
            AttachError::UnknownAlliance(ghost)
        );
    }

    #[test]
    fn neighbours_are_sorted_and_deduplicated() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(3), None).unwrap();
        g.attach(obj(3), obj(1), None).unwrap(); // mutual edges
        g.attach(obj(1), obj(2), None).unwrap();
        assert_eq!(
            g.neighbours(obj(1), Traversal::AllEdges),
            vec![obj(2), obj(3)]
        );
    }

    #[test]
    fn attached_objects_lists_every_endpoint() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        g.attach(obj(4), obj(2), None).unwrap();
        let objs = g.attached_objects();
        assert_eq!(
            objs.into_iter().collect::<Vec<_>>(),
            vec![obj(1), obj(2), obj(4)]
        );
    }

    #[test]
    fn mode_is_reported() {
        assert_eq!(
            AttachmentGraph::new(AttachmentMode::Exclusive).mode(),
            AttachmentMode::Exclusive
        );
        assert_eq!(AttachmentMode::default(), AttachmentMode::Unrestricted);
        assert_eq!(AttachmentMode::ATransitive.to_string(), "a-transitive");
    }
}
