//! The attachment graph: `attach()` / `detach()` and its closure semantics
//! (§2.2, §3.4).
//!
//! `attach(o, to)` asks the system to keep `o` together with `to` until an
//! explicit `detach`. Attachment is *transitive*: migrating any object drags
//! the whole connected component along. In a non-monolithic system that
//! transitive closure silently grows beyond what any single application
//! predicted — the paper's central hazard. This module implements the three
//! semantics the paper analyses:
//!
//! * [`AttachmentMode::Unrestricted`] — classic behaviour: the closure is the
//!   connected component over *all* attachment edges.
//! * [`AttachmentMode::ATransitive`] — each edge carries a cooperation
//!   context (an alliance); the closure followed by a migration is restricted
//!   to edges of the alliance the migration primitive was invoked in.
//! * [`AttachmentMode::Exclusive`] — first-come-first-served: an object may
//!   be latched to at most one target; later `attach` calls on it are
//!   silently ignored (§3.4's cheaper alternative that needs no new
//!   construct).
//!
//! Edges are *directed* at bookkeeping level (`attach(o, to)` records
//! `o → to`, mirroring the primitive's asymmetry and making "o may be latched
//! only once" well defined for the exclusive mode) but *undirected* for
//! closure traversal, because the system keeps both endpoints together
//! regardless of who asked.
//!
//! # Representation
//!
//! Objects are interned into dense `u32` slots on first contact, and the
//! graph is stored slot-indexed: `Vec`-of-`Vec` adjacency instead of nested
//! `BTreeMap`s. Connected components are maintained *incrementally* by a
//! union-find per traversal universe — one global structure for the
//! all-edges view, one per alliance context under A-transitive semantics.
//! Each union-find additionally threads its members on circular linked lists
//! (merged in O(1) at `union`), so a whole component can be enumerated in
//! O(component) without touching the rest of the arena. `attach` unions;
//! `detach` only marks the surrounding component dirty, and the component is
//! rebuilt from the surviving edges on the next closure query that hits it
//! (detach is rare, so the rebuild amortises to nothing). The result:
//! [`AttachmentGraph::migration_closure_into`] fills a caller-owned
//! [`ClosureScratch`] without a single heap allocation in steady state. The
//! `BTreeSet`-returning [`AttachmentGraph::closure`] BFS survives unchanged
//! for shared-reference callers and as an independently-implemented oracle.

use crate::alliance::AllianceRegistry;
use crate::error::AttachError;
use crate::ids::{AllianceId, ObjectId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// System-wide attachment semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AttachmentMode {
    /// Conventional fully transitive attachment.
    #[default]
    Unrestricted,
    /// Alliance-scoped transitiveness (§3.4).
    ATransitive,
    /// At most one outgoing attachment per object, first-come-first-served.
    Exclusive,
}

impl std::fmt::Display for AttachmentMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttachmentMode::Unrestricted => "unrestricted",
            AttachmentMode::ATransitive => "a-transitive",
            AttachmentMode::Exclusive => "exclusive",
        };
        f.write_str(s)
    }
}

/// What an `attach` call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachOutcome {
    /// A new edge was recorded.
    Attached,
    /// The identical edge (same endpoints, same context) already existed.
    AlreadyAttached,
    /// The edge existed with a different context; the context was replaced.
    Retagged,
    /// Exclusive mode: the object already has an attachment, the call was
    /// ignored (the paper: "all additional attachments for this object are
    /// ignored").
    IgnoredExclusive,
}

/// How a closure query walks the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traversal {
    /// Follow every edge (conventional transitive attachment).
    AllEdges,
    /// Follow only edges whose cooperation context equals the given one
    /// (A-transitive attachment; `None` selects context-free edges).
    Context(Option<AllianceId>),
}

/// Sentinel for "object has no slot yet".
const NO_SLOT: u32 = u32::MAX;

/// Incremental connected components over one traversal universe: union-find
/// with path compression and union by rank, plus a circular linked list per
/// component (`next`) so members can be enumerated in O(component).
///
/// The `dirty` bit lives at the representative: a detach in the component
/// sets it, and the next query rebuilds the component's partition from the
/// surviving edges before answering.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Connectivity {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Circular successor in the component's member list.
    next: Vec<u32>,
    /// Meaningful at representatives only; stale bits below roots are
    /// cleared by the rebuild that visits them.
    dirty: Vec<bool>,
}

impl Connectivity {
    fn ensure(&mut self, n: usize) {
        while self.parent.len() < n {
            let s = u32::try_from(self.parent.len()).expect("slot count fits u32");
            self.parent.push(s);
            self.rank.push(0);
            self.next.push(s);
            self.dirty.push(false);
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while cur != root {
            let up = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = up;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let dirty = self.dirty[ra as usize] || self.dirty[rb as usize];
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.dirty[hi as usize] = dirty;
        // a and b sit on distinct cycles (ra != rb); swapping their
        // successors concatenates the two cycles into one.
        self.next.swap(a as usize, b as usize);
    }

    /// Flags the component of `x` for rebuild. A no-op for slots this
    /// structure has never seen (they are singletons by definition).
    fn mark_dirty(&mut self, x: u32) {
        if (x as usize) < self.parent.len() {
            let r = self.find(x);
            self.dirty[r as usize] = true;
        }
    }
}

/// Walks the member cycle of `start` into `buf` (clearing it first).
fn collect_cycle(conn: &Connectivity, start: u32, buf: &mut Vec<u32>) {
    buf.clear();
    let mut cur = start;
    loop {
        buf.push(cur);
        cur = conn.next[cur as usize];
        if cur == start {
            break;
        }
    }
}

/// Answers a closure query over `conn`, lazily rebuilding the component of
/// `start` if a detach dirtied it. On return `slots` holds the component's
/// members (unsorted).
///
/// Rebuild correctness rests on one invariant: the stale cycle of a dirty
/// component is always a *superset* of the true component — unions only ever
/// merge cycles, and detach removes edges without touching the lists. So
/// every surviving edge incident to a cycle member has its other endpoint on
/// the same cycle, and re-unioning the members along their admitted outgoing
/// edges re-derives the exact partition.
fn closure_into_slots(
    conn: &mut Connectivity,
    out: &[Vec<(u32, Option<AllianceId>)>],
    traversal: Traversal,
    start: u32,
    slots: &mut Vec<u32>,
) {
    conn.ensure(start as usize + 1);
    let root = conn.find(start);
    if conn.dirty[root as usize] {
        collect_cycle(conn, start, slots);
        for &m in slots.iter() {
            conn.parent[m as usize] = m;
            conn.rank[m as usize] = 0;
            conn.next[m as usize] = m;
            conn.dirty[m as usize] = false;
        }
        for &m in slots.iter() {
            for &(to, ctx) in &out[m as usize] {
                if traversal_admits(traversal, ctx) {
                    conn.union(m, to);
                }
            }
        }
    }
    collect_cycle(conn, start, slots);
}

/// Reusable buffers for [`AttachmentGraph::migration_closure_into`].
///
/// Keep one per caller and pass it to every query; after the first few
/// queries the buffers reach steady-state capacity and the closure path
/// stops allocating entirely.
#[derive(Debug, Clone, Default)]
pub struct ClosureScratch {
    members: Vec<ObjectId>,
    slots: Vec<u32>,
}

impl ClosureScratch {
    /// An empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        ClosureScratch::default()
    }

    /// The result of the last query: the closure members in ascending
    /// [`ObjectId`] order (always contains the query's start object).
    #[must_use]
    pub fn members(&self) -> &[ObjectId] {
        &self.members
    }
}

/// The attachment relation over all objects.
///
/// # Example
///
/// ```
/// use oml_core::attach::{AttachmentGraph, AttachmentMode, Traversal};
/// use oml_core::ids::{AllianceId, ObjectId};
///
/// let mut g = AttachmentGraph::new(AttachmentMode::ATransitive);
/// let (s1, s2a, s2b) = (ObjectId::new(0), ObjectId::new(1), ObjectId::new(2));
/// let work = Some(AllianceId::new(0));
/// let other = Some(AllianceId::new(1));
///
/// g.attach(s2a, s1, work).unwrap();
/// g.attach(s2b, s1, other).unwrap();
///
/// // A migration invoked in the `work` alliance drags only s2a along…
/// let ws = g.closure(s1, Traversal::Context(work));
/// assert!(ws.contains(&s2a) && !ws.contains(&s2b));
/// // …while the unrestricted closure would take everything.
/// assert_eq!(g.closure(s1, Traversal::AllEdges).len(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttachmentGraph {
    mode: AttachmentMode,
    /// Slot of a raw object id, or `NO_SLOT`.
    slot_of: Vec<u32>,
    /// Reverse map: the object interned at each slot.
    objects: Vec<ObjectId>,
    /// `out[s]` holds `(to_slot, context)` for every `attach(s, to, context)`.
    out: Vec<Vec<(u32, Option<AllianceId>)>>,
    /// Reverse adjacency (source slots) for undirected traversal.
    inc: Vec<Vec<u32>>,
    edge_count: usize,
    /// Components over all edges (drives `Unrestricted`/`Exclusive`
    /// migration closures).
    all_edges: Connectivity,
    /// Components per alliance context, maintained only under
    /// [`AttachmentMode::ATransitive`]. Contexts are few, so a linear-scan
    /// association list beats any map.
    per_context: Vec<(Option<AllianceId>, Connectivity)>,
}

impl AttachmentGraph {
    /// Creates an empty graph with the given semantics.
    #[must_use]
    pub fn new(mode: AttachmentMode) -> Self {
        AttachmentGraph {
            mode,
            slot_of: Vec::new(),
            objects: Vec::new(),
            out: Vec::new(),
            inc: Vec::new(),
            edge_count: 0,
            all_edges: Connectivity::default(),
            per_context: Vec::new(),
        }
    }

    /// The semantics this graph was created with.
    #[must_use]
    pub fn mode(&self) -> AttachmentMode {
        self.mode
    }

    fn slot(&self, o: ObjectId) -> Option<u32> {
        self.slot_of
            .get(o.index())
            .copied()
            .filter(|&s| s != NO_SLOT)
    }

    fn intern(&mut self, o: ObjectId) -> u32 {
        let idx = o.index();
        if idx >= self.slot_of.len() {
            self.slot_of.resize(idx + 1, NO_SLOT);
        }
        if self.slot_of[idx] != NO_SLOT {
            return self.slot_of[idx];
        }
        let s = u32::try_from(self.objects.len()).expect("slot count fits u32");
        self.slot_of[idx] = s;
        self.objects.push(o);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.all_edges.ensure(s as usize + 1);
        s
    }

    fn context_conn(&mut self, context: Option<AllianceId>) -> &mut Connectivity {
        if let Some(i) = self.per_context.iter().position(|(c, _)| *c == context) {
            &mut self.per_context[i].1
        } else {
            self.per_context.push((context, Connectivity::default()));
            &mut self.per_context.last_mut().expect("just pushed").1
        }
    }

    /// Records the connectivity effect of a new (or retagged) edge.
    fn connect(&mut self, a: u32, b: u32, context: Option<AllianceId>) {
        self.all_edges.union(a, b);
        if self.mode == AttachmentMode::ATransitive {
            let conn = self.context_conn(context);
            conn.ensure(a.max(b) as usize + 1);
            conn.union(a, b);
        }
    }

    /// Records the connectivity effect of removing an edge of `context`
    /// incident to `a`: flag the surrounding components for lazy rebuild.
    fn disconnect(&mut self, a: u32, context: Option<AllianceId>) {
        self.all_edges.mark_dirty(a);
        if self.mode == AttachmentMode::ATransitive {
            if let Some(i) = self.per_context.iter().position(|(c, _)| *c == context) {
                self.per_context[i].1.mark_dirty(a);
            }
        }
    }

    /// `attach(object, to)` — ask the system to keep `object` with `to`.
    ///
    /// `context` names the alliance the cooperation belongs to (`None` for a
    /// context-free attachment). Membership is *not* validated here; use
    /// [`AttachmentGraph::attach_checked`] when a registry is available.
    ///
    /// # Errors
    ///
    /// Returns [`AttachError::SelfAttachment`] if `object == to`.
    pub fn attach(
        &mut self,
        object: ObjectId,
        to: ObjectId,
        context: Option<AllianceId>,
    ) -> Result<AttachOutcome, AttachError> {
        if object == to {
            return Err(AttachError::SelfAttachment(object));
        }
        let s = self.intern(object);
        let t = self.intern(to);
        let existing = self.out[s as usize].iter().position(|&(o, _)| o == t);
        if self.mode == AttachmentMode::Exclusive
            && existing.is_none()
            && !self.out[s as usize].is_empty()
        {
            return Ok(AttachOutcome::IgnoredExclusive);
        }
        match existing {
            None => {
                self.out[s as usize].push((t, context));
                self.inc[t as usize].push(s);
                self.edge_count += 1;
                self.connect(s, t, context);
                Ok(AttachOutcome::Attached)
            }
            Some(i) => {
                let old = self.out[s as usize][i].1;
                if old == context {
                    Ok(AttachOutcome::AlreadyAttached)
                } else {
                    self.out[s as usize][i].1 = context;
                    self.disconnect(s, old);
                    self.connect(s, t, context);
                    Ok(AttachOutcome::Retagged)
                }
            }
        }
    }

    /// Like [`AttachmentGraph::attach`], but also validates that both
    /// endpoints belong to the named alliance.
    ///
    /// # Errors
    ///
    /// In addition to [`AttachError::SelfAttachment`], returns
    /// [`AttachError::UnknownAlliance`] or [`AttachError::NotAllianceMember`]
    /// when a context is given and membership does not hold.
    pub fn attach_checked(
        &mut self,
        object: ObjectId,
        to: ObjectId,
        context: Option<AllianceId>,
        registry: &AllianceRegistry,
    ) -> Result<AttachOutcome, AttachError> {
        if let Some(alliance) = context {
            if !registry.exists(alliance) {
                return Err(AttachError::UnknownAlliance(alliance));
            }
            for end in [object, to] {
                if !registry.is_member(alliance, end) {
                    return Err(AttachError::NotAllianceMember {
                        object: end,
                        alliance,
                    });
                }
            }
        }
        self.attach(object, to, context)
    }

    /// `detach(object, to)` — removes the attachment recorded by
    /// `attach(object, to)`. Returns whether an edge was removed.
    pub fn detach(&mut self, object: ObjectId, to: ObjectId) -> bool {
        let (Some(s), Some(t)) = (self.slot(object), self.slot(to)) else {
            return false;
        };
        let Some(i) = self.out[s as usize].iter().position(|&(o, _)| o == t) else {
            return false;
        };
        let (_, ctx) = self.out[s as usize].swap_remove(i);
        let j = self.inc[t as usize]
            .iter()
            .position(|&src| src == s)
            .expect("incoming list mirrors outgoing");
        self.inc[t as usize].swap_remove(j);
        self.edge_count -= 1;
        self.disconnect(s, ctx);
        true
    }

    /// Removes every edge touching `object` (used when an object is
    /// destroyed). Returns the number of edges removed.
    pub fn detach_all(&mut self, object: ObjectId) -> usize {
        let Some(s) = self.slot(object) else {
            return 0;
        };
        let outgoing = std::mem::take(&mut self.out[s as usize]);
        for &(t, ctx) in &outgoing {
            let j = self.inc[t as usize]
                .iter()
                .position(|&src| src == s)
                .expect("incoming list mirrors outgoing");
            self.inc[t as usize].swap_remove(j);
            self.disconnect(s, ctx);
        }
        let incoming = std::mem::take(&mut self.inc[s as usize]);
        for &src in &incoming {
            let i = self.out[src as usize]
                .iter()
                .position(|&(o, _)| o == s)
                .expect("outgoing list mirrors incoming");
            let (_, ctx) = self.out[src as usize].swap_remove(i);
            self.disconnect(s, ctx);
        }
        let removed = outgoing.len() + incoming.len();
        self.edge_count -= removed;
        removed
    }

    /// Whether the directed edge `object → to` exists.
    #[must_use]
    pub fn contains_edge(&self, object: ObjectId, to: ObjectId) -> bool {
        self.edge_context(object, to).is_some()
    }

    /// The context of the edge `object → to`, if the edge exists.
    ///
    /// `Some(None)` means the edge exists without a cooperation context.
    #[must_use]
    pub fn edge_context(&self, object: ObjectId, to: ObjectId) -> Option<Option<AllianceId>> {
        let (s, t) = (self.slot(object)?, self.slot(to)?);
        self.out[s as usize]
            .iter()
            .find(|&&(o, _)| o == t)
            .map(|&(_, ctx)| ctx)
    }

    /// Total number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of outgoing attachments of `object`.
    #[must_use]
    pub fn out_degree(&self, object: ObjectId) -> usize {
        self.slot(object).map_or(0, |s| self.out[s as usize].len())
    }

    /// Neighbours of `object` reachable in one undirected step under the
    /// given traversal, in id order.
    pub fn neighbours(&self, object: ObjectId, traversal: Traversal) -> Vec<ObjectId> {
        let Some(s) = self.slot(object) else {
            return Vec::new();
        };
        let mut result: Vec<ObjectId> = Vec::new();
        for &(t, ctx) in &self.out[s as usize] {
            if traversal_admits(traversal, ctx) {
                result.push(self.objects[t as usize]);
            }
        }
        for &src in &self.inc[s as usize] {
            let &(_, ctx) = self.out[src as usize]
                .iter()
                .find(|&&(o, _)| o == s)
                .expect("outgoing list mirrors incoming");
            if traversal_admits(traversal, ctx) {
                result.push(self.objects[src as usize]);
            }
        }
        result.sort_unstable();
        result.dedup();
        result
    }

    /// The transitive closure of `start` under the given traversal — the set
    /// of objects the system must migrate together with `start`.
    ///
    /// Always contains `start` itself. This is the shared-reference BFS; the
    /// migration hot path uses the allocation-free
    /// [`AttachmentGraph::migration_closure_into`] instead.
    pub fn closure(&self, start: ObjectId, traversal: Traversal) -> BTreeSet<ObjectId> {
        let mut seen: BTreeSet<ObjectId> = BTreeSet::new();
        let mut frontier = VecDeque::new();
        seen.insert(start);
        frontier.push_back(start);
        while let Some(obj) = frontier.pop_front() {
            for next in self.neighbours(obj, traversal) {
                if seen.insert(next) {
                    frontier.push_back(next);
                }
            }
        }
        seen
    }

    /// The closure a migration invoked in `context` must move, respecting the
    /// graph's [`AttachmentMode`]:
    ///
    /// * `Unrestricted` / `Exclusive` — the full connected component (the
    ///   exclusive mode constrains the graph at attach time instead),
    /// * `ATransitive` — only edges of `context`.
    pub fn migration_closure(
        &self,
        start: ObjectId,
        context: Option<AllianceId>,
    ) -> BTreeSet<ObjectId> {
        let traversal = match self.mode {
            AttachmentMode::Unrestricted | AttachmentMode::Exclusive => Traversal::AllEdges,
            AttachmentMode::ATransitive => Traversal::Context(context),
        };
        self.closure(start, traversal)
    }

    /// [`AttachmentGraph::migration_closure`] without the allocations: fills
    /// `scratch` with the closure members in ascending id order, reading the
    /// incrementally-maintained components (and rebuilding the one component
    /// a preceding `detach` may have dirtied).
    ///
    /// Takes `&mut self` for union-find path compression and lazy rebuilds;
    /// the answer is identical to `migration_closure` in every state.
    pub fn migration_closure_into(
        &mut self,
        start: ObjectId,
        context: Option<AllianceId>,
        scratch: &mut ClosureScratch,
    ) {
        scratch.members.clear();
        let Some(s) = self.slot(start) else {
            scratch.members.push(start);
            return;
        };
        match self.mode {
            AttachmentMode::Unrestricted | AttachmentMode::Exclusive => {
                closure_into_slots(
                    &mut self.all_edges,
                    &self.out,
                    Traversal::AllEdges,
                    s,
                    &mut scratch.slots,
                );
            }
            AttachmentMode::ATransitive => {
                let Some(i) = self.per_context.iter().position(|(c, _)| *c == context) else {
                    scratch.members.push(start);
                    return;
                };
                closure_into_slots(
                    &mut self.per_context[i].1,
                    &self.out,
                    Traversal::Context(context),
                    s,
                    &mut scratch.slots,
                );
            }
        }
        scratch
            .members
            .extend(scratch.slots.iter().map(|&sl| self.objects[sl as usize]));
        scratch.members.sort_unstable();
    }

    /// All objects that currently appear in at least one edge, in id order.
    pub fn attached_objects(&self) -> BTreeSet<ObjectId> {
        let mut set: BTreeSet<ObjectId> = BTreeSet::new();
        for (s, edges) in self.out.iter().enumerate() {
            if !edges.is_empty() {
                set.insert(self.objects[s]);
                set.extend(edges.iter().map(|&(t, _)| self.objects[t as usize]));
            }
        }
        set
    }
}

impl Default for AttachmentGraph {
    fn default() -> Self {
        AttachmentGraph::new(AttachmentMode::Unrestricted)
    }
}

fn traversal_admits(traversal: Traversal, edge_ctx: Option<AllianceId>) -> bool {
    match traversal {
        Traversal::AllEdges => true,
        Traversal::Context(ctx) => edge_ctx == ctx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    // wrapped so call sites read like the `Option<AllianceId>` parameters
    #[allow(clippy::unnecessary_wraps)]
    fn ally(i: u32) -> Option<AllianceId> {
        Some(AllianceId::new(i))
    }

    /// The incremental closure must agree with the BFS in every state.
    fn assert_closures_agree(g: &mut AttachmentGraph, start: ObjectId, ctx: Option<AllianceId>) {
        let bfs = g.migration_closure(start, ctx);
        let mut scratch = ClosureScratch::new();
        g.migration_closure_into(start, ctx, &mut scratch);
        assert_eq!(
            scratch.members().to_vec(),
            bfs.iter().copied().collect::<Vec<_>>(),
            "incremental closure diverged from BFS at {start:?} in {ctx:?}"
        );
    }

    #[test]
    fn attach_and_closure_are_undirected() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        // closure from either endpoint contains both
        assert!(g.closure(obj(1), Traversal::AllEdges).contains(&obj(2)));
        assert!(g.closure(obj(2), Traversal::AllEdges).contains(&obj(1)));
    }

    #[test]
    fn closure_always_contains_start() {
        let g = AttachmentGraph::default();
        let c = g.closure(obj(7), Traversal::AllEdges);
        assert_eq!(c.len(), 1);
        assert!(c.contains(&obj(7)));
    }

    #[test]
    fn transitive_chaining_of_overlapping_working_sets() {
        // S1a → S2x ← S1b: the paper's overlap hazard.
        let mut g = AttachmentGraph::default();
        g.attach(obj(10), obj(1), None).unwrap(); // s2x latched by s1a
        g.attach(obj(10), obj(2), None).unwrap(); // s2x also latched by s1b (unrestricted allows it)
        let c = g.closure(obj(1), Traversal::AllEdges);
        assert!(c.contains(&obj(2)), "overlap chains both working sets");
    }

    #[test]
    fn a_transitive_cuts_foreign_context_edges() {
        let mut g = AttachmentGraph::new(AttachmentMode::ATransitive);
        g.attach(obj(2), obj(1), ally(0)).unwrap();
        g.attach(obj(3), obj(1), ally(1)).unwrap();
        g.attach(obj(4), obj(3), ally(1)).unwrap();
        let ws0 = g.migration_closure(obj(1), ally(0));
        assert_eq!(ws0.into_iter().collect::<Vec<_>>(), vec![obj(1), obj(2)]);
        let ws1 = g.migration_closure(obj(1), ally(1));
        assert_eq!(
            ws1.into_iter().collect::<Vec<_>>(),
            vec![obj(1), obj(3), obj(4)]
        );
        assert_closures_agree(&mut g, obj(1), ally(0));
        assert_closures_agree(&mut g, obj(1), ally(1));
    }

    #[test]
    fn a_transitive_with_no_context_follows_untagged_edges_only() {
        let mut g = AttachmentGraph::new(AttachmentMode::ATransitive);
        g.attach(obj(2), obj(1), None).unwrap();
        g.attach(obj(3), obj(1), ally(0)).unwrap();
        let ws = g.migration_closure(obj(1), None);
        assert_eq!(ws.into_iter().collect::<Vec<_>>(), vec![obj(1), obj(2)]);
        assert_closures_agree(&mut g, obj(1), None);
    }

    #[test]
    fn unrestricted_mode_ignores_contexts_for_migration() {
        let mut g = AttachmentGraph::new(AttachmentMode::Unrestricted);
        g.attach(obj(2), obj(1), ally(0)).unwrap();
        g.attach(obj(3), obj(1), ally(1)).unwrap();
        assert_eq!(g.migration_closure(obj(1), ally(0)).len(), 3);
        assert_closures_agree(&mut g, obj(1), ally(0));
    }

    #[test]
    fn exclusive_mode_is_first_come_first_served() {
        let mut g = AttachmentGraph::new(AttachmentMode::Exclusive);
        assert_eq!(
            g.attach(obj(5), obj(1), None).unwrap(),
            AttachOutcome::Attached
        );
        assert_eq!(
            g.attach(obj(5), obj(2), None).unwrap(),
            AttachOutcome::IgnoredExclusive
        );
        assert!(!g.contains_edge(obj(5), obj(2)));
        // but the same edge can be re-issued
        assert_eq!(
            g.attach(obj(5), obj(1), None).unwrap(),
            AttachOutcome::AlreadyAttached
        );
        // and stars around a hub are allowed (many incoming edges)
        assert_eq!(
            g.attach(obj(6), obj(1), None).unwrap(),
            AttachOutcome::Attached
        );
        assert_closures_agree(&mut g, obj(5), None);
    }

    #[test]
    fn duplicate_and_retag_outcomes() {
        let mut g = AttachmentGraph::default();
        assert_eq!(
            g.attach(obj(1), obj(2), ally(0)).unwrap(),
            AttachOutcome::Attached
        );
        assert_eq!(
            g.attach(obj(1), obj(2), ally(0)).unwrap(),
            AttachOutcome::AlreadyAttached
        );
        assert_eq!(
            g.attach(obj(1), obj(2), ally(1)).unwrap(),
            AttachOutcome::Retagged
        );
        assert_eq!(g.edge_context(obj(1), obj(2)), Some(ally(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn retag_moves_the_edge_between_context_components() {
        let mut g = AttachmentGraph::new(AttachmentMode::ATransitive);
        g.attach(obj(1), obj(2), ally(0)).unwrap();
        assert_eq!(g.migration_closure(obj(1), ally(0)).len(), 2);
        assert_closures_agree(&mut g, obj(1), ally(0));
        g.attach(obj(1), obj(2), ally(1)).unwrap(); // retag 0 → 1
        assert_eq!(g.migration_closure(obj(1), ally(0)).len(), 1);
        assert_eq!(g.migration_closure(obj(1), ally(1)).len(), 2);
        assert_closures_agree(&mut g, obj(1), ally(0));
        assert_closures_agree(&mut g, obj(1), ally(1));
        assert_closures_agree(&mut g, obj(2), ally(0));
    }

    #[test]
    fn self_attachment_is_rejected() {
        let mut g = AttachmentGraph::default();
        assert_eq!(
            g.attach(obj(3), obj(3), None),
            Err(AttachError::SelfAttachment(obj(3)))
        );
    }

    #[test]
    fn detach_restores_independence() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        assert!(g.detach(obj(1), obj(2)));
        assert!(!g.detach(obj(1), obj(2)));
        assert_eq!(g.closure(obj(1), Traversal::AllEdges).len(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_closures_agree(&mut g, obj(1), None);
        assert_closures_agree(&mut g, obj(2), None);
    }

    #[test]
    fn detach_is_directional() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        // detaching in the wrong direction does nothing
        assert!(!g.detach(obj(2), obj(1)));
        assert!(g.contains_edge(obj(1), obj(2)));
    }

    #[test]
    fn detach_all_cleans_both_directions() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        g.attach(obj(3), obj(1), None).unwrap();
        g.attach(obj(4), obj(5), None).unwrap();
        assert_eq!(g.detach_all(obj(1)), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.closure(obj(2), Traversal::AllEdges).len(), 1);
        assert_eq!(g.closure(obj(3), Traversal::AllEdges).len(), 1);
        for o in [1, 2, 3, 4, 5] {
            assert_closures_agree(&mut g, obj(o), None);
        }
    }

    #[test]
    fn detach_splits_a_chain_and_the_lazy_rebuild_sees_it() {
        // 1 - 2 - 3 - 4, cut the middle edge: {1,2} and {3,4}.
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        g.attach(obj(2), obj(3), None).unwrap();
        g.attach(obj(3), obj(4), None).unwrap();
        let mut scratch = ClosureScratch::new();
        g.migration_closure_into(obj(1), None, &mut scratch);
        assert_eq!(scratch.members().len(), 4);
        assert!(g.detach(obj(2), obj(3)));
        g.migration_closure_into(obj(1), None, &mut scratch);
        assert_eq!(scratch.members(), &[obj(1), obj(2)]);
        g.migration_closure_into(obj(4), None, &mut scratch);
        assert_eq!(scratch.members(), &[obj(3), obj(4)]);
        // re-join and query again: the incremental structure must follow
        g.attach(obj(2), obj(4), None).unwrap();
        g.migration_closure_into(obj(3), None, &mut scratch);
        assert_eq!(scratch.members().len(), 4);
    }

    #[test]
    fn closure_scratch_is_reusable_across_graphs_and_queries() {
        let mut scratch = ClosureScratch::new();
        let mut g = AttachmentGraph::default();
        g.attach(obj(8), obj(9), None).unwrap();
        g.migration_closure_into(obj(8), None, &mut scratch);
        assert_eq!(scratch.members(), &[obj(8), obj(9)]);
        // an object the graph has never seen is its own closure
        g.migration_closure_into(obj(77), None, &mut scratch);
        assert_eq!(scratch.members(), &[obj(77)]);
    }

    #[test]
    fn attach_checked_validates_membership() {
        let mut reg = AllianceRegistry::new();
        let a = reg.create("ws");
        reg.join(a, obj(1)).unwrap();
        let mut g = AttachmentGraph::new(AttachmentMode::ATransitive);
        let err = g.attach_checked(obj(1), obj(2), Some(a), &reg).unwrap_err();
        assert_eq!(
            err,
            AttachError::NotAllianceMember {
                object: obj(2),
                alliance: a
            }
        );
        reg.join(a, obj(2)).unwrap();
        assert_eq!(
            g.attach_checked(obj(1), obj(2), Some(a), &reg).unwrap(),
            AttachOutcome::Attached
        );
        let ghost = AllianceId::new(42);
        assert_eq!(
            g.attach_checked(obj(1), obj(3), Some(ghost), &reg)
                .unwrap_err(),
            AttachError::UnknownAlliance(ghost)
        );
    }

    #[test]
    fn neighbours_are_sorted_and_deduplicated() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(3), None).unwrap();
        g.attach(obj(3), obj(1), None).unwrap(); // mutual edges
        g.attach(obj(1), obj(2), None).unwrap();
        assert_eq!(
            g.neighbours(obj(1), Traversal::AllEdges),
            vec![obj(2), obj(3)]
        );
    }

    #[test]
    fn attached_objects_lists_every_endpoint() {
        let mut g = AttachmentGraph::default();
        g.attach(obj(1), obj(2), None).unwrap();
        g.attach(obj(4), obj(2), None).unwrap();
        let objs = g.attached_objects();
        assert_eq!(
            objs.into_iter().collect::<Vec<_>>(),
            vec![obj(1), obj(2), obj(4)]
        );
    }

    #[test]
    fn interning_is_stable_under_sparse_ids() {
        // ids need not be contiguous; the arena interns on first contact
        let mut g = AttachmentGraph::default();
        g.attach(obj(1000), obj(3), None).unwrap();
        g.attach(obj(3), obj(500), None).unwrap();
        let mut scratch = ClosureScratch::new();
        g.migration_closure_into(obj(500), None, &mut scratch);
        assert_eq!(scratch.members(), &[obj(3), obj(500), obj(1000)]);
    }

    #[test]
    fn mode_is_reported() {
        assert_eq!(
            AttachmentGraph::new(AttachmentMode::Exclusive).mode(),
            AttachmentMode::Exclusive
        );
        assert_eq!(AttachmentMode::default(), AttachmentMode::Unrestricted);
        assert_eq!(AttachmentMode::ATransitive.to_string(), "a-transitive");
    }
}
