//! # oml-core — migration control for non-monolithic distributed applications
//!
//! This crate is the paper's primary contribution, as a reusable library:
//!
//! * the classic **linguistic primitives** for mobile objects — `fix` /
//!   `unfix` / `refix` ([`object::Mobility`]), `attach` / `detach`
//!   ([`attach::AttachmentGraph`]) and move-blocks — together with
//! * the **reinterpretations** that make them safe when *autonomously
//!   developed* components share objects:
//!   [`policies::TransientPlacement`] (a `move()` becomes
//!   migrate-if-unlocked, §3.2), the dynamic refinements
//!   [`policies::CompareNodes`] and [`policies::CompareAndReinstantiate`]
//!   (§3.3/§4.3), and **alliances** ([`alliance::AllianceRegistry`]) that
//!   restrict attachment transitiveness to explicit cooperation contexts
//!   (§3.4), plus the cheaper *exclusive attachment* variant.
//!
//! The crate is deliberately free of any execution substrate: the same policy
//! objects drive both the discrete-event simulator (`oml-sim`) and the real
//! threads-and-channels runtime (`oml-runtime`).
//!
//! # The conflict in one picture
//!
//! Two applications A and B share a server object `S`. A issues
//! `move(S)` and starts a burst of invocations; halfway through, B issues its
//! own `move(S)`. Under conventional semantics `S` immediately migrates to B,
//! so A's remaining calls (the ones `move` was supposed to make local) become
//! remote *and* the system pays a second full migration. Transient placement
//! instead answers B with a denial indication: B proceeds remotely, A keeps
//! its locality, and `S` migrates at most once — see [`cost`] for the §3.2
//! arithmetic and `oml-sim` for the full evaluation.
//!
//! # Example
//!
//! ```
//! use oml_core::ids::{BlockId, NodeId, ObjectId};
//! use oml_core::policy::{MoveDecision, MovePolicy, MoveRequest};
//! use oml_core::policies::TransientPlacement;
//!
//! let mut policy = TransientPlacement::new();
//! let obj = ObjectId::new(0);
//! let (n1, n2) = (NodeId::new(1), NodeId::new(2));
//!
//! // First mover wins and locks the object…
//! let first = MoveRequest { object: obj, at: n1, from: n2, block: BlockId::new(0) };
//! assert_eq!(policy.on_move(&first), MoveDecision::Grant);
//! policy.on_installed(obj, n2, BlockId::new(0));
//!
//! // …a concurrent mover is denied instead of stealing the object.
//! let second = MoveRequest { object: obj, at: n2, from: n1, block: BlockId::new(1) };
//! assert_eq!(policy.on_move(&second), MoveDecision::Deny);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// numeric casts are pervasive in the id newtypes and cost model; the rest
// are style calls this crate deliberately makes (documented per-lint)
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::elidable_lifetime_names,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    clippy::must_use_candidate,
    clippy::wildcard_imports
)]

pub mod alliance;
pub mod attach;
pub mod cost;
pub mod error;
pub mod ids;
pub mod lang;
pub mod lease;
pub mod object;
pub mod policies;
pub mod policy;
