//! The linguistic layer: operation declarations with `move`/`visit`
//! parameter modes (§2.3, Fig. 1).
//!
//! The paper's host language (GOM) lets an operation declare what should
//! happen to its object parameters:
//!
//! ```text
//! declare assign: visit job, move schedule -> bool;
//! ```
//!
//! A **move** parameter migrates to the callee for the duration of the call
//! (call-by-move); a **visit** parameter additionally migrates back when the
//! call completes (call-by-visit). These primitives "carry semantics": they
//! tie a migration to a well-defined validity span, which is exactly the
//! hook the transient-placement reinterpretation (§3.2) attaches to.
//!
//! This module parses and represents such declarations; `oml-runtime`
//! executes them (`Cluster::invoke_with_decl`).

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// How an object parameter is passed (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ParamMode {
    /// Ordinary remote reference — no migration.
    #[default]
    Ref,
    /// Call-by-move: the argument migrates to the callee and stays.
    Move,
    /// Call-by-visit: the argument migrates to the callee and back.
    Visit,
}

impl fmt::Display for ParamMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParamMode::Ref => "ref",
            ParamMode::Move => "move",
            ParamMode::Visit => "visit",
        };
        f.write_str(s)
    }
}

/// One declared parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Passing mode.
    pub mode: ParamMode,
}

/// A parsed operation declaration.
///
/// # Example
///
/// ```
/// use oml_core::lang::{OperationDecl, ParamMode};
///
/// // the exact example of the paper's Fig. 1
/// let decl: OperationDecl = "declare assign: visit job, move schedule -> bool"
///     .parse()
///     .unwrap();
/// assert_eq!(decl.name, "assign");
/// assert_eq!(decl.params.len(), 2);
/// assert_eq!(decl.params[0].mode, ParamMode::Visit);
/// assert_eq!(decl.params[1].mode, ParamMode::Move);
/// assert_eq!(decl.result.as_deref(), Some("bool"));
/// assert_eq!(decl.to_string(), "declare assign: visit job, move schedule -> bool");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperationDecl {
    /// Operation name.
    pub name: String,
    /// Declared parameters, in order.
    pub params: Vec<Param>,
    /// Result type name, if declared.
    pub result: Option<String>,
}

impl OperationDecl {
    /// Builds a declaration programmatically.
    #[must_use]
    pub fn new(name: &str, params: Vec<Param>, result: Option<&str>) -> Self {
        OperationDecl {
            name: name.to_owned(),
            params,
            result: result.map(str::to_owned),
        }
    }

    /// The passing modes, in parameter order.
    pub fn modes(&self) -> impl Iterator<Item = ParamMode> + '_ {
        self.params.iter().map(|p| p.mode)
    }

    /// Whether any parameter migrates (move or visit).
    #[must_use]
    pub fn migrates_parameters(&self) -> bool {
        self.params.iter().any(|p| p.mode != ParamMode::Ref)
    }
}

impl fmt::Display for OperationDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "declare {}:", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match p.mode {
                ParamMode::Ref => write!(f, " {}", p.name)?,
                mode => write!(f, " {mode} {}", p.name)?,
            }
        }
        if let Some(r) = &self.result {
            write!(f, " -> {r}")?;
        }
        Ok(())
    }
}

/// A declaration that failed to parse, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeclError {
    reason: String,
}

impl ParseDeclError {
    fn new(reason: impl Into<String>) -> Self {
        ParseDeclError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseDeclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid operation declaration: {}", self.reason)
    }
}

impl Error for ParseDeclError {}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

impl FromStr for OperationDecl {
    type Err = ParseDeclError;

    /// Parses `["declare"] name ":" [param ("," param)*] ["->" result] [";"]`
    /// where `param := ["move" | "visit"] ident`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim().trim_end_matches(';').trim();
        let s = s.strip_prefix("declare ").unwrap_or(s);

        let (name, rest) = s
            .split_once(':')
            .ok_or_else(|| ParseDeclError::new("missing `:` after the operation name"))?;
        let name = name.trim();
        if !is_ident(name) {
            return Err(ParseDeclError::new(format!(
                "`{name}` is not a valid operation name"
            )));
        }

        let (params_part, result) = match rest.split_once("->") {
            Some((p, r)) => {
                let r = r.trim();
                if !is_ident(r) {
                    return Err(ParseDeclError::new(format!(
                        "`{r}` is not a valid result type"
                    )));
                }
                (p, Some(r.to_owned()))
            }
            None => (rest, None),
        };

        let mut params = Vec::new();
        let params_part = params_part.trim();
        if !params_part.is_empty() {
            for raw in params_part.split(',') {
                let raw = raw.trim();
                let (mode, pname) = if let Some(p) = raw.strip_prefix("move ") {
                    (ParamMode::Move, p.trim())
                } else if let Some(p) = raw.strip_prefix("visit ") {
                    (ParamMode::Visit, p.trim())
                } else {
                    (ParamMode::Ref, raw)
                };
                if !is_ident(pname) {
                    return Err(ParseDeclError::new(format!(
                        "`{pname}` is not a valid parameter name"
                    )));
                }
                params.push(Param {
                    name: pname.to_owned(),
                    mode,
                });
            }
        }
        Ok(OperationDecl {
            name: name.to_owned(),
            params,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_fig1_example() {
        let d: OperationDecl = "declare assign: visit job, move schedule -> bool;"
            .parse()
            .unwrap();
        assert_eq!(d.name, "assign");
        assert_eq!(
            d.params,
            vec![
                Param {
                    name: "job".into(),
                    mode: ParamMode::Visit
                },
                Param {
                    name: "schedule".into(),
                    mode: ParamMode::Move
                },
            ]
        );
        assert_eq!(d.result.as_deref(), Some("bool"));
        assert!(d.migrates_parameters());
    }

    #[test]
    fn declare_keyword_and_semicolon_are_optional() {
        let a: OperationDecl = "f: move x".parse().unwrap();
        let b: OperationDecl = "declare f: move x;".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn plain_parameters_default_to_ref() {
        let d: OperationDecl = "lookup: key -> value".parse().unwrap();
        assert_eq!(d.params[0].mode, ParamMode::Ref);
        assert!(!d.migrates_parameters());
    }

    #[test]
    fn empty_parameter_list_is_allowed() {
        let d: OperationDecl = "ping: -> bool".parse().unwrap();
        assert!(d.params.is_empty());
        assert_eq!(d.result.as_deref(), Some("bool"));
        let d: OperationDecl = "tick:".parse().unwrap();
        assert!(d.params.is_empty());
        assert_eq!(d.result, None);
    }

    #[test]
    fn display_round_trips() {
        for src in [
            "declare assign: visit job, move schedule -> bool",
            "declare f: move x",
            "declare lookup: key -> value",
        ] {
            let d: OperationDecl = src.parse().unwrap();
            let re: OperationDecl = d.to_string().parse().unwrap();
            assert_eq!(d, re);
        }
    }

    #[test]
    fn rejects_malformed_declarations() {
        for bad in [
            "no colon here",
            "f: 9bad",
            "f: move 9x",
            ": move x",
            "f: x -> 7bad",
            "f: mo ve x",
        ] {
            assert!(bad.parse::<OperationDecl>().is_err(), "{bad}");
        }
    }

    #[test]
    fn keywords_can_double_as_parameter_names() {
        // `move` standing alone is an ordinary (ref) parameter called
        // "move"; only `move <ident>` selects the mode.
        let d: OperationDecl = "f: move".parse().unwrap();
        assert_eq!(d.params[0].name, "move");
        assert_eq!(d.params[0].mode, ParamMode::Ref);
    }

    #[test]
    fn modes_iterator_matches_params() {
        let d: OperationDecl = "g: visit a, b, move c".parse().unwrap();
        let modes: Vec<ParamMode> = d.modes().collect();
        assert_eq!(
            modes,
            vec![ParamMode::Visit, ParamMode::Ref, ParamMode::Move]
        );
    }
}
