//! Lease-based placement locks.
//!
//! The paper's placement lock (§3.2) is released by the *end-request* of the
//! move-block that acquired it. In a failure-free world that is enough; in a
//! faulty one the end-request can be lost, or the node hosting the block can
//! crash, leaving the object locked forever. A [`LeaseTable`] makes every
//! lock a **lease**: the grant is valid for a bounded time and must be
//! renewed by activity (invocations inside the block). The end-request stays
//! the fast path; lease expiry is the recovery path.
//!
//! Time is an abstract millisecond counter supplied by the caller — the
//! runtime feeds wall-clock milliseconds, tests feed hand-rolled instants —
//! so the table itself stays deterministic and substrate-free.
//!
//! A table built with [`LeaseTable::new`] has **no expiry** (infinite
//! leases): it behaves exactly like the original lock map, which is what the
//! deterministic simulator and the existing policy semantics rely on.

use crate::ids::{BlockId, ObjectId};

/// One granted placement lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LeaseEntry {
    /// The move-block holding the lock.
    block: BlockId,
    /// Absolute expiry instant in the table's clock (ignored when the table
    /// has no TTL).
    expires_at_ms: u64,
}

/// A map from objects to the move-blocks holding their placement locks,
/// with optional time-to-live semantics.
///
/// # Example
///
/// ```
/// use oml_core::ids::{BlockId, ObjectId};
/// use oml_core::lease::LeaseTable;
///
/// let mut t = LeaseTable::with_ttl_ms(100);
/// let (obj, blk) = (ObjectId::new(1), BlockId::new(7));
/// assert_eq!(t.acquire(obj, blk, 0), None);
/// assert_eq!(t.holder(obj), Some(blk));
/// // renewed activity pushes the expiry out…
/// assert!(t.renew(obj, 80));
/// t.advance(150);
/// assert_eq!(t.holder(obj), Some(blk));
/// // …but silence past the TTL releases the lock.
/// let expired = t.advance(300);
/// assert_eq!(expired, vec![(obj, blk)]);
/// assert_eq!(t.holder(obj), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeaseTable {
    /// Lease duration; `None` means locks never expire (the failure-free
    /// semantics of §3.2).
    ttl_ms: Option<u64>,
    /// The table's notion of "now", advanced monotonically by the caller.
    now_ms: u64,
    /// Slot per object id (objects are dense u32s); scans come out in id
    /// order for free, which keeps every sweep deterministic.
    entries: Vec<Option<LeaseEntry>>,
}

impl LeaseTable {
    /// A table whose locks never expire — release happens only through
    /// [`LeaseTable::release`].
    #[must_use]
    pub fn new() -> Self {
        LeaseTable::default()
    }

    /// A table whose locks expire `ttl_ms` milliseconds after their last
    /// acquisition or renewal.
    ///
    /// # Panics
    ///
    /// Panics if `ttl_ms` is zero — a lease that is born expired cannot
    /// protect anything.
    #[must_use]
    pub fn with_ttl_ms(ttl_ms: u64) -> Self {
        assert!(ttl_ms > 0, "a lease needs a positive duration");
        LeaseTable {
            ttl_ms: Some(ttl_ms),
            now_ms: 0,
            entries: Vec::new(),
        }
    }

    /// The configured lease duration (`None` = never expires).
    #[must_use]
    pub fn ttl_ms(&self) -> Option<u64> {
        self.ttl_ms
    }

    fn is_live(&self, e: &LeaseEntry) -> bool {
        self.ttl_ms.is_none() || e.expires_at_ms > self.now_ms
    }

    fn expiry_from(&self, now_ms: u64) -> u64 {
        now_ms.saturating_add(self.ttl_ms.unwrap_or(0))
    }

    /// The block currently holding `object`'s lock, if any non-expired one
    /// exists. Expired entries read as free even before the next
    /// [`LeaseTable::advance`] sweeps them out.
    #[must_use]
    pub fn holder(&self, object: ObjectId) -> Option<BlockId> {
        self.entries
            .get(object.index())
            .and_then(Option::as_ref)
            .filter(|e| self.is_live(e))
            .map(|e| e.block)
    }

    /// Grants the lock on `object` to `block` at time `now_ms`.
    ///
    /// Returns the previous **live** holder if the object was already
    /// locked (an expired entry is silently replaced). Re-acquiring by the
    /// same block refreshes the lease and reports no conflict.
    pub fn acquire(&mut self, object: ObjectId, block: BlockId, now_ms: u64) -> Option<BlockId> {
        self.touch(now_ms);
        let previous = self.holder(object).filter(|&b| b != block);
        if object.index() >= self.entries.len() {
            self.entries.resize(object.index() + 1, None);
        }
        self.entries[object.index()] = Some(LeaseEntry {
            block,
            expires_at_ms: self.expiry_from(self.now_ms),
        });
        previous
    }

    /// [`LeaseTable::acquire`] at the table's current clock — for callers
    /// (like [`crate::policy::MovePolicy::on_installed`]) that have no
    /// timestamp of their own.
    pub fn acquire_now(&mut self, object: ObjectId, block: BlockId) -> Option<BlockId> {
        let now = self.now_ms;
        self.acquire(object, block, now)
    }

    /// Releases `object`'s lock iff it is currently held by `block`.
    ///
    /// Returns whether a lock was released. A stale release — from a block
    /// whose lease already expired and whose lock may have been re-granted —
    /// is a no-op rather than an error: under message loss the same
    /// end-request can arrive twice, or arrive after the recovery path
    /// already freed the object.
    pub fn release(&mut self, object: ObjectId, block: BlockId) -> bool {
        if self.holder(object) == Some(block) {
            self.entries[object.index()] = None;
            true
        } else {
            false
        }
    }

    /// Unconditionally releases `object`'s lock, returning the holder it
    /// displaced (live or expired).
    ///
    /// This is the crash-cleanup path: when a node fails, the lock state it
    /// hosted is volatile and dies with it, so the substrate forcibly frees
    /// the locks of every object stranded on the crashed node — no holder
    /// check, because the holder's end-request can never arrive.
    pub fn force_release(&mut self, object: ObjectId) -> Option<BlockId> {
        self.entries
            .get_mut(object.index())
            .and_then(Option::take)
            .map(|e| e.block)
    }

    /// Extends `object`'s lease to `now_ms + ttl` if it is currently held.
    /// Returns whether a live lease was renewed.
    pub fn renew(&mut self, object: ObjectId, now_ms: u64) -> bool {
        self.touch(now_ms);
        let expires_at_ms = self.expiry_from(self.now_ms);
        match self
            .entries
            .get_mut(object.index())
            .and_then(Option::as_mut)
        {
            Some(e) if self.ttl_ms.is_none() || e.expires_at_ms > self.now_ms => {
                e.expires_at_ms = expires_at_ms;
                true
            }
            _ => false,
        }
    }

    /// Advances the clock monotonically (a stale `now_ms` is ignored).
    pub fn touch(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
    }

    /// Advances the clock and sweeps out expired leases, returning them
    /// (sorted by object id, so sweeps are deterministic).
    pub fn advance(&mut self, now_ms: u64) -> Vec<(ObjectId, BlockId)> {
        self.touch(now_ms);
        if self.ttl_ms.is_none() {
            return Vec::new();
        }
        let now = self.now_ms;
        let mut expired: Vec<(ObjectId, BlockId)> = Vec::new();
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if let Some(e) = slot {
                if e.expires_at_ms <= now {
                    expired.push((ObjectId::new(i as u32), e.block));
                    *slot = None;
                }
            }
        }
        expired
    }

    /// All live locks, sorted by object id.
    #[must_use]
    pub fn held(&self) -> Vec<(ObjectId, BlockId)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|e| (i, e)))
            .filter(|(_, e)| self.is_live(e))
            .map(|(i, e)| (ObjectId::new(i as u32), e.block))
            .collect()
    }

    /// Number of live locks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| self.is_live(e))
            .count()
    }

    /// Whether no live lock exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(o: u32, b: u32) -> (ObjectId, BlockId) {
        (ObjectId::new(o), BlockId::new(b))
    }

    #[test]
    fn infinite_leases_behave_like_a_plain_lock_map() {
        let mut t = LeaseTable::new();
        let (o, b) = ids(0, 1);
        assert_eq!(t.acquire(o, b, 0), None);
        assert_eq!(t.advance(u64::MAX), Vec::new());
        assert_eq!(t.holder(o), Some(b));
        assert!(t.release(o, b));
        assert_eq!(t.holder(o), None);
    }

    #[test]
    fn expiry_frees_the_lock_and_reports_it() {
        let mut t = LeaseTable::with_ttl_ms(50);
        let (o, b) = ids(3, 9);
        t.acquire(o, b, 100);
        assert_eq!(t.holder(o), Some(b));
        assert_eq!(t.advance(149), Vec::new());
        assert_eq!(t.advance(150), vec![(o, b)]);
        assert!(t.is_empty());
    }

    #[test]
    fn renewal_extends_exactly_one_ttl_from_the_renewal_instant() {
        let mut t = LeaseTable::with_ttl_ms(50);
        let (o, b) = ids(1, 2);
        t.acquire(o, b, 0);
        assert!(t.renew(o, 40)); // now expires at 90
        assert_eq!(t.advance(89), Vec::new());
        assert_eq!(t.holder(o), Some(b));
        assert_eq!(t.advance(90), vec![(o, b)]);
        // renewing a gone lease fails
        assert!(!t.renew(o, 91));
    }

    #[test]
    fn expired_holder_reads_as_free_before_the_sweep() {
        let mut t = LeaseTable::with_ttl_ms(10);
        let (o, b) = ids(0, 0);
        t.acquire(o, b, 0);
        t.touch(10);
        // no advance() ran, but the lease is dead already
        assert_eq!(t.holder(o), None);
        assert!(t.is_empty());
        // a new block can take over; the old entry is replaced silently
        let b2 = BlockId::new(1);
        assert_eq!(t.acquire(o, b2, 10), None);
        assert_eq!(t.holder(o), Some(b2));
    }

    #[test]
    fn stale_release_cannot_free_the_new_holders_lock() {
        let mut t = LeaseTable::with_ttl_ms(10);
        let (o, b1) = ids(0, 0);
        let b2 = BlockId::new(1);
        t.acquire(o, b1, 0);
        t.advance(20); // b1's lease expires
        t.acquire(o, b2, 20);
        // b1's late end-request arrives — must not release b2's lock
        assert!(!t.release(o, b1));
        assert_eq!(t.holder(o), Some(b2));
        assert!(t.release(o, b2));
    }

    #[test]
    fn reacquire_by_the_same_block_is_a_refresh_not_a_conflict() {
        let mut t = LeaseTable::with_ttl_ms(10);
        let (o, b) = ids(5, 5);
        assert_eq!(t.acquire(o, b, 0), None);
        assert_eq!(t.acquire(o, b, 5), None); // duplicate install
        assert_eq!(t.advance(14), Vec::new()); // refreshed to 15
        assert_eq!(t.advance(15), vec![(o, b)]);
    }

    #[test]
    fn acquire_over_a_live_holder_reports_the_conflict() {
        let mut t = LeaseTable::new();
        let (o, b1) = ids(0, 0);
        let b2 = BlockId::new(1);
        t.acquire(o, b1, 0);
        assert_eq!(t.acquire(o, b2, 1), Some(b1));
        assert_eq!(t.holder(o), Some(b2));
    }

    #[test]
    fn clock_is_monotonic() {
        let mut t = LeaseTable::with_ttl_ms(10);
        let (o, b) = ids(0, 0);
        t.touch(100);
        t.acquire(o, b, 50); // stale timestamp: clock stays at 100
        assert_eq!(t.advance(109), Vec::new());
        assert_eq!(t.advance(110), vec![(o, b)]);
    }

    #[test]
    fn sweep_order_is_deterministic() {
        let mut t = LeaseTable::with_ttl_ms(5);
        for i in (0..10).rev() {
            t.acquire(ObjectId::new(i), BlockId::new(i), 0);
        }
        let expired = t.advance(100);
        let objects: Vec<u32> = expired.iter().map(|(o, _)| o.index() as u32).collect();
        assert_eq!(objects, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_ttl_rejected() {
        let _ = LeaseTable::with_ttl_ms(0);
    }

    #[test]
    fn force_release_frees_live_and_expired_entries() {
        let mut t = LeaseTable::with_ttl_ms(10);
        let (o, b) = ids(0, 7);
        t.acquire(o, b, 0);
        assert_eq!(t.force_release(o), Some(b));
        assert_eq!(t.holder(o), None);
        assert_eq!(t.force_release(o), None);
        // an expired entry is still reported, so crash cleanup can log it
        t.acquire(o, b, 0);
        t.touch(100);
        assert_eq!(t.holder(o), None);
        assert_eq!(t.force_release(o), Some(b));
    }
}
