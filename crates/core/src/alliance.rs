//! Alliances: explicit cooperation contexts between objects (§3.4).
//!
//! An alliance is "a dynamic relationship between a set of cooperative
//! objects" that defines a cooperation (and optionally a distribution)
//! policy. For migration control its one load-bearing property is that
//! *attachments can be unambiguously related to one alliance*, which lets the
//! system restrict attachment transitiveness to the cooperation context a
//! migration primitive was invoked in (A-transitive attachment).

use crate::error::AllianceError;
use crate::ids::{AllianceId, ObjectId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Creates, dissolves and tracks alliances and their members.
///
/// # Example
///
/// ```
/// use oml_core::alliance::AllianceRegistry;
/// use oml_core::ids::ObjectId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = AllianceRegistry::new();
/// let editors = reg.create("editors");
/// reg.join(editors, ObjectId::new(1))?;
/// reg.join(editors, ObjectId::new(2))?;
/// assert!(reg.is_member(editors, ObjectId::new(1)));
/// assert_eq!(reg.members(editors).unwrap().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AllianceRegistry {
    alliances: BTreeMap<AllianceId, Alliance>,
    next_id: u32,
}

/// One alliance: a named set of member objects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alliance {
    /// The alliance's identity.
    pub id: AllianceId,
    /// Human-readable label (the "target of the cooperation").
    pub name: String,
    members: BTreeSet<ObjectId>,
}

impl Alliance {
    /// The member set, in id order.
    #[must_use]
    pub fn members(&self) -> &BTreeSet<ObjectId> {
        &self.members
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the alliance has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl AllianceRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        AllianceRegistry::default()
    }

    /// Creates a new, empty alliance and returns its id.
    pub fn create(&mut self, name: &str) -> AllianceId {
        let id = AllianceId::new(self.next_id);
        self.next_id += 1;
        self.alliances.insert(
            id,
            Alliance {
                id,
                name: name.to_owned(),
                members: BTreeSet::new(),
            },
        );
        id
    }

    /// Dissolves an alliance. Attachments tagged with it become dead context
    /// (their edges survive in the attachment graph but no longer correspond
    /// to a live cooperation — callers typically detach first).
    ///
    /// # Errors
    ///
    /// Returns [`AllianceError::UnknownAlliance`] if `id` does not exist.
    pub fn dissolve(&mut self, id: AllianceId) -> Result<Alliance, AllianceError> {
        self.alliances
            .remove(&id)
            .ok_or(AllianceError::UnknownAlliance(id))
    }

    /// Adds `object` to the alliance.
    ///
    /// # Errors
    ///
    /// Returns [`AllianceError::UnknownAlliance`] for a nonexistent alliance
    /// and [`AllianceError::AlreadyMember`] for a duplicate join.
    pub fn join(&mut self, id: AllianceId, object: ObjectId) -> Result<(), AllianceError> {
        let alliance = self
            .alliances
            .get_mut(&id)
            .ok_or(AllianceError::UnknownAlliance(id))?;
        if !alliance.members.insert(object) {
            return Err(AllianceError::AlreadyMember {
                object,
                alliance: id,
            });
        }
        Ok(())
    }

    /// Removes `object` from the alliance.
    ///
    /// # Errors
    ///
    /// Returns [`AllianceError::UnknownAlliance`] or
    /// [`AllianceError::NotMember`].
    pub fn leave(&mut self, id: AllianceId, object: ObjectId) -> Result<(), AllianceError> {
        let alliance = self
            .alliances
            .get_mut(&id)
            .ok_or(AllianceError::UnknownAlliance(id))?;
        if !alliance.members.remove(&object) {
            return Err(AllianceError::NotMember {
                object,
                alliance: id,
            });
        }
        Ok(())
    }

    /// Whether `object` is a member of the alliance.
    #[must_use]
    pub fn is_member(&self, id: AllianceId, object: ObjectId) -> bool {
        self.alliances
            .get(&id)
            .is_some_and(|a| a.members.contains(&object))
    }

    /// Whether the alliance exists.
    #[must_use]
    pub fn exists(&self, id: AllianceId) -> bool {
        self.alliances.contains_key(&id)
    }

    /// The member set of an alliance, or `None` if it does not exist.
    #[must_use]
    pub fn members(&self, id: AllianceId) -> Option<&BTreeSet<ObjectId>> {
        self.alliances.get(&id).map(|a| &a.members)
    }

    /// Looks an alliance up by id.
    #[must_use]
    pub fn get(&self, id: AllianceId) -> Option<&Alliance> {
        self.alliances.get(&id)
    }

    /// All alliances `object` belongs to, in id order.
    ///
    /// Objects "can be members of different alliances" (§3.4); this is the
    /// reverse index.
    pub fn alliances_of(&self, object: ObjectId) -> Vec<AllianceId> {
        self.alliances
            .values()
            .filter(|a| a.members.contains(&object))
            .map(|a| a.id)
            .collect()
    }

    /// Iterates over all alliances in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Alliance> {
        self.alliances.values()
    }

    /// Number of live alliances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.alliances.len()
    }

    /// Whether the registry holds no alliances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.alliances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn create_join_leave_roundtrip() {
        let mut reg = AllianceRegistry::new();
        let a = reg.create("test");
        assert!(reg.exists(a));
        reg.join(a, obj(1)).unwrap();
        assert!(reg.is_member(a, obj(1)));
        reg.leave(a, obj(1)).unwrap();
        assert!(!reg.is_member(a, obj(1)));
    }

    #[test]
    fn duplicate_join_is_an_error() {
        let mut reg = AllianceRegistry::new();
        let a = reg.create("x");
        reg.join(a, obj(1)).unwrap();
        assert_eq!(
            reg.join(a, obj(1)),
            Err(AllianceError::AlreadyMember {
                object: obj(1),
                alliance: a
            })
        );
    }

    #[test]
    fn leave_without_membership_is_an_error() {
        let mut reg = AllianceRegistry::new();
        let a = reg.create("x");
        assert_eq!(
            reg.leave(a, obj(9)),
            Err(AllianceError::NotMember {
                object: obj(9),
                alliance: a
            })
        );
    }

    #[test]
    fn unknown_alliance_errors() {
        let mut reg = AllianceRegistry::new();
        let ghost = AllianceId::new(99);
        assert_eq!(
            reg.join(ghost, obj(0)),
            Err(AllianceError::UnknownAlliance(ghost))
        );
        assert_eq!(
            reg.dissolve(ghost).unwrap_err(),
            AllianceError::UnknownAlliance(ghost)
        );
        assert!(reg.members(ghost).is_none());
    }

    #[test]
    fn objects_can_join_multiple_alliances() {
        let mut reg = AllianceRegistry::new();
        let a = reg.create("a");
        let b = reg.create("b");
        reg.join(a, obj(5)).unwrap();
        reg.join(b, obj(5)).unwrap();
        assert_eq!(reg.alliances_of(obj(5)), vec![a, b]);
    }

    #[test]
    fn dissolve_removes_the_alliance() {
        let mut reg = AllianceRegistry::new();
        let a = reg.create("gone");
        reg.join(a, obj(1)).unwrap();
        let dissolved = reg.dissolve(a).unwrap();
        assert_eq!(dissolved.name, "gone");
        assert_eq!(dissolved.len(), 1);
        assert!(!reg.exists(a));
        assert!(reg.is_empty());
    }

    #[test]
    fn ids_are_not_reused_after_dissolve() {
        let mut reg = AllianceRegistry::new();
        let a = reg.create("first");
        reg.dissolve(a).unwrap();
        let b = reg.create("second");
        assert_ne!(a, b);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut reg = AllianceRegistry::new();
        let a = reg.create("a");
        let b = reg.create("b");
        let ids: Vec<AllianceId> = reg.iter().map(|al| al.id).collect();
        assert_eq!(ids, vec![a, b]);
        assert_eq!(reg.len(), 2);
    }
}
