//! Error types for migration-control operations.

use crate::ids::{AllianceId, ObjectId};
use std::error::Error;
use std::fmt;

/// Errors raised by attachment operations (§2.2, §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachError {
    /// `attach(o, o)` — an object cannot be attached to itself.
    SelfAttachment(ObjectId),
    /// The edge was tagged with an alliance one of the objects is not a
    /// member of; alliances define *who* may cooperate (§3.4).
    NotAllianceMember {
        /// The offending object.
        object: ObjectId,
        /// The alliance named as cooperation context.
        alliance: AllianceId,
    },
    /// The named alliance does not exist (never created or dissolved).
    UnknownAlliance(AllianceId),
}

impl fmt::Display for AttachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttachError::SelfAttachment(o) => {
                write!(f, "object {o} cannot be attached to itself")
            }
            AttachError::NotAllianceMember { object, alliance } => {
                write!(f, "object {object} is not a member of alliance {alliance}")
            }
            AttachError::UnknownAlliance(a) => write!(f, "alliance {a} does not exist"),
        }
    }
}

impl Error for AttachError {}

/// Errors raised by alliance management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllianceError {
    /// The alliance does not exist.
    UnknownAlliance(AllianceId),
    /// The object is already a member of the alliance.
    AlreadyMember {
        /// The joining object.
        object: ObjectId,
        /// The alliance joined twice.
        alliance: AllianceId,
    },
    /// The object is not a member of the alliance.
    NotMember {
        /// The leaving object.
        object: ObjectId,
        /// The alliance left without being a member.
        alliance: AllianceId,
    },
}

impl fmt::Display for AllianceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllianceError::UnknownAlliance(a) => write!(f, "alliance {a} does not exist"),
            AllianceError::AlreadyMember { object, alliance } => {
                write!(
                    f,
                    "object {object} is already a member of alliance {alliance}"
                )
            }
            AllianceError::NotMember { object, alliance } => {
                write!(f, "object {object} is not a member of alliance {alliance}")
            }
        }
    }
}

impl Error for AllianceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = AttachError::SelfAttachment(ObjectId::new(4));
        assert_eq!(e.to_string(), "object o4 cannot be attached to itself");
        let e = AttachError::NotAllianceMember {
            object: ObjectId::new(1),
            alliance: AllianceId::new(2),
        };
        assert!(e.to_string().contains("o1"));
        assert!(e.to_string().contains("a2"));
        let e = AllianceError::UnknownAlliance(AllianceId::new(0));
        assert!(e.to_string().contains("does not exist"));
    }

    #[test]
    fn errors_are_std_errors_and_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AttachError>();
        assert_err::<AllianceError>();
    }
}
