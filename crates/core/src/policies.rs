//! The five built-in migration policies.
//!
//! | Policy | Paper | Character |
//! |---|---|---|
//! | [`Sedentary`] | baseline | never migrate |
//! | [`ConventionalMigration`] | §2.3 | always migrate (aggressive) |
//! | [`TransientPlacement`] | §3.2 | migrate-if-unlocked (conservative) |
//! | [`CompareNodes`] | §4.3 | follow the node with most open moves |
//! | [`CompareAndReinstantiate`] | §4.3 | …and re-migrate on end-requests |
//!
//! The dynamic pair sit "between the extremes" of conventional migration and
//! placement: they trade extra bookkeeping (per-node open-move counters that
//! must travel with the object, §3.3) for slightly better locations. The
//! paper's — and this reproduction's — finding is that the trade is rarely
//! worth it.

use crate::ids::{BlockId, NodeId, ObjectId};
use crate::lease::LeaseTable;
use crate::policy::{EndAction, EndRequest, MoveDecision, MovePolicy, MoveRequest, PolicyKind};

/// The "without migration" baseline: every object is treated as sedentary.
///
/// Applications written against this policy do not even issue
/// `move()`-requests ([`MovePolicy::uses_move_requests`] is `false`), so the
/// baseline pays pure remote-invocation cost — exactly the flat curves in
/// Figs. 8, 12 and 16.
#[derive(Debug, Clone, Default)]
pub struct Sedentary(());

impl Sedentary {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Sedentary(())
    }
}

impl MovePolicy for Sedentary {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Sedentary
    }

    fn uses_move_requests(&self) -> bool {
        false
    }

    fn on_move(&mut self, _req: &MoveRequest) -> MoveDecision {
        // A stray move()-request (e.g. from a component that ignores the
        // system-wide policy) is refused.
        MoveDecision::Deny
    }

    fn on_installed(&mut self, _object: ObjectId, _node: NodeId, _block: BlockId) {}

    fn on_end(&mut self, _req: &EndRequest) -> EndAction {
        EndAction::None
    }
}

/// Conventional `move()` semantics: every request immediately migrates the
/// object, no questions asked (§2.3).
///
/// This is the policy that behaves well in monolithic systems and
/// catastrophically in non-monolithic ones: concurrent movers steal shared
/// objects from each other mid-block.
#[derive(Debug, Clone, Default)]
pub struct ConventionalMigration(());

impl ConventionalMigration {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        ConventionalMigration(())
    }
}

impl MovePolicy for ConventionalMigration {
    fn kind(&self) -> PolicyKind {
        PolicyKind::ConventionalMigration
    }

    fn on_move(&mut self, _req: &MoveRequest) -> MoveDecision {
        MoveDecision::Grant
    }

    fn on_installed(&mut self, _object: ObjectId, _node: NodeId, _block: BlockId) {}

    fn on_end(&mut self, _req: &EndRequest) -> EndAction {
        EndAction::None
    }
}

/// Transient placement (§3.2): the paper's conservative reinterpretation of
/// `move()`.
///
/// The first move-request migrates the object and **locks** it at the target
/// ("a locked object is sedentary as long as the block or operation completes
/// to which the move()-primitive is tied"). Conflicting requests are denied
/// with an indication; the corresponding `end` is then simply ignored. The
/// lock is released by the holder's `end`-request, which is always a local
/// operation.
///
/// The locks live in a [`LeaseTable`]. Built with
/// [`TransientPlacement::new`] they never expire — the failure-free §3.2
/// semantics. Built with [`TransientPlacement::with_lease_ms`] each lock is
/// a lease renewed by activity ([`MovePolicy::renew_lease`]) and reclaimed
/// after silence ([`MovePolicy::expire_leases`]): the end-request is the
/// fast release path, expiry the recovery path when the holder crashed or
/// its end-request was lost.
#[derive(Debug, Clone, Default)]
pub struct TransientPlacement {
    locks: LeaseTable,
}

impl TransientPlacement {
    /// Creates the policy with no locks held and no lease expiry.
    #[must_use]
    pub fn new() -> Self {
        TransientPlacement::default()
    }

    /// Creates the policy whose locks expire after `ttl_ms` of inactivity.
    ///
    /// # Panics
    ///
    /// Panics if `ttl_ms` is zero.
    #[must_use]
    pub fn with_lease_ms(ttl_ms: u64) -> Self {
        TransientPlacement {
            locks: LeaseTable::with_ttl_ms(ttl_ms),
        }
    }

    /// The block currently holding `object` in place, if any.
    #[must_use]
    pub fn lock_holder(&self, object: ObjectId) -> Option<BlockId> {
        self.locks.holder(object)
    }
}

impl MovePolicy for TransientPlacement {
    fn kind(&self) -> PolicyKind {
        PolicyKind::TransientPlacement
    }

    fn on_move(&mut self, req: &MoveRequest) -> MoveDecision {
        if self.locks.holder(req.object).is_some() {
            MoveDecision::Deny
        } else {
            MoveDecision::Grant
        }
    }

    fn on_installed(&mut self, object: ObjectId, _node: NodeId, block: BlockId) {
        let previous = self.locks.acquire_now(object, block);
        debug_assert!(
            previous.is_none(),
            "placement granted {object} to {block} while still locked by {previous:?}"
        );
    }

    fn on_end(&mut self, req: &EndRequest) -> EndAction {
        if req.was_granted {
            // Only the live holder releases; a duplicate or stale
            // end-request (possible under message faults, after the lease
            // recovery path already freed the object) is a no-op.
            let _ = self.locks.release(req.object, req.block);
        }
        // An end after a denial "is simply ignored, as nothing has to be
        // done" (§3.2).
        EndAction::None
    }

    fn is_pinned(&self, object: ObjectId) -> bool {
        self.locks.holder(object).is_some()
    }

    fn lease_ttl_ms(&self) -> Option<u64> {
        self.locks.ttl_ms()
    }

    fn renew_lease(&mut self, object: ObjectId, now_ms: u64) {
        let _ = self.locks.renew(object, now_ms);
    }

    fn expire_leases(&mut self, now_ms: u64) -> Vec<(ObjectId, BlockId)> {
        self.locks.advance(now_ms)
    }

    fn release_locks_for(&mut self, objects: &[ObjectId]) -> Vec<(ObjectId, BlockId)> {
        objects
            .iter()
            .filter_map(|&o| self.locks.force_release(o).map(|b| (o, b)))
            .collect()
    }

    fn held_locks(&self) -> Vec<(ObjectId, BlockId)> {
        self.locks.held()
    }
}

/// Shared bookkeeping of the two dynamic strategies: per-object, per-node
/// counters of *open* move-requests (§4.3).
///
/// "For this it records move- and end-requests and the nodes where they have
/// occurred." The counters travel with the object, which is why §3.3 warns
/// that such policies are unpromising for small objects; the simulation
/// (like the paper's) deliberately neglects that overhead.
#[derive(Debug, Clone, Default)]
struct OpenMoveLedger {
    /// `open[object][node]` — dense object- and node-indexed counters
    /// (both id spaces are small and contiguous), grown on first touch.
    open: Vec<Vec<u32>>,
}

impl OpenMoveLedger {
    fn record_move(&mut self, object: ObjectId, node: NodeId) {
        if object.index() >= self.open.len() {
            self.open.resize(object.index() + 1, Vec::new());
        }
        let per_node = &mut self.open[object.index()];
        if node.index() >= per_node.len() {
            per_node.resize(node.index() + 1, 0);
        }
        per_node[node.index()] += 1;
    }

    fn record_end(&mut self, object: ObjectId, node: NodeId) {
        if let Some(count) = self
            .open
            .get_mut(object.index())
            .and_then(|per_node| per_node.get_mut(node.index()))
        {
            *count = count.saturating_sub(1);
        }
    }

    fn count(&self, object: ObjectId, node: NodeId) -> u32 {
        self.open
            .get(object.index())
            .and_then(|per_node| per_node.get(node.index()))
            .copied()
            .unwrap_or(0)
    }

    /// The node with the most open requests (ties broken towards the lowest
    /// node id for determinism), with its count.
    fn leader(&self, object: ObjectId) -> Option<(NodeId, u32)> {
        let per_node = self.open.get(object.index())?;
        let mut best: Option<(NodeId, u32)> = None;
        // ascending scan + strict improvement = lowest node id wins ties
        for (i, &count) in per_node.iter().enumerate() {
            if count > 0 && best.is_none_or(|(_, c)| count > c) {
                best = Some((NodeId::new(i as u32), count));
            }
        }
        best
    }
}

/// Raw `NodeId` sentinel for "object holds no placement lock".
const NO_NODE: u32 = u32::MAX;

/// Shared core of the two intelligent placement strategies: placement locks
/// plus the open-move ledger.
///
/// Both strategies are *extensions of transient placement* (§4.3 calls them
/// "intelligent placement strategies"): the lock semantics stay, but an
/// unlocked object is only handed to a requester whose node has issued at
/// least as many open move-requests as every other node — "it tries to keep
/// objects always at those nodes from where the most move-requests have been
/// issued". A conflicting request therefore has "initially no effect on the
/// location of the requested object but may lead to a migration at some
/// point later if further move-requests are issued at the same node".
#[derive(Debug, Clone, Default)]
struct ComparingCore {
    ledger: OpenMoveLedger,
    locks: LeaseTable,
    /// Where each lock holder sits (object-indexed, `NO_NODE` = unlocked) —
    /// needed to retire its ledger entry if the lease expires instead of
    /// ending normally.
    holder_node: Vec<u32>,
}

impl ComparingCore {
    fn with_lease_ms(ttl_ms: u64) -> Self {
        ComparingCore {
            locks: LeaseTable::with_ttl_ms(ttl_ms),
            ..ComparingCore::default()
        }
    }

    fn on_move(&mut self, req: &MoveRequest) -> MoveDecision {
        self.ledger.record_move(req.object, req.from);
        if self.locks.holder(req.object).is_some() {
            return MoveDecision::Deny;
        }
        if req.from == req.at {
            return MoveDecision::Grant;
        }
        let mine = self.ledger.count(req.object, req.from);
        match self.ledger.leader(req.object) {
            Some((_, top)) if mine >= top => MoveDecision::Grant,
            Some(_) => MoveDecision::Deny,
            None => MoveDecision::Grant,
        }
    }

    fn on_installed(&mut self, object: ObjectId, node: NodeId, block: BlockId) {
        let previous = self.locks.acquire_now(object, block);
        debug_assert!(previous.is_none(), "granted {object} while locked");
        if object.index() >= self.holder_node.len() {
            self.holder_node.resize(object.index() + 1, NO_NODE);
        }
        self.holder_node[object.index()] = node.as_u32();
    }

    /// Processes the end bookkeeping; returns whether the ending block held
    /// the lock (i.e. the object is unlocked now). A stale end — after the
    /// lease recovery path already freed the lock — reports `false`, so no
    /// reinstantiation decision hangs off it.
    fn on_end(&mut self, req: &EndRequest) -> bool {
        self.ledger.record_end(req.object, req.from);
        let released = req.was_granted && self.locks.release(req.object, req.block);
        if released {
            self.take_holder_node(req.object);
        }
        released
    }

    fn is_pinned(&self, object: ObjectId) -> bool {
        self.locks.holder(object).is_some()
    }

    fn renew_lease(&mut self, object: ObjectId, now_ms: u64) {
        let _ = self.locks.renew(object, now_ms);
    }

    /// Expired leases also retire their ledger entries: a lock that had to
    /// be reclaimed belongs to a block that will never send its end-request
    /// (or whose end-request was lost), and counting it as an "open move"
    /// forever would skew every later majority comparison.
    fn expire_leases(&mut self, now_ms: u64) -> Vec<(ObjectId, BlockId)> {
        let expired = self.locks.advance(now_ms);
        for &(object, _) in &expired {
            if let Some(node) = self.take_holder_node(object) {
                self.ledger.record_end(object, node);
            }
        }
        expired
    }

    /// Crash cleanup: like lease expiry, but for an explicit object set and
    /// without waiting for a TTL — the holder node is gone, its blocks will
    /// never end, and their ledger entries must retire with the locks.
    fn release_locks_for(&mut self, objects: &[ObjectId]) -> Vec<(ObjectId, BlockId)> {
        let mut released = Vec::new();
        for &object in objects {
            if let Some(block) = self.locks.force_release(object) {
                if let Some(node) = self.take_holder_node(object) {
                    self.ledger.record_end(object, node);
                }
                released.push((object, block));
            }
        }
        released
    }

    /// Clears and returns the recorded holder node of `object`.
    fn take_holder_node(&mut self, object: ObjectId) -> Option<NodeId> {
        let slot = self.holder_node.get_mut(object.index())?;
        let raw = std::mem::replace(slot, NO_NODE);
        (raw != NO_NODE).then(|| NodeId::new(raw))
    }
}

/// "Comparing the nodes" (§4.3): transient placement whose grants prefer the
/// node with the most open move-requests.
#[derive(Debug, Clone, Default)]
pub struct CompareNodes {
    core: ComparingCore,
}

impl CompareNodes {
    /// Creates the policy with empty counters.
    #[must_use]
    pub fn new() -> Self {
        CompareNodes::default()
    }

    /// Creates the policy whose locks expire after `ttl_ms` of inactivity.
    ///
    /// # Panics
    ///
    /// Panics if `ttl_ms` is zero.
    #[must_use]
    pub fn with_lease_ms(ttl_ms: u64) -> Self {
        CompareNodes {
            core: ComparingCore::with_lease_ms(ttl_ms),
        }
    }

    /// Open move-requests recorded for `object` at `node` (for diagnostics).
    #[must_use]
    pub fn open_moves(&self, object: ObjectId, node: NodeId) -> u32 {
        self.core.ledger.count(object, node)
    }
}

impl MovePolicy for CompareNodes {
    fn kind(&self) -> PolicyKind {
        PolicyKind::CompareNodes
    }

    fn on_move(&mut self, req: &MoveRequest) -> MoveDecision {
        self.core.on_move(req)
    }

    fn on_installed(&mut self, object: ObjectId, node: NodeId, block: BlockId) {
        self.core.on_installed(object, node, block);
    }

    fn on_end(&mut self, req: &EndRequest) -> EndAction {
        let _ = self.core.on_end(req);
        EndAction::None
    }

    fn is_pinned(&self, object: ObjectId) -> bool {
        self.core.is_pinned(object)
    }

    fn lease_ttl_ms(&self) -> Option<u64> {
        self.core.locks.ttl_ms()
    }

    fn renew_lease(&mut self, object: ObjectId, now_ms: u64) {
        self.core.renew_lease(object, now_ms);
    }

    fn expire_leases(&mut self, now_ms: u64) -> Vec<(ObjectId, BlockId)> {
        self.core.expire_leases(now_ms)
    }

    fn release_locks_for(&mut self, objects: &[ObjectId]) -> Vec<(ObjectId, BlockId)> {
        self.core.release_locks_for(objects)
    }

    fn held_locks(&self) -> Vec<(ObjectId, BlockId)> {
        self.core.locks.held()
    }
}

/// "Comparing and reinstantiation" (§4.3): like [`CompareNodes`], but "objects
/// may not only be migrated on move-requests but also on end-requests if an
/// end-request leads to a situation that some other node holds a clear
/// majority on open move-requests".
#[derive(Debug, Clone, Default)]
pub struct CompareAndReinstantiate {
    core: ComparingCore,
}

impl CompareAndReinstantiate {
    /// Creates the policy with empty counters.
    #[must_use]
    pub fn new() -> Self {
        CompareAndReinstantiate::default()
    }

    /// Creates the policy whose locks expire after `ttl_ms` of inactivity.
    ///
    /// # Panics
    ///
    /// Panics if `ttl_ms` is zero.
    #[must_use]
    pub fn with_lease_ms(ttl_ms: u64) -> Self {
        CompareAndReinstantiate {
            core: ComparingCore::with_lease_ms(ttl_ms),
        }
    }
}

impl MovePolicy for CompareAndReinstantiate {
    fn kind(&self) -> PolicyKind {
        PolicyKind::CompareAndReinstantiate
    }

    fn on_move(&mut self, req: &MoveRequest) -> MoveDecision {
        self.core.on_move(req)
    }

    fn on_installed(&mut self, object: ObjectId, node: NodeId, block: BlockId) {
        self.core.on_installed(object, node, block);
    }

    fn on_end(&mut self, req: &EndRequest) -> EndAction {
        let unlocked = self.core.on_end(req);
        if !unlocked {
            return EndAction::None;
        }
        match self.core.ledger.leader(req.object) {
            // A *clear* majority: at least two blocks are waiting there and
            // more than at the object's current node. (Chasing a single
            // waiter costs a full migration for at most half a block's worth
            // of savings.)
            Some((leader, count))
                if leader != req.at
                    && count >= 2
                    && count > self.core.ledger.count(req.object, req.at) =>
            {
                EndAction::Migrate(leader)
            }
            _ => EndAction::None,
        }
    }

    fn is_pinned(&self, object: ObjectId) -> bool {
        self.core.is_pinned(object)
    }

    fn lease_ttl_ms(&self) -> Option<u64> {
        self.core.locks.ttl_ms()
    }

    fn renew_lease(&mut self, object: ObjectId, now_ms: u64) {
        self.core.renew_lease(object, now_ms);
    }

    fn expire_leases(&mut self, now_ms: u64) -> Vec<(ObjectId, BlockId)> {
        self.core.expire_leases(now_ms)
    }

    fn release_locks_for(&mut self, objects: &[ObjectId]) -> Vec<(ObjectId, BlockId)> {
        self.core.release_locks_for(objects)
    }

    fn held_locks(&self) -> Vec<(ObjectId, BlockId)> {
        self.core.locks.held()
    }
}

/// An anti-thrashing extension policy: conventional migration plus the
/// transient fixing §2.2 hints at ("mostly the consequence of run-time
/// decisions, e.g., to avoid thrashing").
///
/// After each migration the object is transiently fixed for the next
/// `cooldown` conflicting move-requests: they are denied (with the usual
/// indication) while the counter drains. This is *not* one of the paper's
/// evaluated policies — it exists to demonstrate that the
/// [`MovePolicy`] interface supports user-defined policies, and serves as an
/// ablation point between conventional migration (`cooldown = 0`) and
/// increasingly placement-like behaviour.
///
/// # Example
///
/// ```
/// use oml_core::ids::{BlockId, NodeId, ObjectId};
/// use oml_core::policies::CooldownFixing;
/// use oml_core::policy::{MoveDecision, MovePolicy, MoveRequest};
///
/// let mut p = CooldownFixing::new(2);
/// let req = |from: u32, b: u32| MoveRequest {
///     object: ObjectId::new(0),
///     at: NodeId::new(0),
///     from: NodeId::new(from),
///     block: BlockId::new(b),
/// };
/// assert_eq!(p.on_move(&req(1, 0)), MoveDecision::Grant);
/// p.on_installed(ObjectId::new(0), NodeId::new(1), BlockId::new(0));
/// // the next two conflicting movers bounce off the cooldown…
/// assert_eq!(p.on_move(&req(2, 1)), MoveDecision::Deny);
/// assert_eq!(p.on_move(&req(2, 2)), MoveDecision::Deny);
/// // …after which migration is conventional again
/// assert_eq!(p.on_move(&req(2, 3)), MoveDecision::Grant);
/// ```
#[derive(Debug, Clone)]
pub struct CooldownFixing {
    cooldown: u32,
    /// Object-indexed denial budget (0 = no active cooldown).
    remaining: Vec<u32>,
}

impl CooldownFixing {
    /// Creates the policy; after each migration the next `cooldown`
    /// conflicting move-requests are denied.
    #[must_use]
    pub fn new(cooldown: u32) -> Self {
        CooldownFixing {
            cooldown,
            remaining: Vec::new(),
        }
    }

    /// The configured cooldown length.
    #[must_use]
    pub fn cooldown(&self) -> u32 {
        self.cooldown
    }
}

impl MovePolicy for CooldownFixing {
    fn kind(&self) -> PolicyKind {
        // reported as the policy it extends; `kind()` drives display only
        PolicyKind::ConventionalMigration
    }

    fn on_move(&mut self, req: &MoveRequest) -> MoveDecision {
        if req.from == req.at {
            return MoveDecision::Grant;
        }
        if let Some(r) = self.remaining.get_mut(req.object.index()) {
            if *r > 0 {
                *r -= 1;
                return MoveDecision::Deny;
            }
        }
        MoveDecision::Grant
    }

    fn on_installed(&mut self, object: ObjectId, _node: NodeId, _block: BlockId) {
        if object.index() >= self.remaining.len() {
            self.remaining.resize(object.index() + 1, 0);
        }
        self.remaining[object.index()] = self.cooldown;
    }

    fn on_end(&mut self, _req: &EndRequest) -> EndAction {
        EndAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }
    fn block(i: u32) -> BlockId {
        BlockId::new(i)
    }
    fn req(o: u32, at: u32, from: u32, b: u32) -> MoveRequest {
        MoveRequest {
            object: obj(o),
            at: node(at),
            from: node(from),
            block: block(b),
        }
    }
    fn end(o: u32, at: u32, from: u32, b: u32, granted: bool) -> EndRequest {
        EndRequest {
            object: obj(o),
            at: node(at),
            from: node(from),
            block: block(b),
            was_granted: granted,
        }
    }

    #[test]
    fn sedentary_denies_everything() {
        let mut p = Sedentary::new();
        assert_eq!(p.on_move(&req(0, 1, 2, 0)), MoveDecision::Deny);
        assert!(!p.uses_move_requests());
        assert_eq!(p.on_end(&end(0, 1, 2, 0, false)), EndAction::None);
    }

    #[test]
    fn conventional_grants_everything() {
        let mut p = ConventionalMigration::new();
        for i in 0..5 {
            assert_eq!(p.on_move(&req(0, 1, 2, i)), MoveDecision::Grant);
        }
    }

    #[test]
    fn placement_locks_until_end() {
        let mut p = TransientPlacement::new();
        assert_eq!(p.on_move(&req(0, 1, 2, 0)), MoveDecision::Grant);
        p.on_installed(obj(0), node(2), block(0));
        assert_eq!(p.lock_holder(obj(0)), Some(block(0)));

        // concurrent movers are denied, even from the holder's own node
        assert_eq!(p.on_move(&req(0, 2, 3, 1)), MoveDecision::Deny);
        assert_eq!(p.on_move(&req(0, 2, 2, 2)), MoveDecision::Deny);

        // the denied block's end is ignored — lock still held
        assert_eq!(p.on_end(&end(0, 2, 3, 1, false)), EndAction::None);
        assert_eq!(p.lock_holder(obj(0)), Some(block(0)));

        // the holder's end releases, after which a new move wins
        assert_eq!(p.on_end(&end(0, 2, 2, 0, true)), EndAction::None);
        assert_eq!(p.lock_holder(obj(0)), None);
        assert_eq!(p.on_move(&req(0, 2, 3, 3)), MoveDecision::Grant);
    }

    #[test]
    fn placement_locks_are_per_object() {
        let mut p = TransientPlacement::new();
        p.on_installed(obj(0), node(1), block(0));
        assert_eq!(p.on_move(&req(1, 1, 2, 1)), MoveDecision::Grant);
    }

    #[test]
    fn compare_nodes_respects_lock_then_prefers_majority() {
        let mut p = CompareNodes::new();
        // first mover from node 2: grant, install, lock
        assert_eq!(p.on_move(&req(0, 1, 2, 0)), MoveDecision::Grant);
        p.on_installed(obj(0), node(2), block(0));
        assert!(p.is_pinned(obj(0)));

        // conflicting movers are denied while the lock is held, but recorded
        assert_eq!(p.on_move(&req(0, 2, 3, 1)), MoveDecision::Deny);
        assert_eq!(p.on_move(&req(0, 2, 3, 2)), MoveDecision::Deny);
        assert_eq!(p.open_moves(obj(0), node(3)), 2);

        // holder ends: unlock
        assert_eq!(p.on_end(&end(0, 2, 2, 0, true)), EndAction::None);
        assert!(!p.is_pinned(obj(0)));

        // node 3 now holds the majority (2 open), so a further request from
        // node 3 is granted ("may lead to a migration at some point later if
        // further move-requests are issued at the same node")…
        assert_eq!(p.on_move(&req(0, 2, 3, 3)), MoveDecision::Grant);
    }

    #[test]
    fn compare_nodes_denies_minority_requesters_when_unlocked() {
        let mut p = CompareNodes::new();
        // two open requests pile up at node 3 (denied while locked)
        assert_eq!(p.on_move(&req(0, 1, 2, 0)), MoveDecision::Grant);
        p.on_installed(obj(0), node(2), block(0));
        let _ = p.on_move(&req(0, 2, 3, 1));
        let _ = p.on_move(&req(0, 2, 3, 2));
        let _ = p.on_end(&end(0, 2, 2, 0, true));
        // a single fresh request from node 4 (count 1) loses to node 3's 2
        assert_eq!(p.on_move(&req(0, 2, 4, 3)), MoveDecision::Deny);
    }

    #[test]
    fn compare_nodes_grants_local_requests() {
        let mut p = CompareNodes::new();
        assert_eq!(p.on_move(&req(0, 5, 5, 0)), MoveDecision::Grant);
    }

    #[test]
    fn compare_nodes_end_decrements() {
        let mut p = CompareNodes::new();
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        assert_eq!(p.open_moves(obj(0), node(2)), 1);
        let _ = p.on_end(&end(0, 2, 2, 0, true));
        assert_eq!(p.open_moves(obj(0), node(2)), 0);
    }

    #[test]
    fn reinstantiation_migrates_on_end_majority() {
        let mut p = CompareAndReinstantiate::new();
        // holder at node 2 with one open block
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        // two waiting blocks at node 3, denied while locked
        assert_eq!(p.on_move(&req(0, 2, 3, 1)), MoveDecision::Deny);
        assert_eq!(p.on_move(&req(0, 2, 3, 2)), MoveDecision::Deny);
        // holder finishes: node 3 holds a clear majority (2 > 0) → migrate
        let action = p.on_end(&end(0, 2, 2, 0, true));
        assert_eq!(action, EndAction::Migrate(node(3)));
    }

    #[test]
    fn reinstantiation_needs_a_clear_majority() {
        let mut p = CompareAndReinstantiate::new();
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        // a single waiter is not a clear majority
        let _ = p.on_move(&req(0, 2, 3, 1));
        assert_eq!(p.on_end(&end(0, 2, 2, 0, true)), EndAction::None);
    }

    #[test]
    fn reinstantiation_stays_put_without_majority() {
        let mut p = CompareAndReinstantiate::new();
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        // no other open requests: end migrates nothing
        assert_eq!(p.on_end(&end(0, 2, 2, 0, true)), EndAction::None);
    }

    #[test]
    fn reinstantiation_tie_breaks_deterministically() {
        let mut p = CompareAndReinstantiate::new();
        // granted holder at node 2
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        // two denied waiters each at nodes 3 and 4
        let _ = p.on_move(&req(0, 2, 3, 1));
        let _ = p.on_move(&req(0, 2, 3, 2));
        let _ = p.on_move(&req(0, 2, 4, 3));
        let _ = p.on_move(&req(0, 2, 4, 4));
        // unlock: nodes 3 and 4 tie at two open requests; the leader prefers
        // the lower node id, and 2 > 0 at the current node → migrate to n3.
        let action = p.on_end(&end(0, 2, 2, 0, true));
        assert_eq!(action, EndAction::Migrate(node(3)));
    }

    #[test]
    fn reinstantiation_ignores_ends_of_denied_blocks() {
        let mut p = CompareAndReinstantiate::new();
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        let _ = p.on_move(&req(0, 2, 3, 1));
        // the denied block gives up without its move ever being granted;
        // the lock is untouched and nothing migrates
        assert_eq!(p.on_end(&end(0, 2, 3, 1, false)), EndAction::None);
        assert!(p.is_pinned(obj(0)));
    }

    #[test]
    fn cooldown_zero_is_plain_conventional() {
        let mut p = CooldownFixing::new(0);
        assert_eq!(p.cooldown(), 0);
        assert_eq!(p.on_move(&req(0, 1, 2, 0)), MoveDecision::Grant);
        p.on_installed(obj(0), node(2), block(0));
        assert_eq!(p.on_move(&req(0, 2, 3, 1)), MoveDecision::Grant);
    }

    #[test]
    fn cooldown_is_per_object_and_local_moves_bypass_it() {
        let mut p = CooldownFixing::new(1);
        p.on_installed(obj(0), node(1), block(0));
        // another object is unaffected
        assert_eq!(p.on_move(&req(1, 1, 2, 1)), MoveDecision::Grant);
        // a local request on the cooling object does not burn the counter
        assert_eq!(p.on_move(&req(0, 1, 1, 2)), MoveDecision::Grant);
        assert_eq!(p.on_move(&req(0, 1, 2, 3)), MoveDecision::Deny);
        assert_eq!(p.on_move(&req(0, 1, 2, 4)), MoveDecision::Grant);
    }

    #[test]
    fn ledger_handles_unknown_ends_gracefully() {
        let mut p = CompareNodes::new();
        // an end for a move never recorded must not underflow or panic
        let _ = p.on_end(&end(0, 1, 2, 0, false));
        assert_eq!(p.open_moves(obj(0), node(2)), 0);
    }

    #[test]
    fn placement_lease_expiry_releases_a_crashed_holders_lock() {
        let mut p = TransientPlacement::with_lease_ms(100);
        assert_eq!(p.on_move(&req(0, 1, 2, 0)), MoveDecision::Grant);
        p.on_installed(obj(0), node(2), block(0));
        assert_eq!(p.held_locks(), vec![(obj(0), block(0))]);

        // activity renews the lease: still locked well past the original TTL
        p.renew_lease(obj(0), 80);
        assert_eq!(p.expire_leases(150), Vec::new());
        assert_eq!(p.on_move(&req(0, 2, 3, 1)), MoveDecision::Deny);

        // then the holder goes silent (crash / lost end-request): expiry
        // frees the object and a new mover wins
        assert_eq!(p.expire_leases(180), vec![(obj(0), block(0))]);
        assert!(p.held_locks().is_empty());
        assert_eq!(p.on_move(&req(0, 2, 3, 2)), MoveDecision::Grant);
    }

    #[test]
    fn placement_tolerates_stale_and_duplicate_ends() {
        let mut p = TransientPlacement::with_lease_ms(50);
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        // lease expires; lock re-granted to block 1
        let _ = p.expire_leases(60);
        let _ = p.on_move(&req(0, 2, 3, 1));
        p.on_installed(obj(0), node(3), block(1));
        // block 0's end-request finally arrives — must not free block 1's lock
        assert_eq!(p.on_end(&end(0, 3, 2, 0, true)), EndAction::None);
        assert_eq!(p.lock_holder(obj(0)), Some(block(1)));
        // and the real holder's end still works, even duplicated
        assert_eq!(p.on_end(&end(0, 3, 3, 1, true)), EndAction::None);
        assert_eq!(p.on_end(&end(0, 3, 3, 1, true)), EndAction::None);
        assert_eq!(p.lock_holder(obj(0)), None);
    }

    #[test]
    fn comparing_lease_expiry_retires_the_holders_ledger_entry() {
        let mut p = CompareNodes::with_lease_ms(100);
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        assert_eq!(p.open_moves(obj(0), node(2)), 1);

        // holder crashes: expiry releases the lock AND retires its open move,
        // so the dead node does not outvote live requesters forever
        assert_eq!(p.expire_leases(200), vec![(obj(0), block(0))]);
        assert_eq!(p.open_moves(obj(0), node(2)), 0);
        assert!(!p.is_pinned(obj(0)));
        assert_eq!(p.on_move(&req(0, 2, 3, 1)), MoveDecision::Grant);
    }

    #[test]
    fn reinstantiation_ignores_stale_ends_for_migration_decisions() {
        let mut p = CompareAndReinstantiate::with_lease_ms(50);
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        // pile up a majority elsewhere
        let _ = p.on_move(&req(0, 2, 3, 1));
        let _ = p.on_move(&req(0, 2, 3, 2));
        // the lease expires before the holder's end arrives
        let _ = p.expire_leases(100);
        // the stale end no longer holds the lock, so it must not trigger a
        // reinstantiation migration
        assert_eq!(p.on_end(&end(0, 2, 2, 0, true)), EndAction::None);
    }

    #[test]
    fn placement_crash_release_frees_the_stranded_lock_immediately() {
        let mut p = TransientPlacement::with_lease_ms(1_000);
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        let _ = p.on_move(&req(1, 1, 3, 1));
        p.on_installed(obj(1), node(3), block(1));

        // node 2 crashes hosting object 0: its lock is released at once,
        // long before the lease would have expired; object 1 is untouched
        let released = p.release_locks_for(&[obj(0)]);
        assert_eq!(released, vec![(obj(0), block(0))]);
        assert_eq!(p.lock_holder(obj(0)), None);
        assert_eq!(p.lock_holder(obj(1)), Some(block(1)));
        assert_eq!(p.on_move(&req(0, 2, 3, 2)), MoveDecision::Grant);

        // the dead holder's end-request straggling in later is harmless
        assert_eq!(p.on_end(&end(0, 2, 2, 0, true)), EndAction::None);
    }

    #[test]
    fn comparing_crash_release_retires_the_ledger_entry_too() {
        let mut p = CompareNodes::with_lease_ms(1_000);
        let _ = p.on_move(&req(0, 1, 2, 0));
        p.on_installed(obj(0), node(2), block(0));
        assert_eq!(p.open_moves(obj(0), node(2)), 1);

        let released = p.release_locks_for(&[obj(0)]);
        assert_eq!(released, vec![(obj(0), block(0))]);
        assert_eq!(p.open_moves(obj(0), node(2)), 0);
        assert!(!p.is_pinned(obj(0)));
        // a fresh mover is not outvoted by the dead node's stale entry
        assert_eq!(p.on_move(&req(0, 2, 3, 1)), MoveDecision::Grant);
    }

    #[test]
    fn crash_release_on_lock_free_policies_is_a_no_op() {
        let mut p = ConventionalMigration::new();
        assert_eq!(p.release_locks_for(&[obj(0), obj(1)]), Vec::new());
    }

    #[test]
    fn lock_free_policies_report_no_leases() {
        let mut p = ConventionalMigration::new();
        p.renew_lease(obj(0), 5);
        assert_eq!(p.expire_leases(1_000), Vec::new());
        assert!(p.held_locks().is_empty());
    }
}
