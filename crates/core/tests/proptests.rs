//! Property-based tests for attachment closures, alliances, policies and the
//! cost model.

use oml_core::attach::{AttachmentGraph, AttachmentMode, ClosureScratch, Traversal};
use oml_core::cost::CostModel;
use oml_core::ids::{AllianceId, BlockId, NodeId, ObjectId};
use oml_core::policies::TransientPlacement;
use oml_core::policy::{EndRequest, MoveDecision, MovePolicy, MoveRequest};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N_OBJECTS: u32 = 12;

#[derive(Debug, Clone)]
struct EdgeSpec {
    from: u32,
    to: u32,
    ctx: Option<u32>,
}

fn edges() -> impl Strategy<Value = Vec<EdgeSpec>> {
    proptest::collection::vec(
        (0..N_OBJECTS, 0..N_OBJECTS, proptest::option::of(0..3u32))
            .prop_map(|(from, to, ctx)| EdgeSpec { from, to, ctx }),
        0..40,
    )
}

fn build(mode: AttachmentMode, specs: &[EdgeSpec]) -> AttachmentGraph {
    let mut g = AttachmentGraph::new(mode);
    for e in specs {
        if e.from != e.to {
            let ctx = e.ctx.map(AllianceId::new);
            let _ = g.attach(ObjectId::new(e.from), ObjectId::new(e.to), ctx);
        }
    }
    g
}

proptest! {
    /// Closures are reflexive: they always contain the start object.
    #[test]
    fn closure_contains_start(specs in edges(), start in 0..N_OBJECTS) {
        let g = build(AttachmentMode::Unrestricted, &specs);
        let c = g.closure(ObjectId::new(start), Traversal::AllEdges);
        prop_assert!(c.contains(&ObjectId::new(start)));
    }

    /// Unrestricted closures are symmetric: b ∈ closure(a) ⇔ a ∈ closure(b)
    /// (they are connected components).
    #[test]
    fn closure_is_symmetric(specs in edges(), a in 0..N_OBJECTS, b in 0..N_OBJECTS) {
        let g = build(AttachmentMode::Unrestricted, &specs);
        let ca = g.closure(ObjectId::new(a), Traversal::AllEdges);
        let cb = g.closure(ObjectId::new(b), Traversal::AllEdges);
        prop_assert_eq!(
            ca.contains(&ObjectId::new(b)),
            cb.contains(&ObjectId::new(a))
        );
    }

    /// Members of one unrestricted closure share exactly that closure.
    #[test]
    fn closure_is_an_equivalence_class(specs in edges(), a in 0..N_OBJECTS) {
        let g = build(AttachmentMode::Unrestricted, &specs);
        let ca = g.closure(ObjectId::new(a), Traversal::AllEdges);
        for &m in &ca {
            prop_assert_eq!(g.closure(m, Traversal::AllEdges), ca.clone());
        }
    }

    /// The A-transitive closure for any context is a subset of the
    /// unrestricted closure — restricting transitiveness can only shrink the
    /// moved working set.
    #[test]
    fn a_closure_subset_of_unrestricted(
        specs in edges(),
        start in 0..N_OBJECTS,
        ctx in proptest::option::of(0..3u32),
    ) {
        let g = build(AttachmentMode::ATransitive, &specs);
        let scoped = g.migration_closure(ObjectId::new(start), ctx.map(AllianceId::new));
        let full = g.closure(ObjectId::new(start), Traversal::AllEdges);
        prop_assert!(scoped.is_subset(&full));
    }

    /// In exclusive mode every object has out-degree ≤ 1 no matter what
    /// attach sequence was attempted.
    #[test]
    fn exclusive_mode_bounds_out_degree(specs in edges()) {
        let g = build(AttachmentMode::Exclusive, &specs);
        for i in 0..N_OBJECTS {
            prop_assert!(g.out_degree(ObjectId::new(i)) <= 1);
        }
    }

    /// Detaching every edge that was attached empties the graph and restores
    /// singleton closures.
    #[test]
    fn detach_everything_restores_singletons(specs in edges()) {
        let mut g = build(AttachmentMode::Unrestricted, &specs);
        let objects: Vec<ObjectId> = (0..N_OBJECTS).map(ObjectId::new).collect();
        for &o in &objects {
            g.detach_all(o);
        }
        prop_assert_eq!(g.edge_count(), 0);
        for &o in &objects {
            prop_assert_eq!(g.closure(o, Traversal::AllEdges).len(), 1);
        }
    }

    /// Placement safety: at most one block ever holds an object, and a grant
    /// is impossible while a lock is held.
    #[test]
    fn placement_lock_exclusion(ops in proptest::collection::vec((0..6u32, 0..4u32, any::<bool>()), 1..80)) {
        let mut p = TransientPlacement::new();
        let obj = ObjectId::new(0);
        let mut holder: Option<BlockId> = None;
        let mut next_block = 0u32;
        for (from, _at, end_first) in ops {
            let from = NodeId::new(from);
            if end_first {
                // end the current holder if any
                if let Some(b) = holder.take() {
                    let _ = p.on_end(&EndRequest {
                        object: obj,
                        at: from,
                        from,
                        block: b,
                        was_granted: true,
                    });
                }
            } else {
                let block = BlockId::new(next_block);
                next_block += 1;
                let decision = p.on_move(&MoveRequest {
                    object: obj,
                    at: NodeId::new(0),
                    from,
                    block,
                });
                match decision {
                    MoveDecision::Grant => {
                        prop_assert!(holder.is_none(), "grant while locked");
                        p.on_installed(obj, from, block);
                        holder = Some(block);
                    }
                    MoveDecision::Deny => {
                        prop_assert!(holder.is_some(), "deny while unlocked");
                    }
                }
            }
            prop_assert_eq!(p.lock_holder(obj), holder);
        }
    }

    /// §3.2: placement strictly beats the conventional worst case for every
    /// sensible parameterization, by exactly M + C.
    #[test]
    fn cost_model_ordering(m in 1.1..500.0f64, c in 0.01..1.0f64, n in 1u64..1000) {
        prop_assume!(m > c);
        let model = CostModel::new(m, c);
        let adv = model.conventional_conflict_worst(n) - model.placement_conflict(n);
        prop_assert!(adv > 0.0);
        prop_assert!((adv - (m + c)).abs() < 1e-9 * (1.0 + m + c));
    }

    /// The incremental (union-find) closure agrees with the BFS oracle after
    /// every prefix of an arbitrary attach/detach/detach-all history, in all
    /// three attachment modes and for every (start, context) query.
    ///
    /// `migration_closure` walks the adjacency lists from scratch on each
    /// call; `migration_closure_into` answers from incrementally maintained
    /// components (with lazy dirty-rebuild after detach). Checking after
    /// *every* operation exercises the rebuild path right where it matters —
    /// queries against components a preceding detach just dirtied.
    #[test]
    fn incremental_closure_matches_bfs_oracle(
        ops in proptest::collection::vec(
            (0..5u32, 0..N_OBJECTS, 0..N_OBJECTS, proptest::option::of(0..3u32)),
            1..30,
        ),
        mode_sel in 0..3u32,
    ) {
        let mode = match mode_sel {
            0 => AttachmentMode::Unrestricted,
            1 => AttachmentMode::ATransitive,
            _ => AttachmentMode::Exclusive,
        };
        let mut g = AttachmentGraph::new(mode);
        let mut scratch = ClosureScratch::new();
        for (kind, a, b, ctx) in ops {
            match kind {
                // attach dominates the mix, as it does in real workloads
                0..=2 => {
                    if a != b {
                        let _ = g.attach(ObjectId::new(a), ObjectId::new(b), ctx.map(AllianceId::new));
                    }
                }
                3 => {
                    let _ = g.detach(ObjectId::new(a), ObjectId::new(b));
                }
                _ => {
                    let _ = g.detach_all(ObjectId::new(a));
                }
            }
            for start in 0..N_OBJECTS {
                let start = ObjectId::new(start);
                for ctx in [None, Some(0), Some(1), Some(2)] {
                    let ctx = ctx.map(AllianceId::new);
                    let oracle = g.migration_closure(start, ctx);
                    g.migration_closure_into(start, ctx, &mut scratch);
                    let fast: Vec<ObjectId> = scratch.members().to_vec();
                    let slow: Vec<ObjectId> = oracle.into_iter().collect();
                    prop_assert_eq!(fast, slow, "mode {:?} start {:?} ctx {:?}", mode, start, ctx);
                }
            }
        }
    }

    /// Closure size equals the number of reachable objects in a reference
    /// union-find built from the same undirected edges.
    #[test]
    fn closure_matches_union_find(specs in edges(), start in 0..N_OBJECTS) {
        let g = build(AttachmentMode::Unrestricted, &specs);
        // reference: naive union-find over the *applied* edges (skip self-loops)
        let mut parent: Vec<u32> = (0..N_OBJECTS).collect();
        fn find(parent: &mut Vec<u32>, x: u32) -> u32 {
            if parent[x as usize] != x {
                let root = find(parent, parent[x as usize]);
                parent[x as usize] = root;
            }
            parent[x as usize]
        }
        for e in &specs {
            if e.from != e.to && g.contains_edge(ObjectId::new(e.from), ObjectId::new(e.to)) {
                let (ra, rb) = (find(&mut parent, e.from), find(&mut parent, e.to));
                if ra != rb {
                    parent[ra as usize] = rb;
                }
            }
        }
        let root = find(&mut parent, start);
        let expected: BTreeSet<ObjectId> = (0..N_OBJECTS)
            .filter(|&i| find(&mut parent, i) == root)
            .map(ObjectId::new)
            .collect();
        prop_assert_eq!(g.closure(ObjectId::new(start), Traversal::AllEdges), expected);
    }
}
