//! `repro bench` — the tracked performance baseline.
//!
//! Runs a fixed quick-precision suite (the attachment-heavy Fig. 16 sweeps
//! plus the three single-layer figures), measures wall time and simulator
//! event throughput per experiment, and writes `BENCH_02.json` at the
//! invocation directory. The suite re-uses the *exact* configs, series and
//! per-point seeds of the corresponding `figNN` experiment functions, so its
//! numbers track the same work the figures do.
//!
//! The recorded [`BASELINE`] values were measured on this suite immediately
//! **before** the dense-arena/incremental-closure rework (commit `966c926`,
//! BTreeMap adjacency + allocating BFS per migration, HashMap world state),
//! single-threaded. Every later run writes both the baseline and the fresh
//! numbers, so the speedup trajectory is part of the artifact.

use std::fmt::Write as _;
use std::time::Instant;

use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_workload::{run_scenario, ScenarioConfig};

use crate::experiments::{point_seed, RunOptions};

/// Wall time and event throughput of one benchmark experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchExperiment {
    /// Experiment id (`fig16`, `fig16x`, …).
    pub name: &'static str,
    /// Total wall-clock seconds for the whole sweep.
    pub wall_s: f64,
    /// Total simulator events handled across all sweep points.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
}

/// One full suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Per-experiment measurements, in suite order.
    pub experiments: Vec<BenchExperiment>,
}

/// Pre-rework reference numbers: `(name, wall_s, events)`, quick precision,
/// seed `0x0b9e_c7ed`, one worker thread, measured on the seed implementation
/// (BTreeMap attachment graph, allocating closure BFS, HashMap world state).
pub const BASELINE: [(&str, f64, u64); 5] = [
    ("fig16", 0.442, 3_767_189),
    ("fig16x", 0.567, 4_974_848),
    ("fig8", 0.613, 5_722_263),
    ("fig12", 0.295, 2_417_558),
    ("fig14", 0.517, 4_233_462),
];

/// One figure's series: label, policy, attachment mode per curve.
type SeriesGrid<'a> = &'a [(&'a str, PolicyKind, AttachmentMode)];

/// The series of the basic three-policy figures.
const BASIC: [(&str, PolicyKind, AttachmentMode); 3] = [
    (
        "without migration",
        PolicyKind::Sedentary,
        AttachmentMode::Unrestricted,
    ),
    (
        "migration",
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
    ),
    (
        "transient placement",
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
    ),
];

const FIG16: [(&str, PolicyKind, AttachmentMode); 5] = [
    (
        "without migration",
        PolicyKind::Sedentary,
        AttachmentMode::Unrestricted,
    ),
    (
        "migration + unrestricted",
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
    ),
    (
        "migration + a-transitive",
        PolicyKind::ConventionalMigration,
        AttachmentMode::ATransitive,
    ),
    (
        "placement + unrestricted",
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
    ),
    (
        "placement + a-transitive",
        PolicyKind::TransientPlacement,
        AttachmentMode::ATransitive,
    ),
];

const FIG16X: [(&str, PolicyKind, AttachmentMode); 7] = [
    FIG16[0],
    FIG16[1],
    FIG16[2],
    FIG16[3],
    FIG16[4],
    (
        "migration + exclusive",
        PolicyKind::ConventionalMigration,
        AttachmentMode::Exclusive,
    ),
    (
        "placement + exclusive",
        PolicyKind::TransientPlacement,
        AttachmentMode::Exclusive,
    ),
];

fn run_grid(configs: &[ScenarioConfig], series: SeriesGrid, opts: &RunOptions) -> (f64, u64) {
    let start = Instant::now();
    let mut events = 0u64;
    for (pi, config) in configs.iter().enumerate() {
        for (si, &(_, policy, mode)) in series.iter().enumerate() {
            let out = run_scenario(
                config,
                policy,
                mode,
                opts.stopping,
                point_seed(opts.seed, pi, si),
            );
            events += out.events;
            std::hint::black_box(&out.metrics);
        }
    }
    (start.elapsed().as_secs_f64(), events)
}

/// Runs the fixed benchmark suite at the given precision and seed.
///
/// The sweep grids mirror `fig8`/`fig12`/`fig14`/`fig16`/`fig16x` exactly
/// (same configs, same series order, same per-point seeds) but run on one
/// thread so wall times are comparable across machines and commits.
#[must_use]
pub fn run_bench_suite(opts: &RunOptions) -> BenchReport {
    let fig16_cs = [1u32, 2, 4, 6, 8, 10, 12];
    let fig16_cfg: Vec<ScenarioConfig> =
        fig16_cs.iter().map(|&c| ScenarioConfig::fig16(c)).collect();
    let fig8_xs = [
        0.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0,
    ];
    let fig8_cfg: Vec<ScenarioConfig> = fig8_xs.iter().map(|&x| ScenarioConfig::fig8(x)).collect();
    let fig12_cs = [1u32, 2, 4, 6, 8, 10, 12, 14, 16, 20, 25];
    let fig12_cfg: Vec<ScenarioConfig> =
        fig12_cs.iter().map(|&c| ScenarioConfig::fig12(c)).collect();
    let fig14_cs = [1u32, 2, 4, 6, 9, 12, 16, 20, 24];
    let fig14_cfg: Vec<ScenarioConfig> =
        fig14_cs.iter().map(|&c| ScenarioConfig::fig14(c)).collect();
    let fig14_series: [(&str, PolicyKind, AttachmentMode); 3] = [
        (
            "conservative place-policy",
            PolicyKind::TransientPlacement,
            AttachmentMode::Unrestricted,
        ),
        (
            "comparing the nodes",
            PolicyKind::CompareNodes,
            AttachmentMode::Unrestricted,
        ),
        (
            "comparing and reinstantiation",
            PolicyKind::CompareAndReinstantiate,
            AttachmentMode::Unrestricted,
        ),
    ];

    let jobs: [(&'static str, &[ScenarioConfig], SeriesGrid); 5] = [
        ("fig16", &fig16_cfg, &FIG16),
        ("fig16x", &fig16_cfg, &FIG16X),
        ("fig8", &fig8_cfg, &BASIC),
        ("fig12", &fig12_cfg, &BASIC),
        ("fig14", &fig14_cfg, &fig14_series),
    ];

    let mut experiments = Vec::new();
    for (name, configs, series) in jobs {
        let (wall_s, events) = run_grid(configs, series, opts);
        experiments.push(BenchExperiment {
            name,
            wall_s,
            events,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
        });
    }
    BenchReport { experiments }
}

fn json_experiments(out: &mut String, rows: &[BenchExperiment]) {
    for (i, e) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"wall_s\": {:.4}, \"events\": {}, \"events_per_sec\": {:.0}}}{}",
            e.name, e.wall_s, e.events, e.events_per_sec, sep
        );
    }
}

/// Renders the report (plus the recorded pre-rework baseline and the derived
/// speedups) as the `BENCH_02.json` document.
#[must_use]
pub fn render_bench_json(report: &BenchReport, seed: u64) -> String {
    let baseline: Vec<BenchExperiment> = BASELINE
        .iter()
        .map(|&(name, wall_s, events)| BenchExperiment {
            name,
            wall_s,
            events,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
        })
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench_id\": \"BENCH_02\",");
    let _ = writeln!(out, "  \"precision\": \"quick\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"threads\": 1,");
    let _ = writeln!(
        out,
        "  \"baseline_note\": \"pre-arena seed implementation (commit 966c926): BTreeMap adjacency, allocating closure BFS, HashMap world state\","
    );
    out.push_str("  \"baseline\": {\n");
    json_experiments(&mut out, &baseline);
    out.push_str("  },\n");
    out.push_str("  \"current\": {\n");
    json_experiments(&mut out, &report.experiments);
    out.push_str("  },\n");
    out.push_str("  \"speedup_vs_baseline\": {\n");
    for (i, e) in report.experiments.iter().enumerate() {
        let sep = if i + 1 == report.experiments.len() {
            ""
        } else {
            ","
        };
        let base = baseline.iter().find(|b| b.name == e.name);
        let speedup = base.map_or(f64::NAN, |b| b.wall_s / e.wall_s);
        let _ = writeln!(out, "    \"{}\": {:.2}{}", e.name, speedup, sep);
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oml_des::stats::StoppingRule;

    #[test]
    fn bench_suite_runs_and_reports() {
        let opts = RunOptions {
            stopping: StoppingRule {
                relative_precision: 0.2,
                confidence: 0.9,
                min_batches: 2,
                max_samples: 500,
            },
            seed: 1,
            threads: 1,
        };
        let report = run_bench_suite(&opts);
        assert_eq!(report.experiments.len(), 5);
        for e in &report.experiments {
            assert!(e.events > 0, "{} handled no events", e.name);
            assert!(e.wall_s > 0.0);
        }
        let json = render_bench_json(&report, 1);
        assert!(json.contains("\"bench_id\": \"BENCH_02\""));
        assert!(json.contains("\"fig16\""));
        assert!(json.contains("speedup_vs_baseline"));
    }
}
