//! `repro bench` — the tracked performance baseline.
//!
//! Runs a fixed quick-precision suite (the attachment-heavy Fig. 16 sweeps
//! plus the three single-layer figures), measures wall time and simulator
//! event throughput per experiment, and writes `BENCH_02.json` at the
//! invocation directory. The suite re-uses the *exact* configs, series and
//! per-point seeds of the corresponding `figNN` experiment functions, so its
//! numbers track the same work the figures do.
//!
//! The recorded [`BASELINE`] values were measured on this suite immediately
//! **before** the dense-arena/incremental-closure rework (commit `966c926`,
//! BTreeMap adjacency + allocating BFS per migration, HashMap world state),
//! single-threaded. Every later run writes both the baseline and the fresh
//! numbers, so the speedup trajectory is part of the artifact.

use std::fmt::Write as _;
use std::time::Instant;

use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_sim::metrics::MetricsRow;
use oml_workload::mega::MegaReport;
use oml_workload::{run_scenario, run_scenario_replicated, ScenarioConfig};

use crate::experiments::{parallel_map, point_seed, RunOptions};

/// Wall time and event throughput of one benchmark experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchExperiment {
    /// Experiment id (`fig16`, `fig16x`, …).
    pub name: &'static str,
    /// Total wall-clock seconds for the whole sweep.
    pub wall_s: f64,
    /// Total simulator events handled across all sweep points.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
}

/// One full suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Per-experiment measurements, in suite order.
    pub experiments: Vec<BenchExperiment>,
}

/// Pre-rework reference numbers: `(name, wall_s, events)`, quick precision,
/// seed `0x0b9e_c7ed`, one worker thread, measured on the seed implementation
/// (BTreeMap attachment graph, allocating closure BFS, HashMap world state).
pub const BASELINE: [(&str, f64, u64); 5] = [
    ("fig16", 0.442, 3_767_189),
    ("fig16x", 0.567, 4_974_848),
    ("fig8", 0.613, 5_722_263),
    ("fig12", 0.295, 2_417_558),
    ("fig14", 0.517, 4_233_462),
];

/// One figure's series: label, policy, attachment mode per curve.
type SeriesGrid<'a> = &'a [(&'a str, PolicyKind, AttachmentMode)];

/// The series of the basic three-policy figures.
const BASIC: [(&str, PolicyKind, AttachmentMode); 3] = [
    (
        "without migration",
        PolicyKind::Sedentary,
        AttachmentMode::Unrestricted,
    ),
    (
        "migration",
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
    ),
    (
        "transient placement",
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
    ),
];

const FIG16: [(&str, PolicyKind, AttachmentMode); 5] = [
    (
        "without migration",
        PolicyKind::Sedentary,
        AttachmentMode::Unrestricted,
    ),
    (
        "migration + unrestricted",
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
    ),
    (
        "migration + a-transitive",
        PolicyKind::ConventionalMigration,
        AttachmentMode::ATransitive,
    ),
    (
        "placement + unrestricted",
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
    ),
    (
        "placement + a-transitive",
        PolicyKind::TransientPlacement,
        AttachmentMode::ATransitive,
    ),
];

const FIG16X: [(&str, PolicyKind, AttachmentMode); 7] = [
    FIG16[0],
    FIG16[1],
    FIG16[2],
    FIG16[3],
    FIG16[4],
    (
        "migration + exclusive",
        PolicyKind::ConventionalMigration,
        AttachmentMode::Exclusive,
    ),
    (
        "placement + exclusive",
        PolicyKind::TransientPlacement,
        AttachmentMode::Exclusive,
    ),
];

fn run_grid(configs: &[ScenarioConfig], series: SeriesGrid, opts: &RunOptions) -> (f64, u64) {
    let start = Instant::now();
    let cols = series.len();
    let outs = parallel_map(configs.len() * cols, opts.threads, |job| {
        let (pi, si) = (job / cols, job % cols);
        let (_, policy, mode) = series[si];
        let out = run_scenario(
            &configs[pi],
            policy,
            mode,
            opts.stopping,
            point_seed(opts.seed, pi, si),
        );
        std::hint::black_box(&out.metrics);
        out.events
    });
    (start.elapsed().as_secs_f64(), outs.iter().sum())
}

/// Runs the fixed benchmark suite at the given precision and seed.
///
/// The sweep grids mirror `fig8`/`fig12`/`fig14`/`fig16`/`fig16x` exactly
/// (same configs, same series order, same per-point seeds). `repro bench`
/// defaults to one thread so wall times stay comparable across machines and
/// commits, but `opts.threads` is honored — and recorded in the JSON — when
/// a caller explicitly asks for more.
#[must_use]
pub fn run_bench_suite(opts: &RunOptions) -> BenchReport {
    let fig16_cs = [1u32, 2, 4, 6, 8, 10, 12];
    let fig16_cfg: Vec<ScenarioConfig> =
        fig16_cs.iter().map(|&c| ScenarioConfig::fig16(c)).collect();
    let fig8_xs = [
        0.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0,
    ];
    let fig8_cfg: Vec<ScenarioConfig> = fig8_xs.iter().map(|&x| ScenarioConfig::fig8(x)).collect();
    let fig12_cs = [1u32, 2, 4, 6, 8, 10, 12, 14, 16, 20, 25];
    let fig12_cfg: Vec<ScenarioConfig> =
        fig12_cs.iter().map(|&c| ScenarioConfig::fig12(c)).collect();
    let fig14_cs = [1u32, 2, 4, 6, 9, 12, 16, 20, 24];
    let fig14_cfg: Vec<ScenarioConfig> =
        fig14_cs.iter().map(|&c| ScenarioConfig::fig14(c)).collect();
    let fig14_series: [(&str, PolicyKind, AttachmentMode); 3] = [
        (
            "conservative place-policy",
            PolicyKind::TransientPlacement,
            AttachmentMode::Unrestricted,
        ),
        (
            "comparing the nodes",
            PolicyKind::CompareNodes,
            AttachmentMode::Unrestricted,
        ),
        (
            "comparing and reinstantiation",
            PolicyKind::CompareAndReinstantiate,
            AttachmentMode::Unrestricted,
        ),
    ];

    let jobs: [(&'static str, &[ScenarioConfig], SeriesGrid); 5] = [
        ("fig16", &fig16_cfg, &FIG16),
        ("fig16x", &fig16_cfg, &FIG16X),
        ("fig8", &fig8_cfg, &BASIC),
        ("fig12", &fig12_cfg, &BASIC),
        ("fig14", &fig14_cfg, &fig14_series),
    ];

    let mut experiments = Vec::new();
    for (name, configs, series) in jobs {
        let (wall_s, events) = run_grid(configs, series, opts);
        experiments.push(BenchExperiment {
            name,
            wall_s,
            events,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
        });
    }
    BenchReport { experiments }
}

fn json_experiments(out: &mut String, rows: &[BenchExperiment]) {
    for (i, e) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"wall_s\": {:.4}, \"events\": {}, \"events_per_sec\": {:.0}}}{}",
            e.name, e.wall_s, e.events, e.events_per_sec, sep
        );
    }
}

/// Human-readable label for a stopping rule: the named precision presets
/// map back to their names, anything else is spelled out.
#[must_use]
pub fn precision_label(rule: &StoppingRule) -> String {
    if *rule == RunOptions::quick().stopping {
        "quick".to_owned()
    } else if *rule == RunOptions::paper().stopping {
        "paper".to_owned()
    } else {
        format!(
            "custom(rp={}, conf={}, min_batches={}, max_samples={})",
            rule.relative_precision, rule.confidence, rule.min_batches, rule.max_samples
        )
    }
}

/// Renders the report (plus the recorded pre-rework baseline and the derived
/// speedups) as the `BENCH_02.json` document.
///
/// The `precision` and `threads` fields record what the run actually used
/// (taken from `opts`), not a hardcoded assumption.
#[must_use]
pub fn render_bench_json(report: &BenchReport, opts: &RunOptions) -> String {
    let baseline: Vec<BenchExperiment> = BASELINE
        .iter()
        .map(|&(name, wall_s, events)| BenchExperiment {
            name,
            wall_s,
            events,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
        })
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench_id\": \"BENCH_02\",");
    let _ = writeln!(
        out,
        "  \"precision\": \"{}\",",
        precision_label(&opts.stopping)
    );
    let _ = writeln!(out, "  \"seed\": {},", opts.seed);
    let _ = writeln!(out, "  \"threads\": {},", opts.threads);
    let _ = writeln!(
        out,
        "  \"baseline_note\": \"pre-arena seed implementation (commit 966c926): BTreeMap adjacency, allocating closure BFS, HashMap world state\","
    );
    out.push_str("  \"baseline\": {\n");
    json_experiments(&mut out, &baseline);
    out.push_str("  },\n");
    out.push_str("  \"current\": {\n");
    json_experiments(&mut out, &report.experiments);
    out.push_str("  },\n");
    out.push_str("  \"speedup_vs_baseline\": {\n");
    for (i, e) in report.experiments.iter().enumerate() {
        let sep = if i + 1 == report.experiments.len() {
            ""
        } else {
            ","
        };
        let base = baseline.iter().find(|b| b.name == e.name);
        let speedup = base.map_or(f64::NAN, |b| b.wall_s / e.wall_s);
        let _ = writeln!(out, "    \"{}\": {:.2}{}", e.name, speedup, sep);
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// One thread count's measurement of the replicated fig16 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRun {
    /// Worker threads used inside each sweep point's replication runner.
    pub threads: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_s: f64,
    /// Simulator events across all points and replications.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// FNV-1a digest over every point's metrics (bit-exact).
    pub fingerprint: u64,
}

/// The `repro scaling` result: a threads axis over one fixed workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingReport {
    /// Cores the host actually has (speedups saturate here).
    pub host_cores: usize,
    /// One run per thread count, in axis order.
    pub runs: Vec<ScalingRun>,
    /// Whether every run produced identical events and metric fingerprints.
    pub bit_identical: bool,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn fingerprint_row(hash: u64, row: &MetricsRow) -> u64 {
    let mut h = hash;
    for bits in [
        row.comm_time.to_bits(),
        row.call_time.to_bits(),
        row.migration_time.to_bits(),
        row.control_time.to_bits(),
        row.transfer_load.to_bits(),
        row.call_p95.to_bits(),
        row.ci_half_width.unwrap_or(-1.0).to_bits(),
        row.calls,
    ] {
        h = fnv1a(h, &bits.to_le_bytes());
    }
    h
}

/// Runs the fig16 sweep through the **parallel replication runner** once per
/// thread count and measures the wall-time scaling.
///
/// Points run sequentially; only the replications inside each point fan out,
/// so the threads axis isolates exactly the machinery the tentpole added.
/// Every run records a bit-exact fingerprint of all 35 point metrics —
/// [`ScalingReport::bit_identical`] is the determinism verdict.
#[must_use]
pub fn run_scaling_suite(opts: &RunOptions, threads_axis: &[usize]) -> ScalingReport {
    let fig16_cs = [1u32, 2, 4, 6, 8, 10, 12];
    let configs: Vec<ScenarioConfig> = fig16_cs.iter().map(|&c| ScenarioConfig::fig16(c)).collect();

    let mut runs = Vec::new();
    for &threads in threads_axis {
        let start = Instant::now();
        let mut events = 0u64;
        let mut fingerprint = FNV_OFFSET;
        for (pi, config) in configs.iter().enumerate() {
            for (si, &(_, policy, mode)) in FIG16.iter().enumerate() {
                let agg = run_scenario_replicated(
                    config,
                    policy,
                    mode,
                    opts.stopping,
                    point_seed(opts.seed, pi, si),
                    threads,
                );
                events += agg.events;
                fingerprint = fingerprint_row(fingerprint, &agg.row());
                fingerprint = fnv1a(fingerprint, &agg.events.to_le_bytes());
            }
        }
        let wall_s = start.elapsed().as_secs_f64();
        runs.push(ScalingRun {
            threads,
            wall_s,
            events,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
            fingerprint,
        });
    }

    let bit_identical = runs
        .windows(2)
        .all(|w| w[0].events == w[1].events && w[0].fingerprint == w[1].fingerprint);
    ScalingReport {
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        runs,
        bit_identical,
    }
}

/// Renders the scaling report (and optionally a mega run) as
/// `BENCH_03.json`.
#[must_use]
pub fn render_scaling_json(
    report: &ScalingReport,
    mega: Option<&MegaReport>,
    opts: &RunOptions,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench_id\": \"BENCH_03\",");
    let _ = writeln!(
        out,
        "  \"precision\": \"{}\",",
        precision_label(&opts.stopping)
    );
    let _ = writeln!(out, "  \"seed\": {},", opts.seed);
    let _ = writeln!(out, "  \"host_cores\": {},", report.host_cores);
    let _ = writeln!(
        out,
        "  \"suite\": \"fig16 sweep (7 points x 5 series) via the parallel replication runner\","
    );
    out.push_str("  \"threads_axis\": {\n");
    for (i, r) in report.runs.iter().enumerate() {
        let sep = if i + 1 == report.runs.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"wall_s\": {:.4}, \"events\": {}, \"events_per_sec\": {:.0}, \"fingerprint\": \"{:016x}\"}}{}",
            r.threads, r.wall_s, r.events, r.events_per_sec, r.fingerprint, sep
        );
    }
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"bit_identical\": {},", report.bit_identical);
    out.push_str("  \"speedup_vs_1_thread\": {\n");
    let base = report.runs.first().map_or(0.0, |r| r.wall_s);
    for (i, r) in report.runs.iter().enumerate() {
        let sep = if i + 1 == report.runs.len() { "" } else { "," };
        let speedup = if r.wall_s > 0.0 { base / r.wall_s } else { 0.0 };
        let _ = writeln!(out, "    \"{}\": {:.2}{}", r.threads, speedup, sep);
    }
    out.push_str("  }");
    if let Some(m) = mega {
        out.push_str(",\n  \"mega\": {\n");
        let _ = writeln!(out, "    \"objects\": {},", m.objects);
        let _ = writeln!(out, "    \"nodes\": {},", m.nodes);
        let _ = writeln!(out, "    \"shards\": {},", m.shards);
        let _ = writeln!(out, "    \"threads\": {},", m.threads);
        let _ = writeln!(out, "    \"sim_time\": {},", m.sim_time);
        let _ = writeln!(out, "    \"events\": {},", m.events);
        let _ = writeln!(out, "    \"wall_s\": {:.4},", m.wall_s);
        let _ = writeln!(out, "    \"events_per_sec\": {:.0},", m.events_per_sec);
        let _ = writeln!(out, "    \"calls_issued\": {},", m.calls_issued);
        let _ = writeln!(out, "    \"calls_completed\": {},", m.calls_completed);
        let _ = writeln!(out, "    \"migrations\": {},", m.migrations);
        let _ = writeln!(out, "    \"mean_response\": {:.4},", m.mean_response);
        let _ = writeln!(out, "    \"peak_rss_bytes\": {}", m.peak_rss_bytes);
        out.push_str("  }\n");
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oml_des::stats::StoppingRule;

    #[test]
    fn bench_suite_runs_and_reports() {
        let opts = RunOptions {
            stopping: StoppingRule {
                relative_precision: 0.2,
                confidence: 0.9,
                min_batches: 2,
                max_samples: 500,
            },
            seed: 1,
            threads: 1,
        };
        let report = run_bench_suite(&opts);
        assert_eq!(report.experiments.len(), 5);
        for e in &report.experiments {
            assert!(e.events > 0, "{} handled no events", e.name);
            assert!(e.wall_s > 0.0);
        }
        let json = render_bench_json(&report, &opts);
        assert!(json.contains("\"bench_id\": \"BENCH_02\""));
        assert!(json.contains("\"fig16\""));
        assert!(json.contains("speedup_vs_baseline"));
        // the actual precision and thread count are recorded, not assumed
        assert!(json.contains("\"precision\": \"custom(rp=0.2"));
        assert!(json.contains("\"threads\": 1,"));
    }

    #[test]
    fn precision_labels_name_the_presets() {
        assert_eq!(precision_label(&RunOptions::quick().stopping), "quick");
        assert_eq!(precision_label(&RunOptions::paper().stopping), "paper");
        let odd = StoppingRule {
            relative_precision: 0.5,
            ..RunOptions::quick().stopping
        };
        assert!(precision_label(&odd).starts_with("custom("));
    }

    #[test]
    fn scaling_suite_is_bit_identical_across_threads() {
        let opts = RunOptions {
            stopping: StoppingRule {
                relative_precision: 1e-9,
                confidence: 0.99,
                min_batches: u64::MAX,
                max_samples: 2_000,
            },
            seed: 1,
            threads: 1,
        };
        let report = run_scaling_suite(&opts, &[1, 2]);
        assert_eq!(report.runs.len(), 2);
        assert!(report.bit_identical, "threads must not change results");
        assert!(report.runs[0].events > 0);
        let json = render_scaling_json(&report, None, &opts);
        assert!(json.contains("\"bench_id\": \"BENCH_03\""));
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("speedup_vs_1_thread"));
    }
}
