//! The `repro explore` driver: runs the bundled exploration matrix, saves
//! counterexample schedules, and re-verifies them by bit-identical replay.
//!
//! The matrix ([`ExploreConfig::matrix`]) carries an expectation per
//! configuration: the clean trio must enumerate exhaustively with zero
//! violations, and the two seeded-mutation negative controls must each
//! yield a counterexample. Every counterexample found is serialized to
//! `<out_dir>/<config-name>.schedule`, read back *from disk*, and replayed;
//! the run only passes if the replay reproduces the violation and the
//! replayed trace digest matches the recorded one bit for bit.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use oml_check::explore::{explore, Budget, ExploreConfig, ExploreReport, Schedule};

/// What one configuration's exploration produced.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// The configuration's name.
    pub name: String,
    /// Whether the configuration carries a seeded mutation (and therefore
    /// must produce a counterexample).
    pub expects_violation: bool,
    /// The search report.
    pub report: ExploreReport,
    /// Where the first counterexample schedule was written, if any.
    pub saved: Option<PathBuf>,
    /// Verdict of the disk-round-trip replay of that schedule: violation
    /// reproduced and trace digest bit-identical. `None` when there was no
    /// counterexample to replay.
    pub replay_verified: Option<bool>,
    /// Wall-clock seconds the search took.
    pub wall_s: f64,
    /// The configuration met its expectation (clean-and-exhaustive, or
    /// counterexample-found-and-replayed).
    pub passed: bool,
}

/// Explores one configuration under `budget` and verifies its expectation,
/// writing any counterexample to `out_dir`.
pub fn run_one(cfg: &ExploreConfig, budget: &Budget, out_dir: &Path) -> ExploreOutcome {
    let start = Instant::now();
    let report = explore(cfg, budget);
    let wall_s = start.elapsed().as_secs_f64();
    let mut saved = None;
    let mut replay_verified = None;
    if let Some(ce) = report.counterexamples.first() {
        let path = out_dir.join(format!("{}.schedule", cfg.name));
        match fs::create_dir_all(out_dir).and_then(|()| fs::write(&path, ce.schedule.to_text())) {
            Ok(()) => {
                replay_verified = Some(verify_replay(&path));
                saved = Some(path);
            }
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                replay_verified = Some(false);
            }
        }
    }
    let passed = if cfg.expects_violation() {
        !report.is_clean() && replay_verified == Some(true)
    } else {
        report.is_clean() && report.exhaustive
    };
    ExploreOutcome {
        name: cfg.name.clone(),
        expects_violation: cfg.expects_violation(),
        report,
        saved,
        replay_verified,
        wall_s,
        passed,
    }
}

/// Reads a schedule file back from disk and replays it; true iff the replay
/// reproduces a violation with a bit-identical trace digest.
fn verify_replay(path: &Path) -> bool {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read back {}: {e}", path.display());
            return false;
        }
    };
    let schedule = match Schedule::from_text(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("saved schedule does not parse: {e}");
            return false;
        }
    };
    match schedule.replay() {
        Ok(outcome) => outcome.reproduced() && outcome.bit_identical,
        Err(e) => {
            eprintln!("saved schedule does not replay: {e}");
            false
        }
    }
}

/// Runs the whole bundled matrix. Returns the per-configuration outcomes;
/// the run passes iff every outcome did.
pub fn run_matrix(budget: &Budget, out_dir: &Path) -> Vec<ExploreOutcome> {
    ExploreConfig::matrix()
        .iter()
        .map(|cfg| run_one(cfg, budget, out_dir))
        .collect()
}

/// Replays one schedule file (the `--replay FILE` path). Returns
/// `Ok(true)` when the replay reproduces its violation bit-identically.
pub fn replay_file(path: &Path) -> Result<bool, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let schedule = Schedule::from_text(&text).map_err(|e| e.to_string())?;
    let outcome = schedule.replay().map_err(|e| e.to_string())?;
    println!(
        "replayed `{}`: {} step(s), {} event(s), digest {:016x} ({})",
        schedule.cfg.name,
        schedule.steps.len(),
        outcome.events,
        outcome.trace_digest,
        if outcome.bit_identical {
            "bit-identical"
        } else {
            "DIGEST MISMATCH"
        }
    );
    for v in &outcome.violations {
        println!("  violation: {v:?}");
    }
    for (o, b) in &outcome.orphans {
        println!("  orphaned lock: object {o}, block {b}");
    }
    if outcome.violations.is_empty() && outcome.orphans.is_empty() {
        println!("  (no violation reproduced)");
    }
    Ok(outcome.reproduced() && outcome.bit_identical)
}

/// Renders one outcome as the lines `repro explore` prints.
#[must_use]
pub fn render_outcome(o: &ExploreOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let r = &o.report;
    let _ = writeln!(
        out,
        "{}: {} schedule(s), {} step(s), {} pruned, {} sleep-skip(s), depth {}, {:.3} s — {}",
        o.name,
        r.schedules,
        r.steps,
        r.pruned,
        r.sleep_skips,
        r.peak_depth,
        o.wall_s,
        if r.exhaustive {
            "exhaustive"
        } else {
            "budget-bounded"
        }
    );
    match (o.expects_violation, r.counterexamples.first()) {
        (false, None) => out.push_str("  clean, as expected\n"),
        (false, Some(ce)) => {
            let _ = writeln!(out, "  UNEXPECTED VIOLATION: {}", ce.headline());
            let _ = writeln!(
                out,
                "  schedule: {}",
                ce.schedule
                    .steps
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        (true, None) => out.push_str("  MISSED: seeded mutation produced no counterexample\n"),
        (true, Some(ce)) => {
            let _ = writeln!(
                out,
                "  found seeded bug: {} (minimized to {} step(s))",
                ce.headline(),
                ce.schedule.steps.len()
            );
            if let Some(path) = &o.saved {
                let _ = writeln!(
                    out,
                    "  saved {} — disk round-trip replay {}",
                    path.display(),
                    match o.replay_verified {
                        Some(true) => "reproduced, bit-identical",
                        Some(false) => "FAILED",
                        None => "not attempted",
                    }
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_passes_under_smoke_budget() {
        let dir = std::env::temp_dir().join("oml-explore-test");
        let outcomes = run_matrix(&Budget::smoke(), &dir);
        assert_eq!(outcomes.len(), 5);
        for o in &outcomes {
            assert!(o.passed, "{} failed: {:#?}", o.name, o.report.exhaustive);
        }
        // the negative controls saved replayable schedules
        let saved: Vec<_> = outcomes.iter().filter(|o| o.saved.is_some()).collect();
        assert_eq!(saved.len(), 2);
        for o in saved {
            assert_eq!(o.replay_verified, Some(true), "{}", o.name);
            assert!(replay_file(o.saved.as_ref().unwrap()).unwrap());
        }
    }
}
