//! The per-figure experiment definitions.

use std::collections::BTreeMap;

use oml_core::attach::AttachmentMode;
use oml_core::cost::CostModel;
use oml_core::ids::NodeId;
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_net::{LatencyModel, Network, Topology};
use oml_sim::metrics::MetricsRow;
use oml_sim::{BlockParams, SimulationBuilder};
use oml_workload::{run_scenario, ScenarioConfig};

use crate::result::{ExperimentResult, SweepPoint};

/// Precision/seed options for an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// The stopping rule applied to every sweep point.
    pub stopping: StoppingRule,
    /// Base seed; each (point, series) pair derives its own stream.
    pub seed: u64,
    /// Worker threads for sweep points (1 = sequential). Results are
    /// bit-identical regardless of the thread count: every point owns its
    /// derived seed.
    pub threads: usize,
}

/// Default worker-thread count: available cores, capped at 8.
///
/// The cap is overridable — `OML_THREADS` (or the `repro --threads` flag,
/// which wins over the environment) sets any positive count, letting big
/// hosts use all their cores and CI pin an exact degree of parallelism.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("OML_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

impl RunOptions {
    /// The paper's precision (1 % CI at p = 0.99). Slow but authoritative.
    #[must_use]
    pub fn paper() -> Self {
        RunOptions {
            stopping: StoppingRule {
                relative_precision: 0.01,
                confidence: 0.99,
                min_batches: 20,
                max_samples: 1_000_000,
            },
            seed: 0x0b9e_c7ed,
            threads: default_threads(),
        }
    }

    /// Fast smoke precision for CI pipelines and benches.
    #[must_use]
    pub fn quick() -> Self {
        RunOptions {
            stopping: StoppingRule {
                relative_precision: 0.03,
                confidence: 0.95,
                min_batches: 10,
                max_samples: 120_000,
            },
            seed: 0x0b9e_c7ed,
            threads: default_threads(),
        }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions::paper()
    }
}

// the work-stealing map moved down into the simulation substrate so the
// replication runner (oml-workload) shares one implementation; sweep-point
// fan-out keeps using it through this import
pub(crate) use oml_des::par::parallel_map;

/// Runs a full `configs × series` grid in parallel and assembles the sweep
/// points in order.
fn sweep_grid(
    configs: &[ScenarioConfig],
    xs: &[f64],
    series_defs: &[(&str, PolicyKind, AttachmentMode)],
    opts: &RunOptions,
) -> Vec<SweepPoint> {
    assert_eq!(configs.len(), xs.len());
    let cols = series_defs.len();
    let rows = parallel_map(configs.len() * cols, opts.threads, |job| {
        let (pi, si) = (job / cols, job % cols);
        let (_, policy, mode) = series_defs[si];
        run_point(
            &configs[pi],
            policy,
            mode,
            opts,
            point_seed(opts.seed, pi, si),
        )
    });
    xs.iter()
        .enumerate()
        .map(|(pi, &x)| {
            let mut series = BTreeMap::new();
            for (si, (label, _, _)) in series_defs.iter().enumerate() {
                series.insert((*label).to_owned(), rows[pi * cols + si].clone());
            }
            SweepPoint { x, series }
        })
        .collect()
}

pub(crate) fn point_seed(base: u64, point: usize, series: usize) -> u64 {
    base.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((point as u64) << 8)
        .wrapping_add(series as u64)
}

fn run_point(
    config: &ScenarioConfig,
    policy: PolicyKind,
    attachment: AttachmentMode,
    opts: &RunOptions,
    seed: u64,
) -> MetricsRow {
    let outcome = run_scenario(config, policy, attachment, opts.stopping, seed);
    MetricsRow::from(&outcome.metrics)
}

/// The three policies every single-layer figure compares.
const BASIC_SERIES: [(&str, PolicyKind); 3] = [
    ("without migration", PolicyKind::Sedentary),
    ("migration", PolicyKind::ConventionalMigration),
    ("transient placement", PolicyKind::TransientPlacement),
];

/// Figs. 8, 10, 11 — increasing the usage frequency (parameters of Fig. 9).
///
/// Sweeps the mean distance between two usages (`t_m`) from high concurrency
/// (0) to low (100) for the sedentary, conventional-migration and
/// transient-placement policies. The returned rows carry the decomposition:
/// `call_time` is Fig. 10, `migration_time` is Fig. 11, `comm_time` is
/// Fig. 8.
#[must_use]
pub fn fig8(opts: &RunOptions) -> ExperimentResult {
    let xs = [
        0.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0,
    ];
    let configs: Vec<ScenarioConfig> = xs.iter().map(|&x| ScenarioConfig::fig8(x)).collect();
    let series: Vec<(&str, PolicyKind, AttachmentMode)> = BASIC_SERIES
        .iter()
        .map(|&(l, p)| (l, p, AttachmentMode::Unrestricted))
        .collect();
    let points = sweep_grid(&configs, &xs, &series, opts);
    ExperimentResult {
        id: "fig8".into(),
        title: "Increasing the usage frequency (D=3, C=3, S1=3, M=6, N~exp(8))".into(),
        x_label: "mean gap t_m".into(),
        y_label: "mean communication time per call".into(),
        points,
    }
}

/// Fig. 12 — increasing the number of callers (parameters of Fig. 13).
///
/// `D = 27`, hot-spot servers: conventional migration degrades roughly
/// linearly in the number of clients and crosses the sedentary baseline
/// early; transient placement grows sublinearly and crosses much later.
#[must_use]
pub fn fig12(opts: &RunOptions) -> ExperimentResult {
    let cs = [1u32, 2, 4, 6, 8, 10, 12, 14, 16, 20, 25];
    let xs: Vec<f64> = cs.iter().map(|&c| f64::from(c)).collect();
    let configs: Vec<ScenarioConfig> = cs.iter().map(|&c| ScenarioConfig::fig12(c)).collect();
    let series: Vec<(&str, PolicyKind, AttachmentMode)> = BASIC_SERIES
        .iter()
        .map(|&(l, p)| (l, p, AttachmentMode::Unrestricted))
        .collect();
    let points = sweep_grid(&configs, &xs, &series, opts);
    ExperimentResult {
        id: "fig12".into(),
        title: "Increasing the number of clients (D=27, S1=3, M=6, t_m~exp(30))".into(),
        x_label: "clients".into(),
        y_label: "mean communication time per call".into(),
        points,
    }
}

/// Fig. 14 — exploiting dynamic information (parameters of Fig. 15).
///
/// Compares conservative placement against the two intelligent strategies
/// ("comparing the nodes", "comparing and reinstantiation") on the small
/// three-node world. The paper's finding: the dynamic policies yield only
/// marginal gains — before even paying their bookkeeping overhead.
#[must_use]
pub fn fig14(opts: &RunOptions) -> ExperimentResult {
    let series_defs: [(&str, PolicyKind); 3] = [
        ("conservative place-policy", PolicyKind::TransientPlacement),
        ("comparing the nodes", PolicyKind::CompareNodes),
        (
            "comparing and reinstantiation",
            PolicyKind::CompareAndReinstantiate,
        ),
    ];
    let cs = [1u32, 2, 4, 6, 9, 12, 16, 20, 24];
    let xs: Vec<f64> = cs.iter().map(|&c| f64::from(c)).collect();
    let configs: Vec<ScenarioConfig> = cs.iter().map(|&c| ScenarioConfig::fig14(c)).collect();
    let series: Vec<(&str, PolicyKind, AttachmentMode)> = series_defs
        .iter()
        .map(|&(l, p)| (l, p, AttachmentMode::Unrestricted))
        .collect();
    let points = sweep_grid(&configs, &xs, &series, opts);
    ExperimentResult {
        id: "fig14".into(),
        title: "Exploiting dynamic information (D=3, S1=3, M=6, t_m~exp(30))".into(),
        x_label: "clients".into(),
        y_label: "mean communication time per call".into(),
        points,
    }
}

const FIG16_SERIES: [(&str, PolicyKind, AttachmentMode); 5] = [
    (
        "without migration",
        PolicyKind::Sedentary,
        AttachmentMode::Unrestricted,
    ),
    (
        "migration + unrestricted attachment",
        PolicyKind::ConventionalMigration,
        AttachmentMode::Unrestricted,
    ),
    (
        "migration + a-transitive attachment",
        PolicyKind::ConventionalMigration,
        AttachmentMode::ATransitive,
    ),
    (
        "placement + unrestricted attachment",
        PolicyKind::TransientPlacement,
        AttachmentMode::Unrestricted,
    ),
    (
        "placement + a-transitive attachment",
        PolicyKind::TransientPlacement,
        AttachmentMode::ATransitive,
    ),
];

/// Fig. 16 — keeping objects together (parameters of Fig. 17).
///
/// Two server layers with overlapping working sets: conventional migration
/// with unrestricted attachment is devastating (every steal drags the whole
/// transitive closure); restricting transitiveness to alliances (and/or
/// placement) recovers the performance.
#[must_use]
pub fn fig16(opts: &RunOptions) -> ExperimentResult {
    fig16_with_series(opts, &FIG16_SERIES, "fig16")
}

/// §3.4's cheaper alternative: the Fig. 16 setup extended with
/// first-come-first-served *exclusive* attachment for both policies.
#[must_use]
pub fn fig16_exclusive(opts: &RunOptions) -> ExperimentResult {
    const EXT: [(&str, PolicyKind, AttachmentMode); 7] = [
        FIG16_SERIES[0],
        FIG16_SERIES[1],
        FIG16_SERIES[2],
        FIG16_SERIES[3],
        FIG16_SERIES[4],
        (
            "migration + exclusive attachment",
            PolicyKind::ConventionalMigration,
            AttachmentMode::Exclusive,
        ),
        (
            "placement + exclusive attachment",
            PolicyKind::TransientPlacement,
            AttachmentMode::Exclusive,
        ),
    ];
    fig16_with_series(opts, &EXT, "fig16x")
}

fn fig16_with_series(
    opts: &RunOptions,
    series_defs: &[(&str, PolicyKind, AttachmentMode)],
    id: &str,
) -> ExperimentResult {
    let cs = [1u32, 2, 4, 6, 8, 10, 12];
    let xs: Vec<f64> = cs.iter().map(|&c| f64::from(c)).collect();
    let configs: Vec<ScenarioConfig> = cs.iter().map(|&c| ScenarioConfig::fig16(c)).collect();
    let points = sweep_grid(&configs, &xs, series_defs, opts);
    ExperimentResult {
        id: id.into(),
        title: "Keeping objects together (D=24, S1=6, S2=6, M=6, N~exp(6), t_m~exp(30))".into(),
        x_label: "clients".into(),
        y_label: "mean communication time per call".into(),
        points,
    }
}

/// Fig. 4 / §3.2 — the analytic two-mover conflict costs, as a table over
/// the block size `N` (with the paper's `M = 6`, `C = 1`).
#[must_use]
pub fn fig4_cost() -> ExperimentResult {
    let model = CostModel::paper();
    let mut points = Vec::new();
    for n in [7u64, 8, 10, 12, 16, 24, 32, 48, 64] {
        let mut series = BTreeMap::new();
        let mk = |v: f64| MetricsRow {
            comm_time: v,
            call_time: 0.0,
            migration_time: 0.0,
            control_time: 0.0,
            ci_half_width: None,
            calls: n,
            denial_rate: 0.0,
            mean_closure: 1.0,
            transfer_load: 0.0,
            call_p95: 0.0,
        };
        series.insert(
            "conventional move (worst case)".to_owned(),
            mk(model.conventional_conflict_worst(n)),
        );
        series.insert(
            "transient placement".to_owned(),
            mk(model.placement_conflict(n)),
        );
        series.insert("remote only".to_owned(), mk(model.remote_block(n)));
        points.push(SweepPoint {
            x: n as f64,
            series,
        });
    }
    ExperimentResult {
        id: "fig4".into(),
        title: "Analytic conflict cost (M=6, C=1): placement saves M+C".into(),
        x_label: "calls N".into(),
        y_label: "total block cost".into(),
        points,
    }
}

/// §4.1's robustness claim: rerunning one Fig. 8 point over different
/// physical topologies (flat per-message latency) does not change the
/// results.
#[must_use]
pub fn topology_ablation(opts: &RunOptions) -> ExperimentResult {
    let topologies: [(&str, Topology); 4] = [
        ("full mesh", Topology::FullMesh { nodes: 3 }),
        ("star", Topology::Star { nodes: 3 }),
        ("ring", Topology::Ring { nodes: 3 }),
        ("line", Topology::Line { nodes: 3 }),
    ];
    let mut points = Vec::new();
    for (pi, (_policy_label, policy)) in BASIC_SERIES.iter().enumerate() {
        let mut series = BTreeMap::new();
        for (si, (topo_label, topo)) in topologies.iter().enumerate() {
            let net = Network::new(topo.clone(), LatencyModel::Exponential { mean: 1.0 });
            let mut b = SimulationBuilder::new(net)
                .policy(*policy)
                .stopping(opts.stopping)
                .warmup(500.0)
                .seed(point_seed(opts.seed, pi, si));
            let servers: Vec<_> = (0..3).map(|j| b.add_object(NodeId::new(2 - j))).collect();
            for i in 0..3 {
                b.add_client(NodeId::new(i), servers.clone(), BlockParams::paper(30.0));
            }
            let outcome = b.build().run();
            series.insert((*topo_label).to_owned(), MetricsRow::from(&outcome.metrics));
        }
        points.push(SweepPoint {
            x: pi as f64,
            series,
        });
    }
    ExperimentResult {
        id: "topology".into(),
        title: "Topology ablation at one Fig. 8 point (t_m=30): rows are policies 0=sedentary 1=migration 2=placement".into(),
        x_label: "policy #".into(),
        y_label: "mean communication time per call".into(),
        points,
    }
}

/// §2.4's egoism hazard, quantified (extension experiment).
///
/// "Some implementors may behave completely egoistic to tilt the system
/// towards good behavior for their own application." One client issues
/// move-blocks ten times as often as the three polite ones. Under
/// conventional migration the egoist hoards the servers; under transient
/// placement the first-mover lock keeps the allocation fair.
///
/// x-axis: client index (0 = the egoist); series: one per policy; the
/// headline value is that client's mean communication time per call.
#[must_use]
pub fn egoism(opts: &RunOptions) -> ExperimentResult {
    let policies: [(&str, PolicyKind); 3] = [
        ("without migration", PolicyKind::Sedentary),
        ("migration", PolicyKind::ConventionalMigration),
        ("transient placement", PolicyKind::TransientPlacement),
    ];
    const CLIENTS: usize = 3;

    // one run per policy; rows are clients (each on its own node)
    let mut per_policy: Vec<(String, Vec<MetricsRow>, f64)> = Vec::new();
    for (si, (label, policy)) in policies.iter().enumerate() {
        let mut b = SimulationBuilder::new(Network::paper(3))
            .policy(*policy)
            .stopping(opts.stopping)
            .warmup(500.0)
            .seed(point_seed(opts.seed, 0, si));
        let servers: Vec<_> = (0..3).map(|j| b.add_object(NodeId::new(2 - j))).collect();
        for i in 0..CLIENTS {
            let mean_gap = if i == 0 { 3.0 } else { 30.0 };
            b.add_client(
                NodeId::new(i as u32),
                servers.clone(),
                BlockParams {
                    mean_calls: 8.0,
                    mean_think: 1.0,
                    mean_gap,
                },
            );
        }
        let outcome = b.build().run();
        let m = &outcome.metrics;
        let rows = (0..CLIENTS)
            .map(|i| {
                let mut row = MetricsRow::from(m);
                row.comm_time = m.client_comm_time(i);
                row.calls = m.per_client_comm[i].count();
                row.ci_half_width = None;
                row
            })
            .collect();
        per_policy.push(((*label).to_owned(), rows, m.fairness_index()));
    }

    let mut points = Vec::new();
    for client in 0..CLIENTS {
        let mut series = BTreeMap::new();
        for (label, rows, _) in &per_policy {
            series.insert(label.clone(), rows[client].clone());
        }
        points.push(SweepPoint {
            x: client as f64,
            series,
        });
    }
    ExperimentResult {
        id: "egoism".into(),
        title: format!(
            "Egoistic mover (client 0, t_m=3 vs 30; §2.4 extension) — fairness indices: {}",
            per_policy
                .iter()
                .map(|(l, _, f)| format!("{l}={f:.3}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        x_label: "client (0=egoist)".into(),
        y_label: "mean communication time per call, per client".into(),
        points,
    }
}

/// §4.2.2's scaling claim (extension experiment): "an increase in N/M will
/// have an over-proportional effect on the break-even point" of transient
/// placement, in contrast to the basic migration policy.
///
/// Sweeps the calls-per-block mean `N` (with `M = 6` fixed) and reports both
/// policies' break-even client counts against the sedentary baseline.
#[must_use]
pub fn break_even_scaling(opts: &RunOptions) -> ExperimentResult {
    let ratios = [8.0, 12.0, 16.0];
    let clients = [1u32, 2, 4, 6, 8, 10, 12, 14, 16, 20, 25];
    let mut points = Vec::new();
    for (pi, &mean_calls) in ratios.iter().enumerate() {
        // run a mini Fig. 12 sweep at this N (each ratio gets its own seed
        // block so point seeds never collide across ratios)
        let xs: Vec<f64> = clients.iter().map(|&c| f64::from(c)).collect();
        let configs: Vec<ScenarioConfig> = clients
            .iter()
            .map(|&c| {
                let mut config = ScenarioConfig::fig12(c);
                config.mean_calls = mean_calls;
                config
            })
            .collect();
        let series: Vec<(&str, PolicyKind, AttachmentMode)> = BASIC_SERIES
            .iter()
            .map(|&(l, p)| (l, p, AttachmentMode::Unrestricted))
            .collect();
        let ratio_opts = RunOptions {
            seed: opts.seed.wrapping_add((pi as u64) << 32),
            ..*opts
        };
        let sweep_points = sweep_grid(&configs, &xs, &series, &ratio_opts);
        let sweep = ExperimentResult {
            id: String::new(),
            title: String::new(),
            x_label: "clients".into(),
            y_label: String::new(),
            points: sweep_points,
        };

        let mk = |v: Option<f64>| MetricsRow {
            comm_time: v.unwrap_or(f64::from(*clients.last().expect("non-empty"))),
            call_time: 0.0,
            migration_time: 0.0,
            control_time: 0.0,
            ci_half_width: None,
            calls: 0,
            denial_rate: 0.0,
            mean_closure: 1.0,
            transfer_load: 0.0,
            call_p95: 0.0,
        };
        let mut series = BTreeMap::new();
        series.insert(
            "migration break-even (clients)".to_owned(),
            mk(sweep.crossover("migration", "without migration")),
        );
        series.insert(
            "placement break-even (clients)".to_owned(),
            mk(sweep.crossover("transient placement", "without migration")),
        );
        points.push(SweepPoint {
            x: mean_calls / 6.0,
            series,
        });
    }
    ExperimentResult {
        id: "break-even".into(),
        title: "Break-even vs N/M ratio (§4.2.2 extension, M=6; break-evens capped at 25)".into(),
        x_label: "N/M".into(),
        y_label: "break-even client count vs sedentary".into(),
        points,
    }
}

/// §4.1 location-mechanism ablation (extension): the paper neglects "the
/// effects of different policies for object location, like name-server
/// lookup \[ChC91\], forward addressing \[JLH+88\], broadcast \[DLA+91\]
/// or immediate update \[Dec86\]". All four are implemented; this sweep
/// shows they indeed barely move the results, even under heavy conventional
/// migration (where stale caches are most frequent).
#[must_use]
pub fn location_ablation(opts: &RunOptions) -> ExperimentResult {
    use oml_sim::LocationMechanism;

    let mechanisms: [(&str, LocationMechanism); 4] = [
        ("immediate update", LocationMechanism::ImmediateUpdate),
        ("forward addressing", LocationMechanism::ForwardAddressing),
        (
            "name-server lookup",
            LocationMechanism::NameServer {
                node: NodeId::new(0),
            },
        ),
        ("broadcast", LocationMechanism::Broadcast),
    ];
    let xs = [5.0, 15.0, 30.0, 60.0];
    let mut points = Vec::new();
    for (pi, &gap) in xs.iter().enumerate() {
        let mut series = BTreeMap::new();
        for (si, (label, mech)) in mechanisms.iter().enumerate() {
            let mut b = SimulationBuilder::new(Network::paper(3))
                .policy(PolicyKind::ConventionalMigration)
                .location_mechanism(*mech)
                .stopping(opts.stopping)
                .warmup(500.0)
                .seed(point_seed(opts.seed, pi, si));
            let servers: Vec<_> = (0..3).map(|j| b.add_object(NodeId::new(2 - j))).collect();
            for i in 0..3 {
                b.add_client(NodeId::new(i), servers.clone(), BlockParams::paper(gap));
            }
            let outcome = b.build().run();
            series.insert((*label).to_owned(), MetricsRow::from(&outcome.metrics));
        }
        points.push(SweepPoint { x: gap, series });
    }
    ExperimentResult {
        id: "location".into(),
        title: "Object-location mechanisms under conventional migration (§4.1 ablation)".into(),
        x_label: "mean gap t_m".into(),
        y_label: "mean communication time per call".into(),
        points,
    }
}

/// §2.3 ablation (extension): `move` vs `visit` blocks.
///
/// A visit is "the combination of a move and a migrate back". Returning the
/// object home costs a second migration per block, but keeps the servers at
/// predictable locations instead of stranding them wherever the last user
/// sat. This sweep quantifies the trade under both policies on the Fig. 8
/// world.
#[must_use]
pub fn visit_ablation(opts: &RunOptions) -> ExperimentResult {
    use oml_sim::BlockFlavor;

    let series_defs: [(&str, PolicyKind, BlockFlavor); 4] = [
        (
            "migration, move blocks",
            PolicyKind::ConventionalMigration,
            BlockFlavor::Move,
        ),
        (
            "migration, visit blocks",
            PolicyKind::ConventionalMigration,
            BlockFlavor::Visit,
        ),
        (
            "placement, move blocks",
            PolicyKind::TransientPlacement,
            BlockFlavor::Move,
        ),
        (
            "placement, visit blocks",
            PolicyKind::TransientPlacement,
            BlockFlavor::Visit,
        ),
    ];
    let xs = [5.0, 10.0, 30.0, 60.0, 100.0];
    let mut points = Vec::new();
    for (pi, &gap) in xs.iter().enumerate() {
        let mut series = BTreeMap::new();
        for (si, (label, policy, flavor)) in series_defs.iter().enumerate() {
            let mut b = SimulationBuilder::new(Network::paper(3))
                .policy(*policy)
                .stopping(opts.stopping)
                .warmup(500.0)
                .seed(point_seed(opts.seed, pi, si));
            let servers: Vec<_> = (0..3).map(|j| b.add_object(NodeId::new(2 - j))).collect();
            for i in 0..3 {
                b.add_client_with_flavor(
                    NodeId::new(i),
                    servers.clone(),
                    BlockParams::paper(gap),
                    *flavor,
                );
            }
            let outcome = b.build().run();
            series.insert((*label).to_owned(), MetricsRow::from(&outcome.metrics));
        }
        points.push(SweepPoint { x: gap, series });
    }
    ExperimentResult {
        id: "visit".into(),
        title: "move vs visit blocks (§2.3 ablation, Fig. 8 world)".into(),
        x_label: "mean gap t_m".into(),
        y_label: "mean communication time per call".into(),
        points,
    }
}

/// Robustness extension — per-policy degradation under message loss.
///
/// Re-runs the Fig. 12 hot-spot world (`D = 27`, ten concurrent clients)
/// while sweeping the per-message loss probability. A lost message is
/// detected and resent after a retransmission timeout of several mean
/// latencies, so every policy degrades as loss rises — but the *ordering*
/// is the point: a policy that spends fewer messages per call exposes
/// fewer messages to loss, so transient placement keeps its lead over
/// conventional migration at every loss rate.
#[must_use]
pub fn faults(opts: &RunOptions) -> ExperimentResult {
    // one retransmission costs six mean message latencies — a coarse
    // timeout-driven ARQ; E[extra delay per message] = 6·p/(1-p)
    const RETRANSMIT_TIMEOUT: f64 = 6.0;
    const CLIENTS: u32 = 10;
    let xs = [0.0, 0.02, 0.05, 0.1, 0.2];
    let configs: Vec<ScenarioConfig> = xs
        .iter()
        .map(|&p| ScenarioConfig::fig12(CLIENTS).with_loss(p, RETRANSMIT_TIMEOUT))
        .collect();
    let series: Vec<(&str, PolicyKind, AttachmentMode)> = BASIC_SERIES
        .iter()
        .map(|&(l, p)| (l, p, AttachmentMode::Unrestricted))
        .collect();
    let points = sweep_grid(&configs, &xs, &series, opts);
    ExperimentResult {
        id: "faults".into(),
        title: "degradation under message loss (Fig. 12 world, C=10, retransmit timeout 6)".into(),
        x_label: "message loss probability".into(),
        y_label: "mean communication time per call".into(),
        points,
    }
}

/// A minimal mobile counter for the runtime-backed availability runs.
struct AvailCounter(u64);

impl oml_runtime::MobileObject for AvailCounter {
    fn type_tag(&self) -> &'static str {
        "avail-counter"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        use oml_runtime::wire::{WireReader, WireWriter};
        match method {
            "add" => {
                let mut r = WireReader::new(payload);
                self.0 += r.u64()?;
                Ok(WireWriter::new().u64(self.0).finish().to_vec())
            }
            "get" => Ok(oml_runtime::wire::WireWriter::new()
                .u64(self.0)
                .finish()
                .to_vec()),
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        oml_runtime::wire::WireWriter::new()
            .u64(self.0)
            .finish()
            .to_vec()
    }
}

/// Availability extension — client-visible latency and denial rate across a
/// crash → detect → reinstantiate → heal cycle, on the **real runtime**
/// (threads and channels, wall clock), not the simulator.
///
/// One node of three crashes a third of the way through the run and
/// restarts two thirds in. Without a failure detector every call routed at
/// the dead node burns the full call timeout (and is denied); with the
/// detector, death is declared after `k` missed heartbeats, the stranded
/// object is reinstantiated from its home checkpoint, and later calls
/// either succeed at the new host or fail fast — so a *shorter* heartbeat
/// buys back availability, at the price of more false-suspicion risk as
/// message loss rises.
///
/// # Panics
///
/// Panics if the runtime surfaces an error the schedule cannot produce
/// (anything but a timeout or a fail-fast `NodeDown`).
#[must_use]
pub fn availability(opts: &RunOptions) -> ExperimentResult {
    use oml_runtime::wire::WireWriter;
    use oml_runtime::{Cluster, FaultPlan, RuntimeError};
    use std::time::{Duration, Instant};

    const OPS: u64 = 60;
    const CRASH_AT: u64 = 20;
    const RESTART_AT: u64 = 40;
    const CALL_TIMEOUT_MS: u64 = 40;

    let losses = [0.0, 0.05, 0.10];
    // (label, heartbeat_ms/k_missed) — `None` is the no-detector baseline
    let detectors: [(&str, Option<(u64, u32)>); 4] = [
        ("no detector", None),
        ("detector hb=25ms k=3", Some((25, 3))),
        ("detector hb=50ms k=3", Some((50, 3))),
        ("detector hb=100ms k=3", Some((100, 3))),
    ];

    let mut points = Vec::new();
    for (li, &loss) in losses.iter().enumerate() {
        let mut series = BTreeMap::new();
        for (si, &(label, detector)) in detectors.iter().enumerate() {
            // every cell owns a derived seed, like the simulator sweeps
            let seed = opts
                .seed
                .wrapping_add(1 + li as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(si as u64);
            let mut builder = Cluster::builder()
                .nodes(3)
                .policy(PolicyKind::TransientPlacement)
                .faults(FaultPlan::seeded(seed).drop_probability(loss))
                .call_timeout(Duration::from_millis(CALL_TIMEOUT_MS))
                .invoke_retries(1);
            if let Some((hb, k)) = detector {
                builder = builder.failure_detector(hb, k);
            }
            let cluster = builder.build();
            cluster.register_type("avail-counter", |bytes| {
                let mut r = oml_runtime::wire::WireReader::new(bytes);
                Box::new(AvailCounter(r.u64().expect("valid counter state")))
            });
            let objects: Vec<_> = (0..3)
                .map(|i| {
                    cluster
                        .create(NodeId::new(i), Box::new(AvailCounter(0)))
                        .expect("creation is on the reliable channel")
                })
                .collect();

            let mut latencies_ms: Vec<f64> = Vec::with_capacity(OPS as usize);
            let mut denied = 0u64;
            for i in 0..OPS {
                match i {
                    CRASH_AT => cluster
                        .crash_node(NodeId::new(2))
                        .expect("crash joins the worker"),
                    RESTART_AT => cluster
                        .restart_node(NodeId::new(2))
                        .expect("restart respawns it"),
                    _ => {}
                }
                let obj = objects[(i % 3) as usize];
                let started = Instant::now();
                match cluster.invoke(obj, "add", &WireWriter::new().u64(1).finish()) {
                    Ok(_) => {}
                    Err(RuntimeError::Timeout { .. } | RuntimeError::NodeDown(_)) => denied += 1,
                    Err(other) => panic!("op {i}: unexpected error {other}"),
                }
                latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
            }
            cluster.shutdown();

            let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
            let mut sorted = latencies_ms;
            sorted.sort_by(f64::total_cmp);
            let p95 =
                sorted[((sorted.len() as f64 * 0.95).ceil() as usize - 1).min(sorted.len() - 1)];
            series.insert(
                label.to_owned(),
                MetricsRow {
                    comm_time: mean,
                    call_time: mean,
                    migration_time: 0.0,
                    control_time: 0.0,
                    ci_half_width: None,
                    calls: OPS,
                    denial_rate: denied as f64 / OPS as f64,
                    mean_closure: 0.0,
                    transfer_load: 0.0,
                    call_p95: p95,
                },
            );
        }
        points.push(SweepPoint { x: loss, series });
    }
    ExperimentResult {
        id: "availability".into(),
        title: format!(
            "availability across a crash/recover cycle (runtime, 3 nodes, \
             {OPS} ops, crash at {CRASH_AT}, restart at {RESTART_AT}, \
             call timeout {CALL_TIMEOUT_MS} ms)"
        ),
        x_label: "message loss probability".into(),
        y_label: "mean client-visible call latency (ms)".into(),
        points,
    }
}

/// Delinearizer for [`AvailCounter`] — named (not a closure) because the
/// worker *processes* of the multiprocess availability run must register
/// it too ([`multiproc_worker_types`]).
fn delinearize_avail_counter(bytes: &[u8]) -> Box<dyn oml_runtime::MobileObject> {
    let mut r = oml_runtime::wire::WireReader::new(bytes);
    Box::new(AvailCounter(r.u64().expect("valid counter state")))
}

/// The delinearizer table a worker process spawned by
/// [`availability_multiprocess`] must pass to `oml_runtime::run_worker`
/// (the `repro` binary re-executes itself as the workers).
#[must_use]
pub fn multiproc_worker_types() -> Vec<(&'static str, oml_runtime::Delinearizer)> {
    vec![("avail-counter", delinearize_avail_counter)]
}

/// The fsync policy the durable-store experiments run under: `OML_FSYNC`
/// (`always` / `never` / `batch:N:MS`; the `repro --fsync` flag sets the
/// same variable so child processes inherit it), defaulting to `always`.
#[must_use]
pub fn fsync_from_env() -> oml_runtime::FsyncPolicy {
    std::env::var("OML_FSYNC")
        .ok()
        .and_then(|v| oml_runtime::FsyncPolicy::parse(v.trim()))
        .unwrap_or_default()
}

/// Multi-process availability — the same crash → detect → reinstantiate →
/// heal denial-rate shape as [`availability`], but with the nodes as real
/// worker **OS processes** over a Unix-domain stream socket and the crash
/// as a real **SIGKILL** mid-workload. X is the operation index (bucketed),
/// so the recovery shape is visible directly: denials spike in the bucket
/// containing the kill, fall once the detector declares death and the
/// object is reinstantiated from its coordinator checkpoint, and return to
/// zero after the respawned incarnation (old one fenced at the socket
/// accept) rejoins.
///
/// Doubles as the CI regression gate: it panics (nonzero exit) if the
/// outage bucket shows no denials (the kill did nothing), if the final
/// bucket still shows denials (recovery regressed), if any in-flight op
/// fails to resolve inside its timeout, or if the collected transport
/// trace violates the checker's invariants (including
/// no-delivery-after-fenced-handshake).
///
/// # Panics
///
/// See above — every panic is a correctness regression, not a flake: all
/// waits are bounded and generous relative to the detector constants.
#[must_use]
pub fn availability_multiprocess(opts: &RunOptions) -> ExperimentResult {
    use oml_runtime::wire::WireWriter;
    use oml_runtime::{
        MultiProcCluster, MultiProcConfig, ProcHealth, RuntimeError, SocketConfig, TransportAddr,
    };
    use std::time::{Duration, Instant};

    const OPS: u64 = 90;
    const KILL_AT: u64 = 30;
    const RESPAWN_AT: u64 = 60;
    const BUCKET: u64 = 10;
    const CALL_TIMEOUT_MS: u64 = 120;

    let dir = std::env::temp_dir().join(format!("oml-avail-mp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for the coordinator socket");
    let mut socket = SocketConfig::default();
    socket.backoff.base_ms = 5;
    socket.backoff.cap_ms = 100;
    socket.backoff.seed = opts.seed ^ 0x6D70; // "mp"
                                              // the coordinator's checkpoint table is WAL-backed under OML_FSYNC so
                                              // the availability run also exercises the durable put-before-ack path
    let fsync = fsync_from_env();
    let cluster = MultiProcCluster::spawn(MultiProcConfig {
        workers: 3,
        addr: TransportAddr::Unix(dir.join("coord.sock")),
        call_timeout_ms: CALL_TIMEOUT_MS,
        heartbeat_ms: 25,
        suspect_after: 3,
        dead_after: 8,
        socket,
        worker_program: std::env::current_exe().expect("own executable path"),
        worker_args: Vec::new(),
        monitor: true,
        store_dir: Some(dir.join("store")),
        fsync,
    })
    .expect("spawn worker processes");
    assert!(
        cluster.wait_ready(Duration::from_secs(10)),
        "worker processes never heartbeat"
    );
    for i in 0..3u32 {
        cluster
            .create(
                i,
                i,
                "avail-counter",
                WireWriter::new().u64(0).finish().to_vec(),
            )
            .expect("create over the socket transport");
    }

    let buckets = (OPS / BUCKET) as usize;
    let mut denied = vec![0u64; buckets];
    let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); buckets];
    for i in 0..OPS {
        if i == KILL_AT {
            cluster.kill(2); // real SIGKILL, object 2's host, mid-workload
        }
        if i == RESPAWN_AT {
            // respawn only after the detector has finished the declare-dead
            // + reinstantiate cycle, like an operator replacing a box the
            // monitoring already wrote off
            let until = Instant::now() + Duration::from_secs(10);
            while cluster.health(2) != ProcHealth::Dead {
                assert!(Instant::now() < until, "detector never declared the kill");
                std::thread::sleep(Duration::from_millis(10));
            }
            cluster
                .respawn(2)
                .expect("respawn under a fresh incarnation");
        }
        let bucket = (i / BUCKET) as usize;
        let started = Instant::now();
        match cluster.invoke(i as u32 % 3, "add", &WireWriter::new().u64(1).finish()) {
            Ok(_) => {}
            Err(RuntimeError::Timeout { .. } | RuntimeError::NodeDown(_)) => denied[bucket] += 1,
            Err(other) => panic!("op {i}: unexpected error {other}"),
        }
        latencies[bucket].push(started.elapsed().as_secs_f64() * 1e3);
        // pace the client slightly so the outage window spans real time and
        // the detector's constants, not the loop's speed, set the shape
        std::thread::sleep(Duration::from_millis(3));
    }

    let stats = cluster.stats();
    let trace = cluster.take_trace();
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // the executable shape + invariant gates (see the doc comment)
    assert!(stats.declared_dead >= 1, "the SIGKILL was never detected");
    assert!(
        stats.reinstantiated >= 1,
        "the stranded object never re-homed"
    );
    let kill_bucket = (KILL_AT / BUCKET) as usize;
    assert!(
        denied[kill_bucket] > 0,
        "no denials in the kill bucket — the crash did not bite"
    );
    assert_eq!(
        denied[buckets - 1],
        0,
        "denials in the final bucket — recovery regressed"
    );
    let report = oml_check::check_trace(&trace);
    assert!(
        report.violations.is_empty(),
        "transport trace violations: {:?}",
        report.violations
    );

    let mut points = Vec::new();
    for b in 0..buckets {
        let lat = &latencies[b];
        let mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
        let mut sorted = lat.clone();
        sorted.sort_by(f64::total_cmp);
        let p95 = sorted
            .get(((sorted.len() as f64 * 0.95).ceil() as usize).saturating_sub(1))
            .copied()
            .unwrap_or(0.0);
        let mut series = BTreeMap::new();
        series.insert(
            "multiprocess unix socket".to_owned(),
            MetricsRow {
                comm_time: mean,
                call_time: mean,
                migration_time: 0.0,
                control_time: 0.0,
                ci_half_width: None,
                calls: BUCKET,
                denial_rate: denied[b] as f64 / BUCKET as f64,
                mean_closure: 0.0,
                transfer_load: 0.0,
                call_p95: p95,
            },
        );
        points.push(SweepPoint {
            x: (b as u64 * BUCKET) as f64,
            series,
        });
    }
    ExperimentResult {
        id: "availability-multiprocess".into(),
        title: format!(
            "multi-process availability across a SIGKILL/recover cycle \
             (3 worker processes over a unix socket, {OPS} ops, SIGKILL at \
             {KILL_AT}, respawn after declare-dead at ~{RESPAWN_AT}, call \
             timeout {CALL_TIMEOUT_MS} ms, durable coordinator store \
             fsync={fsync})"
        ),
        x_label: "operation index (bucket start)".into(),
        y_label: "mean client-visible call latency (ms)".into(),
        points,
    }
}

/// Durability extension — fraction of objects that survive correlated
/// failures as the checkpoint replication factor `k` grows, on the **real
/// runtime** with quorum-replicated checkpoints.
///
/// Each trial quorum-refreshes one object hosted *off* its replica set,
/// then crashes a failure pattern's worth of nodes in the same detector
/// sweep: the host alone, the host plus the object's home (the classic
/// single-checkpoint killer), or the host plus all but one member of the
/// replica set. `comm_time` carries the recovered fraction and
/// `denial_rate` the lost-update window — recoveries that came back with
/// the pre-quorum value because every quorum-acked copy died.
///
/// The table the paper's argument needs: `k = 1` loses every object to a
/// host+home double crash, while `k ≥ 2` recovers 100 % of them — and even
/// replica-set-minus-one keeps the object alive, merely risking staleness
/// once `k > 2` leaves survivors outside the write quorum.
///
/// # Panics
///
/// Panics if the runtime surfaces an error the schedule cannot produce.
#[must_use]
pub fn durability(opts: &RunOptions) -> ExperimentResult {
    use oml_runtime::wire::{WireReader, WireWriter};
    use oml_runtime::Cluster;
    use std::time::Duration;

    const NODES: u32 = 4;
    const TRIALS: u64 = 3;
    const HEARTBEAT_MS: u64 = 50;
    const K_MISSED: u32 = 3;
    const DETECTION_MS: u64 = HEARTBEAT_MS * K_MISSED as u64 + HEARTBEAT_MS;

    #[derive(Clone, Copy)]
    enum Pattern {
        /// Crash only the current host; every checkpoint replica survives.
        SingleNode,
        /// Crash the host and the object's home in the same sweep — fatal
        /// for the classic single home-node checkpoint.
        HostAndHome,
        /// Crash the host and all but one member of the replica set.
        ReplicaSetMinusOne,
    }
    let patterns: [(&str, Pattern); 3] = [
        ("single-node", Pattern::SingleNode),
        ("host+home", Pattern::HostAndHome),
        ("replica-set-minus-one", Pattern::ReplicaSetMinusOne),
    ];
    let fsync = fsync_from_env();

    let mut points = Vec::new();
    for (ki, k) in [1usize, 2, 3].into_iter().enumerate() {
        let mut series = BTreeMap::new();
        for (pi, &(label, pattern)) in patterns.iter().enumerate() {
            let mut recovered = 0u64;
            let mut stale = 0u64;
            for trial in 0..TRIALS {
                let seed = opts
                    .seed
                    .wrapping_add(1 + ki as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(pi as u64 * 31 + trial);
                // every trial's replica checkpoints go through a real WAL
                // under the OML_FSYNC policy: a quorum ack now implies the
                // per-policy durability contract, not just an in-memory map
                let store_dir = std::env::temp_dir().join(format!(
                    "oml-durability-{}-{ki}-{pi}-{trial}",
                    std::process::id()
                ));
                let cluster = Cluster::builder()
                    .nodes(NODES)
                    .policy(PolicyKind::TransientPlacement)
                    .faults(oml_runtime::FaultPlan::seeded(seed))
                    .call_timeout(Duration::from_millis(100))
                    .invoke_retries(1)
                    .lease_ms(1_000)
                    .manual_clock()
                    .failure_detector(HEARTBEAT_MS, K_MISSED)
                    .replication(k)
                    .durable_store(&store_dir, fsync)
                    .build();
                cluster.register_type("avail-counter", |bytes| {
                    let mut r = WireReader::new(bytes);
                    Box::new(AvailCounter(r.u64().expect("valid counter state")))
                });

                let home = NodeId::new(0);
                let obj = cluster
                    .create(home, Box::new(AvailCounter(7)))
                    .expect("creation is on the reliable channel");
                let set = cluster.replica_set(obj).expect("replicated object");
                // host the object off its replica set so a host crash never
                // doubles as a replica crash (4 nodes, k ≤ 3: one exists)
                let host = (0..NODES)
                    .map(NodeId::new)
                    .find(|cand| !set.contains(cand))
                    .expect("a node outside the replica set");
                drop(cluster.move_block(obj, host).expect("move to host"));
                cluster
                    .invoke(obj, "add", &WireWriter::new().u64(5).finish())
                    .expect("acknowledged add");
                // the ended block is a consistency point whose refresh must
                // reach its write quorum before the failures land
                drop(cluster.move_block(obj, host).expect("consistency point"));
                for _ in 0..500 {
                    let acked = cluster
                        .checkpoint_health()
                        .iter()
                        .any(|h| h.object == obj && h.quorum >= Some((0, 3)));
                    if acked {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }

                let mut victims = vec![host];
                match pattern {
                    Pattern::SingleNode => {}
                    Pattern::HostAndHome => victims.push(home),
                    Pattern::ReplicaSetMinusOne => victims.extend(&set[..k - 1]),
                }
                for &victim in &victims {
                    cluster.crash_node(victim).expect("crash joins the worker");
                }
                cluster.advance_clock(DETECTION_MS);
                cluster.detector_sweep();

                let mut value = None;
                for _ in 0..200 {
                    if let Ok(out) = cluster.invoke(obj, "get", &[]) {
                        value = Some(WireReader::new(&out).u64().expect("counter payload"));
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                match value {
                    Some(12) => recovered += 1,
                    Some(v) => {
                        assert_eq!(v, 7, "recovered an impossible value {v}");
                        recovered += 1;
                        stale += 1;
                    }
                    None => {}
                }
                cluster.shutdown();
                let _ = std::fs::remove_dir_all(&store_dir);
            }

            series.insert(
                label.to_owned(),
                MetricsRow {
                    comm_time: recovered as f64 / TRIALS as f64,
                    call_time: recovered as f64 / TRIALS as f64,
                    migration_time: 0.0,
                    control_time: 0.0,
                    ci_half_width: None,
                    calls: TRIALS,
                    denial_rate: stale as f64 / TRIALS as f64,
                    mean_closure: 0.0,
                    transfer_load: 0.0,
                    call_p95: 0.0,
                },
            );
        }
        points.push(SweepPoint {
            x: k as f64,
            series,
        });
    }
    ExperimentResult {
        id: "durability".into(),
        title: format!(
            "checkpoint durability under correlated failures (runtime, \
             {NODES} nodes, {TRIALS} trials per cell, detector hb={HEARTBEAT_MS}ms \
             k={K_MISSED}, WAL-backed checkpoint stores fsync={fsync})"
        ),
        x_label: "checkpoint replication factor k".into(),
        y_label: "recovered fraction after correlated failure".into(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunOptions {
        RunOptions {
            stopping: StoppingRule {
                relative_precision: 0.10,
                confidence: 0.90,
                min_batches: 4,
                max_samples: 8_000,
            },
            seed: 1,
            threads: 2,
        }
    }

    #[test]
    fn parallel_map_matches_sequential_and_balances() {
        let seq = parallel_map(20, 1, |i| i * i);
        let par = parallel_map(20, 4, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(par[7], 49);
        // empty and single-element cases
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn sweeps_are_thread_count_invariant() {
        let mut a = tiny();
        a.threads = 1;
        let mut b = tiny();
        b.threads = 4;
        let ra = fig8(&a);
        let rb = fig8(&b);
        for (pa, pb) in ra.points.iter().zip(&rb.points) {
            assert_eq!(pa.x, pb.x);
            for (label, ma) in &pa.series {
                let mb = &pb.series[label];
                assert_eq!(ma.comm_time, mb.comm_time, "{label} at {}", pa.x);
                assert_eq!(ma.calls, mb.calls);
            }
        }
    }

    #[test]
    fn fig4_is_instant_and_ordered() {
        let r = fig4_cost();
        assert_eq!(r.points.len(), 9);
        for p in &r.points {
            let conv = p.series["conventional move (worst case)"].comm_time;
            let place = p.series["transient placement"].comm_time;
            assert!(place < conv);
            assert!((conv - place - 7.0).abs() < 1e-9); // M + C = 7
        }
    }

    #[test]
    fn fig8_smoke_produces_all_series() {
        let mut opts = tiny();
        opts.stopping.max_samples = 4_000;
        let r = fig8(&opts);
        assert_eq!(r.points.len(), 12);
        assert_eq!(r.labels().len(), 3);
        for p in &r.points {
            for m in p.series.values() {
                assert!(m.calls > 0);
            }
        }
    }

    #[test]
    fn fig12_smoke_break_even_ordering() {
        // even at smoke precision, migration must exceed placement at the
        // high-contention end
        let opts = tiny();
        let r = fig12(&opts);
        let last = r.points.last().unwrap();
        let mig = last.series["migration"].comm_time;
        let place = last.series["transient placement"].comm_time;
        assert!(
            mig > place,
            "migration ({mig}) should degrade past placement ({place}) at 25 clients"
        );
    }

    #[test]
    fn egoism_shows_the_hazard_and_the_remedy() {
        let opts = tiny();
        let r = egoism(&opts);
        assert_eq!(r.points.len(), 3);
        let egoist_mig = r.points[0].series["migration"].comm_time;
        let polite_mig = r.points[1].series["migration"].comm_time;
        // the egoist tilts the system in its own favour (§2.4)
        assert!(
            egoist_mig < polite_mig,
            "egoist {egoist_mig} vs polite {polite_mig}"
        );
        // transient placement lowers the polite clients' cost
        let polite_plc = r.points[1].series["transient placement"].comm_time;
        assert!(
            polite_plc < polite_mig,
            "placement {polite_plc} vs migration {polite_mig} for the polite client"
        );
    }

    #[test]
    fn visit_blocks_cost_roughly_one_extra_migration_per_block() {
        let opts = tiny();
        let r = visit_ablation(&opts);
        // at low contention the visit premium approaches M/N = 6/8 per call
        let last = r.points.last().unwrap();
        let mv = last.series["placement, move blocks"].comm_time;
        let vs = last.series["placement, visit blocks"].comm_time;
        let premium = vs - mv;
        assert!(
            (0.2..1.4).contains(&premium),
            "visit premium {premium} should be near M/N = 0.75"
        );
    }

    #[test]
    fn faults_degrade_everyone_but_keep_placement_ahead() {
        let opts = tiny();
        let r = faults(&opts);
        assert_eq!(r.points.len(), 5);
        let first = r.points.first().unwrap();
        let last = r.points.last().unwrap();
        for label in ["without migration", "migration", "transient placement"] {
            assert!(
                last.series[label].comm_time > first.series[label].comm_time,
                "{label} should cost more at 20 % loss than at 0 %"
            );
        }
        for p in &r.points {
            let mig = p.series["migration"].comm_time;
            let place = p.series["transient placement"].comm_time;
            assert!(
                place < mig,
                "placement ({place}) should stay below migration ({mig}) at loss {}",
                p.x
            );
        }
    }

    #[test]
    fn run_options_presets() {
        assert!(RunOptions::paper().stopping.relative_precision <= 0.01);
        assert!(
            RunOptions::quick().stopping.max_samples < RunOptions::paper().stopping.max_samples
        );
    }

    #[test]
    fn availability_detector_beats_the_baseline_through_a_crash() {
        let opts = tiny();
        let r = availability(&opts);
        assert_eq!(r.points.len(), 3);
        assert_eq!(r.labels().len(), 4);
        // at zero loss the contrast is starkest: without a detector every
        // call aimed at the dead node burns the timeout; the detector
        // reinstantiates the stranded object and serves or fails fast
        let base = &r.points[0].series["no detector"];
        let detected = &r.points[0].series["detector hb=25ms k=3"];
        assert!(
            detected.comm_time < base.comm_time,
            "detector mean {} must undercut baseline mean {}",
            detected.comm_time,
            base.comm_time
        );
        assert!(
            base.denial_rate > 0.0,
            "the dead-node window must deny some baseline calls"
        );
    }

    #[test]
    fn durability_table_separates_k1_from_replicated_checkpoints() {
        let r = durability(&tiny());
        assert_eq!(r.points.len(), 3, "k = 1, 2, 3");
        assert_eq!(r.labels().len(), 3, "three failure patterns");
        let cell = |k: usize, label: &str| &r.points[k - 1].series[label];
        // the paper's single home-node checkpoint dies with its home…
        assert!(
            (cell(1, "host+home").comm_time - 0.0).abs() < f64::EPSILON,
            "k=1 must lose every object to a host+home double crash"
        );
        // …while any replication survives every pattern, every trial
        for k in [2usize, 3] {
            for label in ["single-node", "host+home", "replica-set-minus-one"] {
                assert!(
                    (cell(k, label).comm_time - 1.0).abs() < f64::EPSILON,
                    "k={k} {label} must recover 100%, got {}",
                    cell(k, label).comm_time
                );
            }
        }
        // with k=2 the write quorum is both replicas, so no recovery can
        // ever be stale; k=3 minus-one may promote a pre-quorum copy
        assert!((cell(2, "host+home").denial_rate - 0.0).abs() < f64::EPSILON);
    }
}
