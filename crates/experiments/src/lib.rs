//! # oml-experiments — regenerating every table and figure of the paper
//!
//! Each `figNN` function reproduces the corresponding figure of *Object
//! Migration in Non-Monolithic Distributed Applications*:
//!
//! | Function | Paper | What it shows |
//! |---|---|---|
//! | [`experiments::fig8`] | Figs. 8/10/11 (params Fig. 9) | usage-frequency sweep: sedentary vs migration vs placement, with the call-time / migration-load decomposition |
//! | [`experiments::fig12`] | Fig. 12 (params Fig. 13) | client scaling on 27 nodes: break-even points |
//! | [`experiments::fig14`] | Fig. 14 (params Fig. 15) | dynamic policies vs conservative placement |
//! | [`experiments::fig16`] | Fig. 16 (params Fig. 17) | attachment modes under overlapping working sets |
//! | [`experiments::fig16_exclusive`] | §3.4 extension | adds the exclusive-attachment variant |
//! | [`experiments::fig4_cost`] | Fig. 4 / §3.2 | the analytic conflict-cost table |
//! | [`experiments::topology_ablation`] | §4.1 claim | "other structures had no effect on the results" |
//!
//! Results come back as [`result::ExperimentResult`] — render them with
//! [`result::ExperimentResult::to_ascii_table`] or
//! [`result::ExperimentResult::to_csv`], or drive everything from the
//! `repro` binary (`repro all --quick`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod experiments;
pub mod plot;
pub mod result;
pub mod svg;

pub use experiments::RunOptions;
pub use plot::render_plot;
pub use result::{ExperimentResult, SweepPoint};
pub use svg::{render_svg, SvgOptions};
