//! # oml-experiments — regenerating every table and figure of the paper
//!
//! Each `figNN` function reproduces the corresponding figure of *Object
//! Migration in Non-Monolithic Distributed Applications*:
//!
//! | Function | Paper | What it shows |
//! |---|---|---|
//! | [`experiments::fig8`] | Figs. 8/10/11 (params Fig. 9) | usage-frequency sweep: sedentary vs migration vs placement, with the call-time / migration-load decomposition |
//! | [`experiments::fig12`] | Fig. 12 (params Fig. 13) | client scaling on 27 nodes: break-even points |
//! | [`experiments::fig14`] | Fig. 14 (params Fig. 15) | dynamic policies vs conservative placement |
//! | [`experiments::fig16`] | Fig. 16 (params Fig. 17) | attachment modes under overlapping working sets |
//! | [`experiments::fig16_exclusive`] | §3.4 extension | adds the exclusive-attachment variant |
//! | [`experiments::fig4_cost`] | Fig. 4 / §3.2 | the analytic conflict-cost table |
//! | [`experiments::topology_ablation`] | §4.1 claim | "other structures had no effect on the results" |
//!
//! Results come back as [`result::ExperimentResult`] — render them with
//! [`result::ExperimentResult::to_ascii_table`] or
//! [`result::ExperimentResult::to_csv`], or drive everything from the
//! `repro` binary (`repro all --quick`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// experiment sweeps cast between counts, axes and float metrics; the rest
// are deliberate style choices
#![allow(
    clippy::assigning_clones,
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::elidable_lifetime_names,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::manual_midpoint,
    clippy::map_unwrap_or,
    clippy::missing_errors_doc,
    clippy::missing_fields_in_debug,
    clippy::missing_panics_doc,
    clippy::must_use_candidate,
    clippy::needless_pass_by_value,
    clippy::redundant_closure_for_method_calls,
    clippy::return_self_not_must_use,
    clippy::similar_names,
    clippy::single_match_else,
    clippy::too_many_lines,
    clippy::unnecessary_semicolon,
    clippy::unreadable_literal,
    clippy::wildcard_imports
)]

pub mod bench;
pub mod check;
pub mod cold;
pub mod experiments;
pub mod explore;
pub mod plot;
pub mod result;
pub mod svg;

pub use experiments::RunOptions;
pub use plot::render_plot;
pub use result::{ExperimentResult, SweepPoint};
pub use svg::{render_svg, SvgOptions};
