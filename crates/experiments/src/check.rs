//! The `repro check` driver: replay the seeded chaos schedules from the
//! runtime's chaos harness with protocol tracing enabled, feed every
//! collected trace to `oml-check`, and audit the lock-acquisition graph.
//!
//! This is the executable face of the checker — CI (and anyone debugging a
//! protocol change) runs `repro check --seeds chaos` and gets either "all
//! invariants hold" or a named violation with the offending seed.

use std::time::Duration;

use oml_check::{check_trace, lockorder, CheckReport};
use oml_core::ids::{NodeId, ObjectId};
use oml_core::policy::PolicyKind;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{Cluster, FaultPlan, MobileObject, RuntimeError, KNOWN_LOCK_ORDER};

/// The chaos seeds `repro check --seeds chaos` replays: the canonical
/// chaos-harness seed plus the two divergence seeds from its replay tests.
pub const CHAOS_SEEDS: &[u64] = &[0xC0A5, 1, 2];

const NODES: u32 = 4;
const LEASE_MS: u64 = 1_000;
const OPS: u64 = 40;

/// What one traced chaos replay produced.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The fault-schedule seed this replay ran under.
    pub seed: u64,
    /// The checker's verdict over the collected trace.
    pub report: CheckReport,
}

struct Counter(u64);

impl MobileObject for Counter {
    fn type_tag(&self) -> &'static str {
        "counter"
    }
    fn invoke(&mut self, method: &str, payload: &[u8]) -> Result<Vec<u8>, String> {
        match method {
            "add" => {
                let mut r = WireReader::new(payload);
                self.0 += r.u64()?;
                Ok(WireWriter::new().u64(self.0).finish().to_vec())
            }
            "get" => Ok(WireWriter::new().u64(self.0).finish().to_vec()),
            other => Err(format!("no such method: {other}")),
        }
    }
    fn linearize(&self) -> Vec<u8> {
        WireWriter::new().u64(self.0).finish().to_vec()
    }
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Replays the chaos-harness fault schedule under `seed` with tracing
/// enabled and returns the checker's verdict on the collected trace.
///
/// The schedule matches `chaos_runtime.rs`: drops, duplicates, delays and
/// lost end-requests over three objects on four nodes, a node-pair
/// partition (healed later) and one crash/restart cycle, then a quiesce
/// phase that lets every orphaned lease expire.
///
/// # Panics
///
/// Panics if the runtime surfaces an error the chaos schedule cannot
/// produce (anything but a timeout) — that is a harness bug, not a
/// protocol violation.
#[must_use]
pub fn replay_chaos_seed(seed: u64) -> CheckOutcome {
    let plan = FaultPlan::seeded(seed)
        .drop_probability(0.08)
        .duplicate_probability(0.05)
        .delay_probability(0.10, 3)
        .drop_end_requests(0.5);
    let cluster = Cluster::builder()
        .nodes(NODES)
        .policy(PolicyKind::TransientPlacement)
        .faults(plan)
        .call_timeout(Duration::from_millis(100))
        .invoke_retries(2)
        .lease_ms(LEASE_MS)
        .manual_clock()
        .trace()
        .build();
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });

    let objects: Vec<ObjectId> = (0..3)
        .map(|i| {
            cluster
                .create(n(i), Box::new(Counter(0)))
                .expect("creation is on the reliable channel")
        })
        .collect();

    for i in 0..OPS {
        let obj = objects[(i % 3) as usize];
        match i {
            10 => cluster.partition(n(0), n(1)).expect("valid nodes"),
            18 => cluster.heal(n(0), n(1)).expect("valid nodes"),
            22 => cluster.crash_node(n(2)).expect("crash joins the worker"),
            30 => cluster.restart_node(n(2)).expect("restart respawns it"),
            _ => {}
        }
        if i % 3 == 0 {
            if let Ok(guard) = cluster.move_block(obj, n((i % u64::from(NODES)) as u32)) {
                drop(guard);
            }
        }
        match cluster.invoke(obj, "add", &WireWriter::new().u64(1).finish()) {
            Ok(_) | Err(RuntimeError::Timeout { .. }) => {}
            Err(other) => panic!("op {i}: unexpected error {other}"),
        }
    }

    // quiesce: heal everything and let orphaned leases expire so the trace
    // ends in a protocol-consistent state
    cluster.heal_all();
    match cluster.restart_node(n(2)) {
        // the node usually came back at op 30 and is simply still running
        Ok(()) | Err(RuntimeError::NotDead(_)) => {}
        Err(other) => panic!("quiesce restart: {other}"),
    }
    cluster.advance_clock(2 * LEASE_MS);
    cluster.sweep_leases();
    cluster.shutdown();

    CheckOutcome {
        seed,
        report: check_trace(&cluster.take_trace()),
    }
}

/// Replays every seed in `seeds` and returns the outcomes in order.
#[must_use]
pub fn replay_chaos_seeds(seeds: &[u64]) -> Vec<CheckOutcome> {
    seeds.iter().map(|&s| replay_chaos_seed(s)).collect()
}

/// Heartbeat interval of the recovery replays (`repro check --recovery`).
pub const RECOVERY_HEARTBEAT_MS: u64 = 50;
/// Missed-beat threshold of the recovery replays.
pub const RECOVERY_K_MISSED: u32 = 3;
/// Past this many clock-milliseconds of silence the next sweep must declare
/// a crashed node dead.
const RECOVERY_DETECTION_MS: u64 = RECOVERY_HEARTBEAT_MS * RECOVERY_K_MISSED as u64 + 50;

/// Restarts `node` until the detector re-admits it — a fenced zombie exits
/// asynchronously, so the first attempts may find its worker still winding
/// down and no-op.
fn restart_until_up(cluster: &Cluster, node: NodeId) {
    for _ in 0..500 {
        match cluster.restart_node(node) {
            // NotDead: the previous incarnation's worker is still winding
            // down (or the restart already took) — poll health and retry
            Ok(()) | Err(RuntimeError::NotDead(_)) => {}
            Err(other) => panic!("restart {node}: {other}"),
        }
        if cluster.node_health(node) == Some(oml_runtime::NodeHealth::Up) {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("{node} never came back up");
}

/// Replays the recovery chaos schedule under `seed` with the failure
/// detector (and epoch fencing) enabled, and returns the checker's verdict.
///
/// The schedule layers the recovery machinery over a lossy link: a
/// partition that drives (revocable) suspicion, a crash that the detector
/// converts into death and checkpoint reinstantiation, a scripted **zombie
/// restart** under the stale incarnation that fencing must neutralize, and
/// an honest restart that rejoins under a fresh epoch. The trace must be
/// violation-free — in particular, zero stale-incarnation findings.
///
/// # Panics
///
/// Panics if the runtime surfaces an error this schedule cannot produce
/// (anything but a timeout or a fail-fast `NodeDown`).
#[must_use]
pub fn replay_recovery_seed(seed: u64) -> CheckOutcome {
    let outcome = run_recovery_schedule(seed, true);
    CheckOutcome {
        seed,
        report: outcome,
    }
}

/// Replays every seed in `seeds` through the recovery schedule.
#[must_use]
pub fn replay_recovery_seeds(seeds: &[u64]) -> Vec<CheckOutcome> {
    seeds.iter().map(|&s| replay_recovery_seed(s)).collect()
}

/// Negative control for `repro check --recovery`: the same zombie-restart
/// schedule with fencing disabled. The zombie double-installs the
/// reinstantiated object, and the returned report must **not** be clean —
/// proving the stale-incarnation invariant actually bites.
#[must_use]
pub fn replay_zombie_negative(seed: u64) -> CheckOutcome {
    let outcome = run_recovery_schedule(seed, false);
    CheckOutcome {
        seed,
        report: outcome,
    }
}

fn run_recovery_schedule(seed: u64, fenced: bool) -> CheckReport {
    let plan = FaultPlan::seeded(seed)
        .drop_probability(0.05)
        .delay_probability(0.05, 2);
    let mut builder = Cluster::builder()
        .nodes(NODES)
        .policy(PolicyKind::TransientPlacement)
        .faults(plan)
        .call_timeout(Duration::from_millis(100))
        .invoke_retries(2)
        .lease_ms(LEASE_MS)
        .manual_clock()
        .failure_detector(RECOVERY_HEARTBEAT_MS, RECOVERY_K_MISSED)
        .trace();
    if !fenced {
        builder = builder.unfenced();
    }
    let cluster = builder.build();
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });

    let objects: Vec<ObjectId> = (0..3)
        .map(|i| {
            cluster
                .create(n(i), Box::new(Counter(0)))
                .expect("creation is on the reliable channel")
        })
        .collect();

    for i in 0..OPS {
        let obj = objects[(i % 3) as usize];
        match i {
            // a partition drives suspicion (and fail-fast), then heals: the
            // suspicion must be revoked, not escalated to death
            8 => {
                cluster.partition(n(0), n(1)).expect("valid nodes");
                cluster.detector_sweep();
            }
            14 => {
                cluster.heal(n(0), n(1)).expect("valid nodes");
                cluster.detector_sweep();
            }
            // a real crash: the next sweep after the detection window
            // declares death and reinstantiates the stranded objects
            16 => cluster.crash_node(n(2)).expect("crash joins the worker"),
            18 => {
                cluster.advance_clock(RECOVERY_DETECTION_MS);
                cluster.detector_sweep();
            }
            // the zombie restart: under fencing it must change nothing
            24 => cluster
                .zombie_restart_node(n(2))
                .expect("zombie respawns under the stale epoch"),
            // the honest restart reaps the exited zombie and rejoins under a
            // fresh epoch — only meaningful when fencing made the zombie
            // exit; an unfenced zombie keeps running as the node's worker
            30 if fenced => restart_until_up(&cluster, n(2)),
            _ => {}
        }
        if i % 3 == 0 {
            if let Ok(guard) = cluster.move_block(obj, n((i % u64::from(NODES)) as u32)) {
                drop(guard);
            }
        }
        match cluster.invoke(obj, "add", &WireWriter::new().u64(1).finish()) {
            Ok(_) | Err(RuntimeError::Timeout { .. } | RuntimeError::NodeDown(_)) => {}
            Err(other) => panic!("op {i}: unexpected error {other}"),
        }
    }

    cluster.heal_all();
    if fenced {
        restart_until_up(&cluster, n(2));
    }
    cluster.advance_clock(2 * LEASE_MS);
    cluster.sweep_leases();
    cluster.shutdown();
    check_trace(&cluster.take_trace())
}

/// Polls `checkpoint_health` until `pred` holds for `obj` (the quorum of
/// acks lands asynchronously).
fn await_health(
    cluster: &Cluster,
    obj: ObjectId,
    pred: impl Fn(&oml_runtime::CheckpointHealth) -> bool,
) {
    for _ in 0..500 {
        if cluster
            .checkpoint_health()
            .iter()
            .any(|h| h.object == obj && pred(h))
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!(
        "{obj} health never converged: {:?}",
        cluster.checkpoint_health()
    );
}

/// Builds the replicated-checkpoint durability cluster: 4 nodes, `k = 2`,
/// detector + manual clock, tracing on, with duplicated checkpoint traffic
/// (seeded) so the ack-dedup path is exercised on every replay.
fn durability_cluster(seed: u64, k: usize, no_repair: bool, stale_promotion: bool) -> Cluster {
    let mut builder = Cluster::builder()
        .nodes(NODES)
        .policy(PolicyKind::TransientPlacement)
        .faults(FaultPlan::seeded(seed).checkpoint_faults(0.0, 0.5))
        .call_timeout(Duration::from_millis(100))
        .invoke_retries(2)
        .lease_ms(LEASE_MS)
        .manual_clock()
        .failure_detector(RECOVERY_HEARTBEAT_MS, RECOVERY_K_MISSED)
        .replication(k)
        .trace();
    if no_repair {
        builder = builder.no_repair();
    }
    if stale_promotion {
        builder = builder.stale_promotion();
    }
    let cluster = builder.build();
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });
    cluster
}

/// Replays the durability schedule under `seed`: an object is hosted off
/// its replica set, refreshed to a write quorum, and then its host and its
/// home (the old single checkpoint holder) die in the same detector sweep.
/// With `k = 2` the second replica promotes its quorum-acked copy, and the
/// trace must be violation-free — in particular, zero
/// replication-factor and stale-promotion findings.
///
/// # Panics
///
/// Panics if the object does not survive the correlated failure (it must,
/// with `k = 2`), or if the runtime surfaces an error the schedule cannot
/// produce.
#[must_use]
pub fn replay_durability_seed(seed: u64) -> CheckOutcome {
    let cluster = durability_cluster(seed, 2, false, false);
    let obj = cluster
        .create(n(0), Box::new(Counter(7)))
        .expect("creation is on the reliable channel");
    let set = cluster.replica_set(obj).expect("replicated object");
    let host = (0..NODES)
        .map(n)
        .find(|cand| !set.contains(cand))
        .expect("4 nodes, 2 replicas");
    drop(cluster.move_block(obj, host).expect("move to host"));
    cluster
        .invoke(obj, "add", &WireWriter::new().u64(5).finish())
        .expect("acknowledged add");
    // an ended block is a consistency point: the refresh carries 12 and
    // must reach its write quorum before the failure lands
    drop(cluster.move_block(obj, host).expect("consistency point"));
    await_health(&cluster, obj, |h| h.quorum >= Some((0, 3)));

    cluster.crash_node(host).expect("crash joins the worker");
    cluster.crash_node(n(0)).expect("crash joins the worker");
    cluster.advance_clock(RECOVERY_DETECTION_MS);
    cluster.detector_sweep();

    let mut recovered = None;
    for _ in 0..500 {
        if let Ok(out) = cluster.invoke(obj, "get", &[]) {
            recovered = Some(WireReader::new(&out).u64().expect("counter payload"));
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        recovered,
        Some(12),
        "k=2 must survive a host+home double crash with the quorum-acked value"
    );

    cluster.shutdown();
    CheckOutcome {
        seed,
        report: check_trace(&cluster.take_trace()),
    }
}

/// Replays every seed in `seeds` through the durability schedule.
#[must_use]
pub fn replay_durability_seeds(seeds: &[u64]) -> Vec<CheckOutcome> {
    seeds.iter().map(|&s| replay_durability_seed(s)).collect()
}

/// Negative control for `repro check --durability`: with the anti-entropy
/// repair sweep disabled, a declared death leaves an object
/// under-replicated to the end of the trace, and the checker's
/// `ReplicationFactorViolation` invariant must flag it.
///
/// # Panics
///
/// Panics if the runtime surfaces an error the schedule cannot produce.
#[must_use]
pub fn replay_no_repair_negative(seed: u64) -> CheckOutcome {
    let cluster = durability_cluster(seed, 2, true, false);
    let obj = cluster
        .create(n(0), Box::new(Counter(7)))
        .expect("creation is on the reliable channel");
    let second = cluster.replica_set(obj).expect("replicated object")[1];
    cluster.crash_node(second).expect("crash joins the worker");
    cluster.advance_clock(RECOVERY_DETECTION_MS);
    cluster.detector_sweep();
    cluster.shutdown();
    CheckOutcome {
        seed,
        report: check_trace(&cluster.take_trace()),
    }
}

/// Negative control for `repro check --durability`: reinstantiation is
/// rigged to promote the *stalest* surviving replica. A partition makes one
/// replica miss the post-add refresh; when the host+home dies, the rigged
/// promotion discards the surviving quorum-acked write, and the checker's
/// `StaleReplicaPromoted` invariant must flag it.
///
/// # Panics
///
/// Panics if the runtime surfaces an error the schedule cannot produce.
#[must_use]
pub fn replay_stale_promotion_negative(seed: u64) -> CheckOutcome {
    let cluster = durability_cluster(seed, 3, false, true);
    let obj = cluster
        .create(n(0), Box::new(Counter(7)))
        .expect("creation is on the reliable channel");
    let set = cluster.replica_set(obj).expect("replicated object");
    drop(cluster.move_block(obj, n(0)).expect("consistency point"));
    await_health(&cluster, obj, |h| h.quorum >= Some((0, 1)));

    // the last replica misses the post-add refresh behind a partition,
    // while the quorum (host's own store plus the middle replica) carries it
    cluster.partition(n(0), set[2]).expect("valid nodes");
    cluster
        .invoke(obj, "add", &WireWriter::new().u64(5).finish())
        .expect("acknowledged add");
    drop(cluster.move_block(obj, n(0)).expect("consistency point"));
    await_health(&cluster, obj, |h| h.quorum >= Some((0, 2)));

    cluster.crash_node(n(0)).expect("crash joins the worker");
    cluster.advance_clock(RECOVERY_DETECTION_MS);
    cluster.detector_sweep();
    cluster.shutdown();
    CheckOutcome {
        seed,
        report: check_trace(&cluster.take_trace()),
    }
}

/// Drives a small fault-free scenario that touches every named lock site —
/// including the one legal nesting (`shared.alliances` before
/// `shared.attachments`, taken by `attach`) — so the debug-build
/// lock-acquisition graph is populated before [`audit_lock_order`]. The
/// chaos schedules never build attachments, so without this the audit
/// would pass on an empty graph.
///
/// Returns the checker's verdict on the scenario's own trace.
///
/// # Panics
///
/// Panics if the fault-free scenario itself fails (creation, alliance
/// membership, attachment or migration errors) — there are no faults to
/// blame, so any error is a runtime bug.
#[must_use]
pub fn exercise_lock_sites() -> CheckReport {
    let cluster = Cluster::builder()
        .nodes(2)
        .policy(PolicyKind::CompareAndReinstantiate)
        .lease_ms(500)
        .manual_clock()
        .trace()
        .build();
    cluster.register_type("counter", |bytes| {
        let mut r = WireReader::new(bytes);
        Box::new(Counter(r.u64().expect("valid counter state")))
    });
    let a = cluster.create(n(0), Box::new(Counter(0))).expect("create");
    let b = cluster.create(n(1), Box::new(Counter(0))).expect("create");
    let ally = cluster.create_alliance("pair");
    cluster.join_alliance(ally, a).expect("join");
    cluster.join_alliance(ally, b).expect("join");
    cluster.attach(a, b, Some(ally)).expect("attach");
    cluster.fix(b);
    drop(cluster.move_block_in(a, n(1), Some(ally)).expect("move"));
    cluster.invoke(a, "get", &[]).expect("invoke");
    cluster.advance_clock(1_000);
    cluster.sweep_leases();
    cluster.crash_node(n(1)).expect("crash");
    cluster.restart_node(n(1)).expect("restart");
    cluster.shutdown();
    check_trace(&cluster.take_trace())
}

/// What the lock-order audit saw after the replays.
#[derive(Debug)]
pub struct LockOrderAudit {
    /// Every distinct `held -> acquired` nesting observed.
    pub edges: Vec<(&'static str, &'static str)>,
    /// A cycle through the graph, if one exists (a potential deadlock).
    pub cycle: Option<Vec<&'static str>>,
    /// Observed nestings missing from [`oml_runtime::KNOWN_LOCK_ORDER`].
    pub unknown: Vec<(&'static str, &'static str)>,
}

impl LockOrderAudit {
    /// Whether the acquisition graph is acyclic and fully documented.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.cycle.is_none() && self.unknown.is_empty()
    }
}

/// Audits the lock-acquisition graph recorded (in debug builds) during the
/// replays of this process against the documented allowlist.
#[must_use]
pub fn audit_lock_order() -> LockOrderAudit {
    let edges = lockorder::edges();
    LockOrderAudit {
        cycle: lockorder::find_cycle_in(&edges),
        unknown: lockorder::unknown_edges(KNOWN_LOCK_ORDER),
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_chaos_seed_is_clean() {
        let outcome = replay_chaos_seed(0xC0A5);
        assert!(outcome.report.events > 100, "tracing must be on");
        assert!(outcome.report.is_clean(), "{}", outcome.report);
    }

    #[test]
    fn recovery_schedule_is_clean_when_fenced() {
        let outcome = replay_recovery_seed(CHAOS_SEEDS[0]);
        assert!(outcome.report.events > 100, "tracing must be on");
        assert!(outcome.report.is_clean(), "{}", outcome.report);
    }

    #[test]
    fn recovery_schedule_is_flagged_when_unfenced() {
        let outcome = replay_zombie_negative(CHAOS_SEEDS[0]);
        assert!(
            !outcome.report.is_clean(),
            "the unfenced zombie must trip the stale-incarnation invariant"
        );
        let rendered = outcome.report.to_string();
        assert!(
            rendered.contains("stale incarnation"),
            "expected a stale-incarnation violation, got: {rendered}"
        );
    }

    #[test]
    fn durability_schedule_is_clean() {
        let outcome = replay_durability_seed(CHAOS_SEEDS[0]);
        assert!(outcome.report.events > 10, "tracing must be on");
        assert!(outcome.report.is_clean(), "{}", outcome.report);
    }

    #[test]
    fn no_repair_negative_is_flagged() {
        let outcome = replay_no_repair_negative(CHAOS_SEEDS[0]);
        assert!(
            !outcome.report.is_clean(),
            "an unrepaired replica deficit must trip the replication-factor invariant"
        );
        let rendered = outcome.report.to_string();
        assert!(
            rendered.contains("replication factor"),
            "expected a replication-factor violation, got: {rendered}"
        );
    }

    #[test]
    fn stale_promotion_negative_is_flagged() {
        let outcome = replay_stale_promotion_negative(CHAOS_SEEDS[0]);
        assert!(
            !outcome.report.is_clean(),
            "discarding a surviving quorum write must trip the freshness invariant"
        );
        let rendered = outcome.report.to_string();
        assert!(
            rendered.contains("stale replica promoted"),
            "expected a stale-promotion violation, got: {rendered}"
        );
    }

    #[test]
    fn lock_order_audit_reflects_the_recorded_graph() {
        // the replay above (or any other test in this binary) has exercised
        // the runtime's locks; the audit must come back clean
        let _ = replay_chaos_seed(1);
        let audit = audit_lock_order();
        assert!(audit.is_clean(), "{audit:?}");
    }
}
