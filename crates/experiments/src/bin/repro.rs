//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--quick | --paper] [--seed N] [--threads N] [--csv DIR]
//!
//! experiments:
//!   table1     the simulation-parameter glossary (Table 1)
//!   fig4       analytic §3.2 conflict costs
//!   fig8       usage-frequency sweep (Figs. 8/10/11)
//!   fig10      the Fig. 10 view of fig8 (mean duration of one call)
//!   fig11      the Fig. 11 view of fig8 (mean migration time per call)
//!   fig12      client scaling, break-even points (Fig. 12)
//!   fig14      dynamic placement strategies (Fig. 14)
//!   fig16      attachment modes (Fig. 16)
//!   fig16x     fig16 plus exclusive attachment (§3.4 extension)
//!   topology   §4.1 robustness: other network structures
//!   egoism     §2.4 extension: one egoistic mover vs three polite ones
//!   break-even §4.2.2 extension: break-even client counts vs the N/M ratio
//!   visit      §2.3 ablation: move blocks vs visit blocks
//!   location   §4.1 ablation: the four object-location mechanisms
//!   faults     robustness extension: degradation under message loss
//!   availability  recovery extension: client-visible latency/denials across
//!              a crash → detect → reinstantiate → heal cycle on the real
//!              runtime, with and without the failure detector
//!              (--multiprocess runs it instead over real worker OS
//!              processes on a Unix-domain socket, with a real SIGKILL
//!              mid-workload; exits nonzero if the denial-rate recovery
//!              shape regresses)
//!   durability robustness extension: fraction of objects surviving
//!              correlated failures (host crash, host+home double crash,
//!              replica-set-minus-one) as the checkpoint replication
//!              factor k grows, on the real runtime; checkpoint stores are
//!              WAL-backed under the --fsync policy (or OML_FSYNC)
//!              (--cold-restart instead SIGKILLs a whole multi-process
//!              cluster — coordinator and workers — and cold-starts a
//!              successor from the on-disk WAL alone, reporting recovered
//!              fraction and recovery latency per fsync policy plus a
//!              torn-write negative control the checker must flag; exits
//!              nonzero on any durability regression)
//!   check      replay seeded chaos schedules with protocol tracing on and
//!              verify the paper's invariants plus the lock-order graph
//!              (--seeds chaos | --seeds N,M,... to pick the schedules;
//!              --recovery adds the failure-detector schedules and the
//!              unfenced zombie negative control; --durability adds the
//!              quorum-replicated checkpoint schedules and the no-repair /
//!              stale-promotion negative controls; --negative replays the
//!              negative controls alone and exits nonzero — violations are
//!              present by construction)
//!   explore    DPOR model checker over the bundled small-scope matrix:
//!              the clean configs must enumerate exhaustively with zero
//!              violations and the seeded-mutation configs must yield
//!              minimized counterexamples, saved under results/explore/ and
//!              re-verified by bit-identical replay from disk (--smoke for
//!              the CI budget, --budget N to cap enumerated schedules,
//!              --replay FILE to re-execute a saved counterexample)
//!   bench      fixed quick-precision perf suite; writes BENCH_02.json
//!              (single-threaded unless --threads says otherwise, so the
//!              tracked baseline stays comparable across commits)
//!   scaling    threads-axis scaling suite over the parallel replication
//!              runner; asserts bit-identical results across thread counts
//!              and writes BENCH_03.json (--axis N,M,... picks the thread
//!              counts, default 1,2,4,8; --no-mega skips the standing mega
//!              world that is otherwise appended to the report)
//!   mega       the standing large-scale world: >=1M Zipf-popular objects
//!              on >=1024 nodes across 64 shards of the conservative
//!              time-windowed engine (--smoke runs the small CI variant)
//!   <file.csv> replot a previously saved result (no re-run)
//!   custom     run a scenario loaded with --scenario FILE (key = value
//!              format; see ScenarioConfig::to_config_text) under all five
//!              policies
//!   all        everything above
//! ```

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use oml_experiments::bench::{
    render_bench_json, render_scaling_json, run_bench_suite, run_scaling_suite,
};
use oml_experiments::check::{
    audit_lock_order, exercise_lock_sites, replay_chaos_seeds, replay_durability_seeds,
    replay_no_repair_negative, replay_recovery_seeds, replay_stale_promotion_negative,
    replay_zombie_negative, CHAOS_SEEDS,
};
use oml_experiments::experiments::{
    availability, availability_multiprocess, break_even_scaling, durability, egoism, faults, fig12,
    fig14, fig16, fig16_exclusive, fig4_cost, fig8, location_ablation, multiproc_worker_types,
    topology_ablation, visit_ablation, RunOptions,
};
use oml_experiments::explore::{render_outcome, replay_file, run_matrix};
use oml_experiments::{render_plot, render_svg, ExperimentResult, SvgOptions};
use oml_workload::mega::{run_mega, MegaConfig};
use oml_workload::table1::{table1, value_for};
use oml_workload::{run_scenario, ScenarioConfig};

struct Cli {
    experiment: String,
    opts: RunOptions,
    csv_dir: Option<PathBuf>,
    svg_dir: Option<PathBuf>,
    plot: bool,
    scenario: Option<PathBuf>,
    seeds: Option<String>,
    recovery: bool,
    durability_check: bool,
    negative: bool,
    budget: Option<u64>,
    replay: Option<PathBuf>,
    /// Set iff `--threads` was given explicitly (bench defaults to 1 for
    /// baseline comparability, everything else to `default_threads()`).
    threads_override: Option<usize>,
    axis: Option<String>,
    no_mega: bool,
    smoke: bool,
    multiprocess: bool,
    cold_restart: bool,
    /// Validated `--fsync` policy string; also exported as `OML_FSYNC` so
    /// re-executed child processes inherit it.
    fsync: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut experiment = None;
    let mut opts = RunOptions::quick();
    let mut precision_set = false;
    let mut csv_dir = None;
    let mut svg_dir = None;
    let mut plot = false;
    let mut scenario = None;
    let mut seeds = None;
    let mut recovery = false;
    let mut durability_check = false;
    let mut negative = false;
    let mut budget = None;
    let mut replay = None;
    let mut threads_override = None;
    let mut axis = None;
    let mut no_mega = false;
    let mut smoke = false;
    let mut multiprocess = false;
    let mut cold_restart = false;
    let mut fsync = None;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                opts = RunOptions {
                    seed: opts.seed,
                    ..RunOptions::quick()
                };
                precision_set = true;
            }
            "--paper" => {
                opts = RunOptions {
                    seed: opts.seed,
                    ..RunOptions::paper()
                };
                precision_set = true;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count: {v}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                threads_override = Some(n);
            }
            "--axis" => {
                axis = Some(args.next().ok_or("--axis needs N,M,...")?);
            }
            "--no-mega" => no_mega = true,
            "--smoke" => smoke = true,
            "--multiprocess" => multiprocess = true,
            "--cold-restart" => cold_restart = true,
            "--fsync" => {
                let v = args.next().ok_or("--fsync needs always|never|batch:N:MS")?;
                if oml_runtime::FsyncPolicy::parse(&v).is_none() {
                    return Err(format!("bad fsync policy: {v} (always|never|batch:N:MS)"));
                }
                // exported so the worker/seed/recover child processes this
                // binary re-executes see the same policy
                env::set_var("OML_FSYNC", &v);
                fsync = Some(v);
            }
            "--csv" => {
                let v = args.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(PathBuf::from(v));
            }
            "--plot" => plot = true,
            "--scenario" => {
                let v = args.next().ok_or("--scenario needs a file")?;
                scenario = Some(PathBuf::from(v));
            }
            "--seeds" => {
                seeds = Some(args.next().ok_or("--seeds needs `chaos` or N,M,...")?);
            }
            "--recovery" => recovery = true,
            "--durability" => durability_check = true,
            "--negative" => negative = true,
            "--budget" => {
                let v = args.next().ok_or("--budget needs a schedule count")?;
                budget = Some(v.parse().map_err(|_| format!("bad budget: {v}"))?);
            }
            "--replay" => {
                let v = args.next().ok_or("--replay needs a schedule file")?;
                replay = Some(PathBuf::from(v));
            }
            "--svg" => {
                let v = args.next().ok_or("--svg needs a directory")?;
                svg_dir = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if !precision_set && !matches!(experiment.as_deref(), Some("check" | "explore")) {
        eprintln!(
            "(no precision flag given; defaulting to --quick — use --paper for the 1%/p=0.99 rule)"
        );
    }
    // applied last so `--threads 4 --paper` and `--paper --threads 4` agree
    if let Some(n) = threads_override {
        opts.threads = n;
    }
    Ok(Cli {
        experiment: experiment.ok_or("an experiment name is required")?,
        opts,
        csv_dir,
        svg_dir,
        plot,
        scenario,
        seeds,
        recovery,
        durability_check,
        negative,
        budget,
        replay,
        threads_override,
        axis,
        no_mega,
        smoke,
        multiprocess,
        cold_restart,
        fsync,
    })
}

/// One-line JSON record of the fsync policy an experiment actually ran
/// under — `--fsync` if given, else `OML_FSYNC`, else the default.
fn print_fsync_summary(experiment: &str, flag: Option<&str>) {
    let policy = flag.map_or_else(
        || {
            env::var("OML_FSYNC")
                .ok()
                .and_then(|v| oml_runtime::FsyncPolicy::parse(v.trim()))
                .unwrap_or_default()
                .to_string()
        },
        str::to_owned,
    );
    println!("{{\"experiment\": \"{experiment}\", \"fsync\": \"{policy}\"}}");
}

fn print_table1() {
    println!("# Table 1 — relevant simulation parameters");
    println!(
        "{:>8}  {:<38} {:>10}  {:>12} {:>12} {:>12} {:>12}",
        "symbol", "description", "distrib.", "fig8", "fig12", "fig14", "fig16"
    );
    let configs = [
        ScenarioConfig::fig8(f64::NAN),
        ScenarioConfig::fig12(0),
        ScenarioConfig::fig14(0),
        ScenarioConfig::fig16(0),
    ];
    for row in table1() {
        print!(
            "{:>8}  {:<38} {:>10}",
            row.symbol, row.description, row.distribution
        );
        for cfg in &configs {
            let v = match row.symbol {
                "C" => "varies".to_owned(),
                "t_m" if cfg.name.starts_with("fig8") => "varies".to_owned(),
                _ => value_for(cfg, row.symbol),
            };
            print!(" {v:>12}");
        }
        println!();
    }
}

fn emit(result: &ExperimentResult, cli: &Cli) {
    let csv_dir = cli.csv_dir.as_ref();
    println!("{}", result.to_ascii_table());
    if cli.plot {
        println!("{}", render_plot(result, 64, 20));
    }
    if let Some(dir) = &cli.svg_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
        } else {
            let path = dir.join(format!("{}.svg", result.id));
            match fs::write(&path, render_svg(result, &SvgOptions::default())) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
    }
    if result.id == "fig12" {
        if let Some(x) = result.crossover("migration", "without migration") {
            println!("break-even migration vs sedentary: ~{x:.1} clients (paper: ~6)");
        }
        if let Some(x) = result.crossover("transient placement", "without migration") {
            println!("break-even placement vs sedentary: ~{x:.1} clients (paper: ~20)");
        }
        println!();
    }
    if let Some(dir) = csv_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{}.csv", result.id));
        match fs::write(&path, result.to_csv()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

/// Replays the requested chaos seeds with tracing on, prints every
/// checker verdict and the lock-order audit, and reports overall success.
/// With `recovery`, additionally replays the failure-detector schedules
/// (crash → declare-dead → reinstantiate, plus a scripted zombie restart)
/// and the unfenced negative control, which must be *flagged*. With
/// `durability`, additionally replays the quorum-replicated checkpoint
/// schedules (host+home double crash under duplicated checkpoint traffic)
/// and the no-repair / stale-promotion negative controls, which must be
/// *flagged*.
/// The `--negative` path: replays the three rigged negative controls alone.
/// Violations are present *by construction*, so this path always exits
/// nonzero — the exit code uniformly means "violations found", whether they
/// were hoped for or not. A control that comes back clean is reported too
/// (the invariant meant to catch it is not biting), and still exits
/// nonzero.
fn run_check_negative(seed: u64) -> ExitCode {
    println!("# repro check --negative — rigged controls, violations expected");
    let mut all_flagged = true;
    for (name, outcome) in [
        ("unfenced zombie", replay_zombie_negative(seed)),
        ("no-repair", replay_no_repair_negative(seed)),
        ("stale-promotion", replay_stale_promotion_negative(seed)),
    ] {
        if outcome.report.is_clean() {
            eprintln!("{name}: CLEAN — the invariant meant to catch it is not biting");
            all_flagged = false;
        } else {
            println!(
                "{name}: flagged as expected ({} violation(s))",
                outcome.report.violations.len()
            );
        }
    }
    if all_flagged {
        println!("\nall negative controls flagged; exiting nonzero (violations present)");
    } else {
        eprintln!("\nsome negative controls were NOT flagged");
    }
    ExitCode::FAILURE
}

fn run_check(seeds_arg: Option<&str>, recovery: bool, durability: bool) -> ExitCode {
    let seeds: Vec<u64> = match seeds_arg {
        None | Some("chaos") => CHAOS_SEEDS.to_vec(),
        Some(list) => {
            let mut parsed = Vec::new();
            for part in list.split(',') {
                let part = part.trim();
                let seed = if let Some(hex) = part.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    part.parse()
                };
                match seed {
                    Ok(s) => parsed.push(s),
                    Err(_) => {
                        eprintln!("error: bad seed in --seeds: {part}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            parsed
        }
    };

    println!("# repro check — protocol invariants under seeded chaos");
    let mut clean = true;
    for outcome in replay_chaos_seeds(&seeds) {
        println!("\nseed {:#x}:", outcome.seed);
        println!("{}", outcome.report);
        clean &= outcome.report.is_clean();
    }

    if recovery {
        println!("\n# repro check --recovery — fenced reinstantiation under chaos");
        for outcome in replay_recovery_seeds(&seeds) {
            println!("\nrecovery seed {:#x}:", outcome.seed);
            println!("{}", outcome.report);
            clean &= outcome.report.is_clean();
        }
        // the negative control: without fencing the zombie double-installs,
        // and the stale-incarnation invariant MUST catch it
        let negative = replay_zombie_negative(seeds[0]);
        if negative.report.is_clean() {
            eprintln!(
                "\nunfenced zombie negative control came back CLEAN — the \
                 stale-incarnation invariant is not biting"
            );
            clean = false;
        } else {
            println!(
                "\nunfenced zombie negative control: flagged as expected \
                 ({} violation(s))",
                negative.report.violations.len()
            );
        }
    }

    if durability {
        println!("\n# repro check --durability — quorum-replicated checkpoints");
        for outcome in replay_durability_seeds(&seeds) {
            println!("\ndurability seed {:#x}:", outcome.seed);
            println!("{}", outcome.report);
            clean &= outcome.report.is_clean();
        }
        // negative control one: with the repair sweep off, a declared death
        // must leave a replica deficit the checker flags
        let no_repair = replay_no_repair_negative(seeds[0]);
        if no_repair.report.is_clean() {
            eprintln!(
                "\nno-repair negative control came back CLEAN — the \
                 replication-factor invariant is not biting"
            );
            clean = false;
        } else {
            println!(
                "\nno-repair negative control: flagged as expected \
                 ({} violation(s))",
                no_repair.report.violations.len()
            );
        }
        // negative control two: rigged stalest-survivor promotion must trip
        // the freshness invariant when a quorum-acked copy survives
        let stale = replay_stale_promotion_negative(seeds[0]);
        if stale.report.is_clean() {
            eprintln!(
                "\nstale-promotion negative control came back CLEAN — the \
                 freshness invariant is not biting"
            );
            clean = false;
        } else {
            println!(
                "\nstale-promotion negative control: flagged as expected \
                 ({} violation(s))",
                stale.report.violations.len()
            );
        }
    }

    println!("\n# lock-order audit");
    // a fault-free attach/migrate/crash scenario touches the lock sites the
    // chaos schedules miss (attachments never occur under chaos)
    let attach_report = exercise_lock_sites();
    println!("attach scenario: {}", attach_report);
    clean &= attach_report.is_clean();
    let audit = audit_lock_order();
    if audit.edges.is_empty() {
        if cfg!(debug_assertions) {
            println!("no lock nestings observed");
        } else {
            println!("(release build: lock-order recording is compiled out; run a debug build for the graph)");
        }
    } else {
        print!("{}", oml_check::lockorder::render_edges(&audit.edges));
    }
    if let Some(cycle) = &audit.cycle {
        eprintln!("lock-order CYCLE: {}", cycle.join(" -> "));
        clean = false;
    }
    if !audit.unknown.is_empty() {
        eprintln!(
            "undocumented lock nesting(s): {:?} — review and add to KNOWN_LOCK_ORDER + DESIGN.md §10",
            audit.unknown
        );
        clean = false;
    }

    if clean {
        println!("\nall invariants hold across {} seed(s)", seeds.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("\nviolations found");
        ExitCode::FAILURE
    }
}

/// The `explore` experiment: run the DPOR matrix (or replay one saved
/// schedule with `--replay`), printing per-configuration verdicts. Exit is
/// zero iff every configuration met its expectation — clean configs
/// enumerate exhaustively without violations, seeded-mutation configs
/// produce a counterexample whose disk round-trip replays bit-identically.
fn run_explore(cli: &Cli) -> ExitCode {
    if let Some(path) = &cli.replay {
        return match replay_file(path) {
            Ok(true) => {
                println!("replay verified: violation reproduced, digest bit-identical");
                ExitCode::SUCCESS
            }
            Ok(false) => {
                eprintln!("replay FAILED to reproduce the recorded counterexample");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut budget = if cli.smoke {
        oml_check::explore::Budget::smoke()
    } else {
        oml_check::explore::Budget::default()
    };
    if let Some(n) = cli.budget {
        budget.max_schedules = n;
    }
    println!(
        "# repro explore — DPOR over the small-scope matrix (≤{} schedules, ≤{} steps, depth ≤{})",
        budget.max_schedules, budget.max_steps, budget.max_depth
    );
    let out_dir = PathBuf::from("results/explore");
    let outcomes = run_matrix(&budget, &out_dir);
    let mut all_passed = true;
    for o in &outcomes {
        print!("\n{}", render_outcome(o));
        all_passed &= o.passed;
    }
    if all_passed {
        println!(
            "\nall {} configuration(s) met their expectations",
            outcomes.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nexploration expectations NOT met");
        ExitCode::FAILURE
    }
}

fn print_mega(report: &oml_workload::mega::MegaReport) {
    println!("# repro mega — the standing large-scale world");
    println!(
        "{} objects on {} nodes across {} shards, {} worker thread(s)",
        report.objects, report.nodes, report.shards, report.threads
    );
    println!(
        "simulated {:.0} time units: {} events in {:.2} s wall ({:.0} events/s)",
        report.sim_time, report.events, report.wall_s, report.events_per_sec
    );
    println!(
        "{} ticks, {} calls issued / {} completed ({} local), {} migrations",
        report.ticks,
        report.calls_issued,
        report.calls_completed,
        report.local_calls,
        report.migrations
    );
    println!(
        "mean response {:.3} time units, peak RSS {:.1} MiB",
        report.mean_response,
        report.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );
}

/// The `scaling` experiment: run the replicated fig16 sweep once per thread
/// count, demand bit-identical metrics, append a mega-world run unless
/// `--no-mega`, and write `BENCH_03.json`.
fn run_scaling(cli: &Cli) -> ExitCode {
    let axis: Vec<usize> = match &cli.axis {
        None => vec![1, 2, 4, 8],
        Some(list) => {
            let mut parsed = Vec::new();
            for part in list.split(',') {
                match part.trim().parse::<usize>() {
                    Ok(n) if n > 0 => parsed.push(n),
                    _ => {
                        eprintln!("error: bad thread count in --axis: {part}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            parsed
        }
    };
    if axis.is_empty() {
        eprintln!("error: --axis needs at least one thread count");
        return ExitCode::FAILURE;
    }

    println!("# repro scaling — replication runner over threads {axis:?}");
    let report = run_scaling_suite(&cli.opts, &axis);
    let base = report.runs.first().map_or(0.0, |r| r.wall_s);
    for r in &report.runs {
        let speedup = if r.wall_s > 0.0 { base / r.wall_s } else { 0.0 };
        println!(
            "{:>2} thread(s): {:>8.3} s  {:>10} events  {:>12.0} events/s  x{:.2}  fp {:016x}",
            r.threads, r.wall_s, r.events, r.events_per_sec, speedup, r.fingerprint
        );
    }
    println!(
        "bit-identical across the axis: {} (host has {} core(s))",
        report.bit_identical, report.host_cores
    );

    let mega = if cli.no_mega {
        None
    } else {
        let cfg = if cli.smoke {
            MegaConfig::smoke()
        } else {
            MegaConfig::standing()
        };
        let threads = cli
            .threads_override
            .unwrap_or_else(|| axis.iter().copied().max().unwrap_or(1));
        let m = run_mega(&cfg, cli.opts.seed, threads);
        println!();
        print_mega(&m);
        Some(m)
    };

    let json = render_scaling_json(&report, mega.as_ref(), &cli.opts);
    let path = PathBuf::from("BENCH_03.json");
    if let Err(e) = fs::write(&path, json) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    if !report.bit_identical {
        eprintln!("error: thread counts disagreed — the runner is not deterministic");
        return ExitCode::FAILURE;
    }
    // the speedup check only means something when the host can actually
    // run two workers at once
    if report.host_cores >= 2 && axis.len() >= 2 {
        let best = report
            .runs
            .iter()
            .skip(1)
            .map(|r| if r.wall_s > 0.0 { base / r.wall_s } else { 0.0 })
            .fold(0.0f64, f64::max);
        if best <= 1.0 {
            eprintln!(
                "error: no speedup over 1 thread on a {}-core host",
                report.host_cores
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // worker role: `availability --multiprocess` re-executes this binary as
    // its worker processes with OML_MP_* set; nothing else may run in them
    if let Some(opts) = oml_runtime::WorkerOptions::from_env() {
        let _ = oml_runtime::run_worker(&opts, &multiproc_worker_types());
        return ExitCode::SUCCESS;
    }
    // cold-restart seed/recover roles (`durability --cold-restart`
    // re-executes this binary with OML_COLD_ROLE set); checked after the
    // worker role because worker grandchildren inherit OML_COLD_ROLE too
    if let Some(code) = oml_experiments::cold::maybe_run_child() {
        return code;
    }
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: repro <table1|fig4|fig8|fig10|fig11|fig12|fig14|fig16|fig16x|availability|durability|check|explore|bench|scaling|mega|...|all> \
                 [--quick|--paper] [--seed N] [--threads N] [--seeds chaos|N,M,...] [--recovery] [--durability] [--negative] \
                 [--budget N] [--replay FILE] [--axis N,M,...] [--no-mega] [--smoke] [--multiprocess] \
                 [--cold-restart] [--fsync always|never|batch:N:MS] [--csv DIR] [--svg DIR] [--plot]"
            );
            return ExitCode::FAILURE;
        }
    };

    let run_one = |name: &str| -> bool {
        match name {
            "table1" => {
                print_table1();
                println!();
            }
            "fig4" => emit(&fig4_cost(), &cli),
            "fig8" => emit(&fig8(&cli.opts), &cli),
            "fig10" => emit(
                &fig8(&cli.opts).derive("fig10", "mean duration of one call", |m| m.call_time),
                &cli,
            ),
            "fig11" => emit(
                &fig8(&cli.opts).derive("fig11", "mean migration time per call", |m| {
                    m.migration_time
                }),
                &cli,
            ),
            "fig12" => emit(&fig12(&cli.opts), &cli),
            "fig14" => emit(&fig14(&cli.opts), &cli),
            "fig16" => emit(&fig16(&cli.opts), &cli),
            "fig16x" => emit(&fig16_exclusive(&cli.opts), &cli),
            "topology" => emit(&topology_ablation(&cli.opts), &cli),
            "egoism" => emit(&egoism(&cli.opts), &cli),
            "break-even" => emit(&break_even_scaling(&cli.opts), &cli),
            "visit" => emit(&visit_ablation(&cli.opts), &cli),
            "location" => emit(&location_ablation(&cli.opts), &cli),
            "faults" => emit(&faults(&cli.opts), &cli),
            "availability" if cli.multiprocess => {
                emit(&availability_multiprocess(&cli.opts), &cli);
                print_fsync_summary("availability-multiprocess", cli.fsync.as_deref());
            }
            "availability" => emit(&availability(&cli.opts), &cli),
            "durability" => {
                emit(&durability(&cli.opts), &cli);
                print_fsync_summary("durability", cli.fsync.as_deref());
            }
            _ => return false,
        }
        true
    };

    match cli.experiment.as_str() {
        "durability" if cli.cold_restart => {
            oml_experiments::cold::run_cold_restart(cli.fsync.as_deref())
        }
        "check" if cli.negative => run_check_negative(CHAOS_SEEDS[0]),
        "check" => run_check(cli.seeds.as_deref(), cli.recovery, cli.durability_check),
        "explore" => run_explore(&cli),
        "bench" => {
            // The bench suite is the tracked baseline: quick precision and
            // one thread unless overridden explicitly, so numbers stay
            // comparable across commits. The JSON records whatever precision
            // and thread count actually ran.
            let opts = RunOptions {
                seed: cli.opts.seed,
                threads: cli.threads_override.unwrap_or(1),
                ..RunOptions::quick()
            };
            let report = run_bench_suite(&opts);
            for e in &report.experiments {
                println!(
                    "{:<8} {:>8.3} s  {:>10} events  {:>12.0} events/s",
                    e.name, e.wall_s, e.events, e.events_per_sec
                );
            }
            let json = render_bench_json(&report, &opts);
            let path = PathBuf::from("BENCH_02.json");
            match fs::write(&path, json) {
                Ok(()) => {
                    println!("wrote {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot write {}: {e}", path.display());
                    ExitCode::FAILURE
                }
            }
        }
        "scaling" => run_scaling(&cli),
        "mega" => {
            let cfg = if cli.smoke {
                MegaConfig::smoke()
            } else {
                MegaConfig::standing()
            };
            let report = run_mega(&cfg, cli.opts.seed, cli.opts.threads);
            print_mega(&report);
            ExitCode::SUCCESS
        }
        "custom" => {
            let Some(path) = &cli.scenario else {
                eprintln!("error: `custom` needs --scenario FILE");
                return ExitCode::FAILURE;
            };
            let text = match fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            let config = match ScenarioConfig::from_config_text(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            use oml_core::attach::AttachmentMode;
            use oml_core::policy::PolicyKind;
            use oml_sim::metrics::MetricsRow;
            use std::collections::BTreeMap;
            let mut series = BTreeMap::new();
            for kind in PolicyKind::ALL {
                let out = run_scenario(
                    &config,
                    kind,
                    AttachmentMode::Unrestricted,
                    cli.opts.stopping,
                    cli.opts.seed,
                );
                series.insert(kind.to_string(), MetricsRow::from(&out.metrics));
            }
            let result = ExperimentResult {
                id: "custom".into(),
                title: format!("custom scenario `{}`", config.name),
                x_label: "clients".into(),
                y_label: "mean communication time per call".into(),
                points: vec![oml_experiments::SweepPoint {
                    x: f64::from(config.clients),
                    series,
                }],
            };
            emit(&result, &cli);
            ExitCode::SUCCESS
        }
        path if path.ends_with(".csv") => {
            // replot a previously saved result without re-running
            let id = PathBuf::from(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "reloaded".into());
            match fs::read_to_string(path) {
                Ok(csv) => match ExperimentResult::from_csv(&id, &csv) {
                    Ok(result) => {
                        emit(&result, &cli);
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                },
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "all" => {
            for name in [
                "table1",
                "fig4",
                "fig8",
                "fig12",
                "fig14",
                "fig16",
                "fig16x",
                "topology",
                "egoism",
                "break-even",
                "visit",
                "location",
                "faults",
                "availability",
                "durability",
            ] {
                let ok = run_one(name);
                debug_assert!(ok);
            }
            ExitCode::SUCCESS
        }
        name => {
            if run_one(name) {
                ExitCode::SUCCESS
            } else {
                eprintln!("unknown experiment: {name}");
                ExitCode::FAILURE
            }
        }
    }
}
