//! `repro durability --cold-restart` — SIGKILL-everything, restart from
//! disk, and measure what the write-ahead checkpoint store gives back.
//!
//! The orchestration runs three OS processes deep:
//!
//! 1. The **parent** (this module's [`run_cold_restart`]) loops over fsync
//!    policies. For each it re-executes the `repro` binary as a **seed**
//!    child (`OML_COLD_ROLE=seed`), which spawns a durable-store
//!    [`MultiProcCluster`], creates and mutates a handful of counters,
//!    writes a `phase1` manifest (expected values, worker pids, the
//!    durably-acked WAL records from its trace) and parks.
//! 2. The parent SIGKILLs the seed coordinator *and* its orphaned worker
//!    processes — the whole tree dies with no warning and no flush.
//! 3. A **recover** child (`OML_COLD_ROLE=recover`) cold-starts a new
//!    coordinator from the store directory alone, re-reads every object,
//!    and writes a `phase2` manifest (recovered values and versions,
//!    recovery latency, torn/corrupt flags).
//!
//! The parent then replays the durability claim through `oml-check`: the
//! phase1 acked records become [`EventKind::WalAppended`] events, phase2
//! becomes [`EventKind::ColdRecovered`], and `check_trace` enforces that
//! every record acked durable survived. A **torn-write negative control**
//! (the live WAL truncated mid-record after the kill, under
//! `fsync=always`) must be *flagged* by the checker — if it comes back
//! clean the invariant is not biting and the run exits nonzero.
//!
//! Everything deterministic (values, versions, flags, violation counts) is
//! folded into a printed fingerprint; wall-clock latency is reported but
//! excluded, so same-seed reruns are bit-identical.

use oml_check::event::{EventKind, TraceEvent, CLIENT_PROCESS};
use oml_core::ids::ObjectId;
use oml_runtime::transport::netio::TransportAddr;
use oml_runtime::transport::socket::SocketConfig;
use oml_runtime::wire::{WireReader, WireWriter};
use oml_runtime::{MultiProcCluster, MultiProcConfig};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

const WORKERS: u32 = 3;
const OBJECTS: u32 = 4;
const TRIALS: u32 = 3;
const READY_TIMEOUT: Duration = Duration::from_secs(15);
const PHASE_TIMEOUT: Duration = Duration::from_mins(1);

/// The multiproc configuration shared by the seed and recover children
/// (only the socket path and the store dir vary).
fn child_cfg(dir: &Path, sock: &str) -> MultiProcConfig {
    let mut socket = SocketConfig::default();
    socket.backoff.base_ms = 5;
    socket.backoff.cap_ms = 100;
    MultiProcConfig {
        workers: WORKERS,
        addr: TransportAddr::Unix(dir.join(sock)),
        call_timeout_ms: 500,
        heartbeat_ms: 25,
        suspect_after: 4,
        dead_after: 12,
        socket,
        worker_program: std::env::current_exe().expect("own executable path"),
        worker_args: Vec::new(),
        monitor: true,
        store_dir: Some(dir.join("store")),
        fsync: crate::experiments::fsync_from_env(),
    }
}

fn counter_value(bytes: &[u8]) -> u64 {
    WireReader::new(bytes).u64().expect("counter payload")
}

/// Writes `content` to `path` atomically (tmp + rename), so the parent's
/// poll never observes a half-written phase manifest.
fn write_phase(path: &Path, content: &str) {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, content).expect("write phase tmp");
    fs::rename(&tmp, path).expect("rename phase file");
}

/// Parses a `key=value`-per-line phase manifest.
fn parse_phase(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
        .collect()
}

fn phase_all<'a>(kv: &'a [(String, String)], prefix: &str) -> Vec<&'a str> {
    kv.iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|(_, v)| v.as_str())
        .collect()
}

fn phase_get<'a>(kv: &'a [(String, String)], key: &str) -> Option<&'a str> {
    kv.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

// ---------------------------------------------------------------------------
// child roles

/// Dispatches the `OML_COLD_ROLE` child roles; `None` means this process
/// is not a cold-restart child and should continue as the normal CLI.
/// Must be checked *after* `WorkerOptions::from_env()` — the worker
/// grandchildren inherit `OML_COLD_ROLE` but carry `OML_MP_*` too.
#[must_use]
pub fn maybe_run_child() -> Option<ExitCode> {
    let role = std::env::var("OML_COLD_ROLE").ok()?;
    let dir = PathBuf::from(std::env::var("OML_COLD_DIR").expect("OML_COLD_DIR set with role"));
    match role.as_str() {
        "seed" => Some(run_seed(&dir)),
        "recover" => Some(run_recover(&dir)),
        other => {
            eprintln!("unknown OML_COLD_ROLE `{other}`");
            Some(ExitCode::FAILURE)
        }
    }
}

/// Seed role: populate the durable store, publish `phase1`, then park
/// until the parent SIGKILLs this whole process tree.
fn run_seed(dir: &Path) -> ExitCode {
    let cfg = child_cfg(dir, "seed.sock");
    let fsync = cfg.fsync;
    let cluster = MultiProcCluster::spawn(cfg).expect("seed: spawn cluster");
    assert!(
        cluster.wait_ready(READY_TIMEOUT),
        "seed: workers never heartbeat"
    );
    for i in 0..OBJECTS {
        cluster
            .create(
                i % WORKERS,
                i,
                "avail-counter",
                WireWriter::new().u64(0).finish().to_vec(),
            )
            .expect("seed: create");
        let out = cluster
            .invoke(i, "add", &WireWriter::new().u64(u64::from(i) + 1).finish())
            .expect("seed: add");
        assert_eq!(counter_value(&out), u64::from(i) + 1);
    }

    let mut manifest = String::new();
    let _ = writeln!(manifest, "policy={fsync}");
    let _ = writeln!(manifest, "objects={OBJECTS}");
    for pid in cluster.worker_pids() {
        let _ = writeln!(manifest, "pid={pid}");
    }
    for i in 0..OBJECTS {
        let _ = writeln!(manifest, "expect.{i}={}", u64::from(i) + 1);
    }
    for (i, ev) in cluster.take_trace().iter().enumerate() {
        if let EventKind::WalAppended {
            object,
            object_epoch,
            seq,
            durable,
            ..
        } = &ev.kind
        {
            let _ = writeln!(
                manifest,
                "acked.{i}={},{object_epoch},{seq},{}",
                object.as_u32(),
                u8::from(*durable)
            );
        }
    }
    write_phase(&dir.join("phase1"), &manifest);

    // park: the parent ends this process with SIGKILL, never gracefully
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}

/// Recover role: cold-start from the store directory, read every object
/// back, publish `phase2`, and exit cleanly.
fn run_recover(dir: &Path) -> ExitCode {
    let started = Instant::now();
    let cluster = match MultiProcCluster::recover(child_cfg(dir, "recover.sock"), READY_TIMEOUT) {
        Ok(c) => c,
        Err(e) => {
            write_phase(&dir.join("phase2"), &format!("error={e}\n"));
            return ExitCode::FAILURE;
        }
    };
    let mut manifest = String::new();
    for object in cluster.objects() {
        let out = cluster
            .invoke(object, "get", &[])
            .expect("recover: read back");
        let _ = writeln!(manifest, "got.{object}={}", counter_value(&out));
    }
    let recovery_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = cluster.wal_stats();
    for (i, ev) in cluster.take_trace().iter().enumerate() {
        if let EventKind::ColdRecovered {
            recovered,
            torn,
            corrupt,
            ..
        } = &ev.kind
        {
            let _ = writeln!(manifest, "torn={}", u8::from(*torn));
            let _ = writeln!(manifest, "corrupt={}", u8::from(*corrupt));
            for (j, (object, epoch, seq)) in recovered.iter().enumerate() {
                let _ = writeln!(
                    manifest,
                    "recovered.{i}.{j}={},{epoch},{seq}",
                    object.as_u32()
                );
            }
        }
    }
    let _ = writeln!(manifest, "recovery_ms={recovery_ms:.3}");
    let _ = writeln!(manifest, "wal_records={}", stats.wal_records);
    cluster.shutdown();
    write_phase(&dir.join("phase2"), &manifest);
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// parent orchestration

/// One seed → kill → recover trial's measurements.
struct Round {
    policy: String,
    trial: u32,
    torn_control: bool,
    objects: u32,
    recovered: u32,
    recovery_ms: f64,
    wal_records: u64,
    violations: usize,
}

fn spawn_child(dir: &Path, role: &str, policy: &str) -> std::process::Child {
    Command::new(std::env::current_exe().expect("own executable path"))
        .arg("cold-child")
        .env("OML_COLD_ROLE", role)
        .env("OML_COLD_DIR", dir)
        .env("OML_FSYNC", policy)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn cold-restart child")
}

/// Polls for a phase manifest, failing the run (rather than hanging) if
/// the child never produces it.
fn await_phase(
    path: &Path,
    child: &mut std::process::Child,
) -> Result<Vec<(String, String)>, String> {
    let deadline = Instant::now() + PHASE_TIMEOUT;
    loop {
        if let Ok(text) = fs::read_to_string(path) {
            return Ok(parse_phase(&text));
        }
        if let Ok(Some(status)) = child.try_wait() {
            if !path.exists() {
                return Err(format!(
                    "cold-restart child exited ({status}) without writing {}",
                    path.display()
                ));
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("timed out waiting for {}", path.display()));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// SIGKILLs the seed coordinator and the worker processes it orphans —
/// the coordinator's `Child` handle dies with it, so the workers must be
/// killed by pid from out here.
fn kill_tree(child: &mut std::process::Child, worker_pids: &[&str]) {
    let _ = child.kill();
    let _ = child.wait();
    for pid in worker_pids {
        if pid.parse::<u32>().is_ok() {
            let _ = Command::new("kill").args(["-9", pid]).status();
        }
    }
}

/// Truncates the live (highest-generation) WAL one byte short: a torn
/// final record, which recovery must drop — losing a durably-acked
/// checkpoint the checker is then required to flag.
fn tear_wal_tail(store_dir: &Path) -> Result<(), String> {
    let coord = store_dir.join("coord");
    let mut wals: Vec<PathBuf> = fs::read_dir(&coord)
        .map_err(|e| format!("list {}: {e}", coord.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
                && p.extension()
                    .is_some_and(|ext| ext.eq_ignore_ascii_case("log"))
        })
        .collect();
    wals.sort();
    let wal = wals.pop().ok_or("no WAL file to tear")?;
    let len = fs::metadata(&wal).map_err(|e| e.to_string())?.len();
    if len == 0 {
        return Err("WAL is empty; nothing to tear".into());
    }
    let data = fs::read(&wal).map_err(|e| e.to_string())?;
    fs::write(&wal, &data[..data.len() - 1]).map_err(|e| e.to_string())?;
    Ok(())
}

/// Replays one phase1/phase2 pair through the checker: acked appends in,
/// cold recovery out, every durable ack must have survived.
fn check_round(
    phase1: &[(String, String)],
    phase2: &[(String, String)],
) -> Vec<oml_check::Violation> {
    let mut trace = Vec::new();
    for acked in phase_all(phase1, "acked.") {
        let parts: Vec<&str> = acked.split(',').collect();
        if let [object, epoch, seq, durable] = parts[..] {
            trace.push(TraceEvent::new(
                CLIENT_PROCESS,
                EventKind::WalAppended {
                    node: CLIENT_PROCESS,
                    object: ObjectId::new(object.parse().unwrap_or(0)),
                    object_epoch: epoch.parse().unwrap_or(0),
                    seq: seq.parse().unwrap_or(0),
                    durable: durable == "1",
                },
            ));
        }
    }
    let recovered: Vec<(ObjectId, u64, u64)> = phase_all(phase2, "recovered.")
        .iter()
        .filter_map(|v| {
            let parts: Vec<&str> = v.split(',').collect();
            match parts[..] {
                [object, epoch, seq] => Some((
                    ObjectId::new(object.parse().ok()?),
                    epoch.parse().ok()?,
                    seq.parse().ok()?,
                )),
                _ => None,
            }
        })
        .collect();
    trace.push(TraceEvent::new(
        CLIENT_PROCESS,
        EventKind::ColdRecovered {
            node: CLIENT_PROCESS,
            recovered,
            torn: phase_get(phase2, "torn") == Some("1"),
            corrupt: phase_get(phase2, "corrupt") == Some("1"),
        },
    ));
    oml_check::check_trace(&trace).violations
}

/// Runs one seed → SIGKILL-all → (optional torn write) → recover round.
fn run_round(policy: &str, torn_control: bool, trial: u32) -> Result<Round, String> {
    let label = policy.replace(':', "_");
    let dir = std::env::temp_dir().join(format!(
        "oml-cold-{}-{label}-{trial}{}",
        std::process::id(),
        if torn_control { "-torn" } else { "" }
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    let mut seed = spawn_child(&dir, "seed", policy);
    let phase1 = await_phase(&dir.join("phase1"), &mut seed)?;
    kill_tree(&mut seed, &phase_all(&phase1, "pid"));
    if torn_control {
        tear_wal_tail(&dir.join("store"))?;
    }

    let mut recover = spawn_child(&dir, "recover", policy);
    let phase2 = await_phase(&dir.join("phase2"), &mut recover)?;
    let _ = recover.wait();
    if let Some(err) = phase_get(&phase2, "error") {
        return Err(format!("recover child failed: {err}"));
    }

    let objects: u32 = phase_get(&phase1, "objects")
        .and_then(|v| v.parse().ok())
        .ok_or("phase1 missing object count")?;
    let mut recovered = 0u32;
    for i in 0..objects {
        let expect = phase_get(&phase1, &format!("expect.{i}"));
        let got = phase_get(&phase2, &format!("got.{i}"));
        if expect.is_some() && expect == got {
            recovered += 1;
        }
    }
    let violations = check_round(&phase1, &phase2);
    for v in &violations {
        let tag = if torn_control { "(expected) " } else { "" };
        println!("  {tag}checker: {v}");
    }
    let round = Round {
        policy: policy.to_owned(),
        trial,
        torn_control,
        objects,
        recovered,
        recovery_ms: phase_get(&phase2, "recovery_ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(f64::NAN),
        wal_records: phase_get(&phase2, "wal_records")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        violations: violations.len(),
    };
    let _ = fs::remove_dir_all(&dir);
    Ok(round)
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn render_json(rounds: &[Round], fingerprint: u64) -> String {
    let mut out =
        String::from("{\n  \"experiment\": \"durability-cold-restart\",\n  \"rounds\": [\n");
    for (i, r) in rounds.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"fsync\": \"{}\", \"trial\": {}, \"torn_control\": {}, \"objects\": {}, \
             \"recovered_fraction\": {:.4}, \"recovery_ms\": {:.3}, \
             \"wal_records\": {}, \"violations\": {}}}",
            r.policy,
            r.trial,
            r.torn_control,
            r.objects,
            f64::from(r.recovered) / f64::from(r.objects.max(1)),
            r.recovery_ms,
            r.wal_records,
            r.violations
        );
        out.push_str(if i + 1 < rounds.len() { ",\n" } else { "\n" });
    }
    let _ = write!(out, "  ],\n  \"fingerprint\": \"{fingerprint:016x}\"\n}}\n");
    out
}

/// The parent orchestration behind `repro durability --cold-restart`.
/// Returns nonzero if recovery under `fsync=always` is not 100 %, if any
/// non-control round trips the checker, or if the torn-write negative
/// control does *not* trip it.
#[must_use]
pub fn run_cold_restart(pinned: Option<&str>) -> ExitCode {
    let policies: Vec<String> = match pinned {
        Some(p) => vec![p.to_owned()],
        None => vec!["always".into(), "batch:8:50".into(), "never".into()],
    };
    println!(
        "# repro durability --cold-restart — SIGKILL every process, restart from disk \
         ({WORKERS} workers, {OBJECTS} objects, {TRIALS} trials per policy)"
    );

    let mut rounds = Vec::new();
    let mut failed = false;
    for policy in &policies {
        println!("\nfsync={policy}:");
        for trial in 0..TRIALS {
            match run_round(policy, false, trial) {
                Ok(r) => rounds.push(r),
                Err(e) => {
                    eprintln!("  trial {trial} failed: {e}");
                    failed = true;
                }
            }
        }
    }
    // the negative control rides on the strictest policy: a torn WAL tail
    // must surface as a flagged durability violation, never silently
    println!("\nfsync=always + torn WAL tail (negative control):");
    match run_round("always", true, 0) {
        Ok(r) => rounds.push(r),
        Err(e) => {
            eprintln!("  control failed to run: {e}");
            failed = true;
        }
    }

    // per-policy aggregate: the worst trial's fraction, the slowest
    // trial's latency as p95 (TRIALS samples — the tail IS the max)
    println!(
        "\n{:>14} {:>8} {:>8} {:>10} {:>12} {:>11} {:>11}",
        "fsync", "torn", "trials", "objects", "fraction", "recov p95", "wal recs"
    );
    let mut keys: Vec<(String, bool)> = Vec::new();
    for r in &rounds {
        let key = (r.policy.clone(), r.torn_control);
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    for (policy, torn) in &keys {
        let group: Vec<&Round> = rounds
            .iter()
            .filter(|r| &r.policy == policy && r.torn_control == *torn)
            .collect();
        let objects = group.first().map_or(0, |r| r.objects);
        let fraction = group
            .iter()
            .map(|r| f64::from(r.recovered) / f64::from(r.objects.max(1)))
            .fold(f64::INFINITY, f64::min);
        let p95 = group.iter().map(|r| r.recovery_ms).fold(0.0f64, f64::max);
        let wal_records = group.iter().map(|r| r.wal_records).max().unwrap_or(0);
        println!(
            "{:>14} {:>8} {:>8} {:>10} {:>12.3} {:>9.1}ms {:>11}",
            policy,
            if *torn { "yes" } else { "no" },
            group.len(),
            objects,
            fraction,
            p95,
            wal_records
        );
    }

    for r in &rounds {
        if r.torn_control {
            if r.violations == 0 {
                eprintln!(
                    "error: torn-write negative control came back CLEAN — the \
                     durable-checkpoint invariant is not biting"
                );
                failed = true;
            }
        } else {
            if r.violations > 0 {
                eprintln!("error: fsync={} round tripped the checker", r.policy);
                failed = true;
            }
            if r.policy == "always" && r.recovered != r.objects {
                eprintln!(
                    "error: fsync=always recovered {}/{} — an acked-durable \
                     checkpoint did not survive the cold restart",
                    r.recovered, r.objects
                );
                failed = true;
            }
        }
    }

    // deterministic fields only: latency is reported above but excluded
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    for r in &rounds {
        fnv1a(&mut fingerprint, r.policy.as_bytes());
        fnv1a(&mut fingerprint, &[u8::from(r.torn_control)]);
        fnv1a(&mut fingerprint, &r.objects.to_le_bytes());
        fnv1a(&mut fingerprint, &r.recovered.to_le_bytes());
        fnv1a(&mut fingerprint, &r.wal_records.to_le_bytes());
        fnv1a(&mut fingerprint, &(r.violations as u64).to_le_bytes());
    }
    println!("\nfingerprint {fingerprint:016x} (deterministic fields only)");

    let json = render_json(&rounds, fingerprint);
    let out = PathBuf::from("results");
    let path = out.join("cold_restart.json");
    if fs::create_dir_all(&out).is_ok() && fs::write(&path, &json).is_ok() {
        println!("wrote {}", path.display());
    } else {
        eprintln!("cannot write {}", path.display());
    }

    if failed {
        eprintln!("\ncold-restart durability gate FAILED");
        ExitCode::FAILURE
    } else {
        println!(
            "\ncold-restart durability gate passed: fsync=always recovered 100% \
             after SIGKILL-all; torn-write control flagged"
        );
        ExitCode::SUCCESS
    }
}
