//! Experiment results and their renderings.

use oml_sim::metrics::MetricsRow;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// All series' measurements at one x-axis value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The x-axis value (mean gap `t_m`, or number of clients `C`).
    pub x: f64,
    /// Measurements per series label.
    pub series: BTreeMap<String, MetricsRow>,
}

/// One regenerated figure or table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Short id ("fig8", "fig12", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x-axis.
    pub x_label: String,
    /// Label of the headline y value.
    pub y_label: String,
    /// Sweep points in x order.
    pub points: Vec<SweepPoint>,
}

impl ExperimentResult {
    /// Series labels, in first-seen order across points.
    #[must_use]
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::new();
        for p in &self.points {
            for l in p.series.keys() {
                if !labels.iter().any(|x| x == l) {
                    labels.push(l.clone());
                }
            }
        }
        labels
    }

    /// The `(x, comm_time)` polyline of one series.
    #[must_use]
    pub fn series(&self, label: &str) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| p.series.get(label).map(|m| (p.x, m.comm_time)))
            .collect()
    }

    /// Extracts a column other than the headline metric, e.g. the Fig. 10/11
    /// decompositions.
    #[must_use]
    pub fn series_by<F: Fn(&MetricsRow) -> f64>(&self, label: &str, f: F) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| p.series.get(label).map(|m| (p.x, f(m))))
            .collect()
    }

    /// Derives a new result whose headline metric is `f(row)` — the Fig. 10
    /// (`call_time`) and Fig. 11 (`migration_time`) views of a Fig. 8 run.
    ///
    /// Confidence intervals are dropped: they were computed for the original
    /// headline metric.
    #[must_use]
    pub fn derive<F: Fn(&MetricsRow) -> f64>(
        &self,
        id: &str,
        y_label: &str,
        f: F,
    ) -> ExperimentResult {
        let points = self
            .points
            .iter()
            .map(|p| SweepPoint {
                x: p.x,
                series: p
                    .series
                    .iter()
                    .map(|(l, m)| {
                        let mut row = m.clone();
                        row.comm_time = f(m);
                        row.ci_half_width = None;
                        (l.clone(), row)
                    })
                    .collect(),
            })
            .collect();
        ExperimentResult {
            id: id.to_owned(),
            title: self.title.clone(),
            x_label: self.x_label.clone(),
            y_label: y_label.to_owned(),
            points,
        }
    }

    /// Linearly interpolated x at which series `a` first crosses above
    /// series `b` (the paper's break-even points in Fig. 12).
    #[must_use]
    pub fn crossover(&self, a: &str, b: &str) -> Option<f64> {
        let sa = self.series(a);
        let sb = self.series(b);
        let mut prev: Option<(f64, f64, f64)> = None;
        for ((x, ya), (x2, yb)) in sa.into_iter().zip(sb) {
            debug_assert_eq!(x, x2);
            if let Some((px, pya, pyb)) = prev {
                let was_below = pya <= pyb;
                let now_above = ya > yb;
                if was_below && now_above {
                    let d0 = pyb - pya;
                    let d1 = ya - yb;
                    let t = if d0 + d1 > 0.0 { d0 / (d0 + d1) } else { 0.5 };
                    return Some(px + t * (x - px));
                }
            }
            prev = Some((x, ya, yb));
        }
        None
    }

    /// Renders a fixed-width table with one row per x value and one column
    /// per series (headline metric), the way the paper's plots read.
    #[must_use]
    pub fn to_ascii_table(&self) -> String {
        let labels = self.labels();
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# y: {}", self.y_label);
        let _ = write!(out, "{:>12}", self.x_label);
        for l in &labels {
            let _ = write!(out, "  {l:>24}");
        }
        out.push('\n');
        for p in &self.points {
            let _ = write!(out, "{:>12.3}", p.x);
            for l in &labels {
                match p.series.get(l) {
                    Some(m) => {
                        let ci = m
                            .ci_half_width
                            .map_or_else(|| "      ".to_owned(), |h| format!("±{h:>5.3}"));
                        let _ = write!(out, "  {:>17.4} {ci}", m.comm_time);
                    }
                    None => {
                        let _ = write!(out, "  {:>24}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a CSV with full per-series columns (comm/call/migration/
    /// control times, denial rate, closure size).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let labels = self.labels();
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label.replace(' ', "_"));
        for l in &labels {
            for col in [
                "comm_time",
                "call_time",
                "migration_time",
                "control_time",
                "ci_half_width",
                "calls",
                "denial_rate",
                "mean_closure",
                "call_p95",
            ] {
                let _ = write!(out, ",{}:{}", l.replace(' ', "_"), col);
            }
        }
        out.push('\n');
        for p in &self.points {
            let _ = write!(out, "{}", p.x);
            for l in &labels {
                if let Some(m) = p.series.get(l) {
                    let _ = write!(
                        out,
                        ",{},{},{},{},{},{},{},{},{}",
                        m.comm_time,
                        m.call_time,
                        m.migration_time,
                        m.control_time,
                        m.ci_half_width.unwrap_or(f64::NAN),
                        m.calls,
                        m.denial_rate,
                        m.mean_closure,
                        m.call_p95
                    );
                } else {
                    let _ = write!(out, ",,,,,,,,,");
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A CSV that could not be parsed back into an [`ExperimentResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError(String);

impl std::fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid experiment csv: {}", self.0)
    }
}

impl std::error::Error for ParseCsvError {}

impl ExperimentResult {
    /// Parses a CSV produced by [`ExperimentResult::to_csv`] back into a
    /// result (labels come back with underscores instead of spaces — the
    /// CSV header encoding is lossy in that one respect).
    ///
    /// # Errors
    ///
    /// Returns [`ParseCsvError`] on malformed headers, non-numeric cells or
    /// ragged rows.
    pub fn from_csv(id: &str, csv: &str) -> Result<ExperimentResult, ParseCsvError> {
        let mut lines = csv.lines();
        let header = lines
            .next()
            .ok_or_else(|| ParseCsvError("empty file".into()))?;
        let mut cols = header.split(',');
        let x_label = cols
            .next()
            .ok_or_else(|| ParseCsvError("missing x column".into()))?
            .replace('_', " ");

        // header cells are "<label>:<field>"; collect labels in order
        let mut labels: Vec<String> = Vec::new();
        let mut fields_per_label = 0usize;
        for cell in cols {
            let (label, _field) = cell
                .split_once(':')
                .ok_or_else(|| ParseCsvError(format!("malformed header cell `{cell}`")))?;
            match labels.last() {
                Some(last) if last == label => fields_per_label += 1,
                _ => {
                    labels.push(label.to_owned());
                    fields_per_label = 1;
                }
            }
            let _ = fields_per_label;
        }
        const FIELDS: usize = 9;
        let expected_cells = 1 + labels.len() * FIELDS;

        let mut points = Vec::new();
        for (ln, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != expected_cells {
                return Err(ParseCsvError(format!(
                    "row {} has {} cells, expected {expected_cells}",
                    ln + 2,
                    cells.len()
                )));
            }
            let num = |s: &str| -> Result<f64, ParseCsvError> {
                s.parse()
                    .map_err(|_| ParseCsvError(format!("bad number `{s}` in row {}", ln + 2)))
            };
            let x = num(cells[0])?;
            let mut series = BTreeMap::new();
            for (li, label) in labels.iter().enumerate() {
                let base = 1 + li * FIELDS;
                let ci = num(cells[base + 4])?;
                series.insert(
                    label.clone(),
                    MetricsRow {
                        comm_time: num(cells[base])?,
                        call_time: num(cells[base + 1])?,
                        migration_time: num(cells[base + 2])?,
                        control_time: num(cells[base + 3])?,
                        ci_half_width: (!ci.is_nan()).then_some(ci),
                        calls: num(cells[base + 5])? as u64,
                        denial_rate: num(cells[base + 6])?,
                        mean_closure: num(cells[base + 7])?,
                        transfer_load: 0.0,
                        call_p95: num(cells[base + 8])?,
                    },
                );
            }
            points.push(SweepPoint { x, series });
        }
        Ok(ExperimentResult {
            id: id.to_owned(),
            title: format!("reloaded from csv ({id})"),
            x_label,
            y_label: "mean communication time per call".into(),
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(comm: f64) -> MetricsRow {
        MetricsRow {
            comm_time: comm,
            call_time: comm * 0.6,
            migration_time: comm * 0.3,
            control_time: comm * 0.1,
            ci_half_width: Some(0.01),
            calls: 1000,
            denial_rate: 0.25,
            mean_closure: 1.0,
            transfer_load: 0.0,
            call_p95: 0.0,
        }
    }

    fn sample_result() -> ExperimentResult {
        let mut points = Vec::new();
        for (x, a, b) in [(1.0, 1.0, 2.0), (2.0, 2.0, 2.0), (3.0, 3.0, 2.0)] {
            let mut series = BTreeMap::new();
            series.insert("alpha".to_owned(), row(a));
            series.insert("beta".to_owned(), row(b));
            points.push(SweepPoint { x, series });
        }
        ExperimentResult {
            id: "test".into(),
            title: "test sweep".into(),
            x_label: "clients".into(),
            y_label: "comm time".into(),
            points,
        }
    }

    #[test]
    fn labels_and_series_extraction() {
        let r = sample_result();
        assert_eq!(r.labels(), vec!["alpha".to_owned(), "beta".to_owned()]);
        assert_eq!(r.series("alpha"), vec![(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        let call_times = r.series_by("beta", |m| m.call_time);
        assert_eq!(call_times.len(), 3);
        assert!((call_times[0].1 - 1.2).abs() < 1e-12);
    }

    #[test]
    fn crossover_interpolates() {
        let r = sample_result();
        // alpha crosses beta between x=2 (equal) and x=3 (above): the
        // crossing is interpolated within that segment.
        let x = r.crossover("alpha", "beta").unwrap();
        assert!((2.0..=3.0).contains(&x), "{x}");
        // beta never crosses alpha from below-to-above
        assert_eq!(r.crossover("beta", "alpha"), None);
    }

    #[test]
    fn ascii_table_contains_everything() {
        let t = sample_result().to_ascii_table();
        assert!(t.contains("alpha"));
        assert!(t.contains("beta"));
        assert!(t.contains("clients"));
        assert_eq!(t.lines().count(), 3 + 3); // 2 headers + column row + 3 points
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = sample_result().to_csv();
        let mut lines = c.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("clients"));
        assert!(header.contains("alpha:comm_time"));
        assert_eq!(lines.count(), 3);
    }

    #[test]
    fn csv_round_trips() {
        let original = sample_result();
        let reloaded = ExperimentResult::from_csv("test", &original.to_csv()).unwrap();
        assert_eq!(reloaded.labels(), original.labels());
        assert_eq!(reloaded.points.len(), original.points.len());
        for (a, b) in original.points.iter().zip(&reloaded.points) {
            assert_eq!(a.x, b.x);
            for (label, ra) in &a.series {
                let rb = &b.series[label];
                assert_eq!(ra.comm_time, rb.comm_time);
                assert_eq!(ra.call_time, rb.call_time);
                assert_eq!(ra.ci_half_width, rb.ci_half_width);
                assert_eq!(ra.calls, rb.calls);
            }
        }
        // crossovers survive the round trip
        assert_eq!(
            original.crossover("alpha", "beta").is_some(),
            reloaded.crossover("alpha", "beta").is_some()
        );
    }

    #[test]
    fn csv_parser_reports_errors() {
        assert!(ExperimentResult::from_csv("x", "").is_err());
        assert!(ExperimentResult::from_csv("x", "clients,badheader\n").is_err());
        let ragged = "clients,a:comm_time,a:call_time,a:migration_time,a:control_time,a:ci_half_width,a:calls,a:denial_rate,a:mean_closure,a:call_p95\n1,2\n";
        let err = ExperimentResult::from_csv("x", ragged).unwrap_err();
        assert!(err.to_string().contains("cells"));
        let nonnum = "clients,a:comm_time,a:call_time,a:migration_time,a:control_time,a:ci_half_width,a:calls,a:denial_rate,a:mean_closure,a:call_p95\n1,x,0,0,0,NaN,1,0,1,0\n";
        assert!(ExperimentResult::from_csv("x", nonnum).is_err());
    }
}
