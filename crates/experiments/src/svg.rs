//! SVG rendering of experiment results — publication-style line charts of
//! the regenerated figures, with no external dependencies.

use crate::result::ExperimentResult;
use std::fmt::Write as _;

/// Chart geometry and styling.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Total image width in pixels.
    pub width: u32,
    /// Total image height in pixels.
    pub height: u32,
    /// Margin around the plotting area (holds axes and labels).
    pub margin: u32,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 720,
            height: 480,
            margin: 64,
        }
    }
}

const PALETTE: &[&str] = &[
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#7f7f7f",
];
const DASHES: &[&str] = &["", "6,3", "2,3", "8,3,2,3", "4,2", "1,2", "10,4", "3,6"];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the headline metric of every series as an SVG line chart.
///
/// Series get distinct colours *and* dash patterns (so the chart still reads
/// in grayscale, like the paper's plots). Points are marked with small
/// circles; axes carry min/mid/max ticks.
///
/// # Panics
///
/// Panics if the geometry leaves no plotting area.
#[must_use]
pub fn render_svg(result: &ExperimentResult, opts: &SvgOptions) -> String {
    let m = opts.margin as f64;
    let w = opts.width as f64;
    let h = opts.height as f64;
    assert!(w > 2.0 * m && h > 2.0 * m, "margins leave no plotting area");

    let labels = result.labels();
    let mut all: Vec<(f64, f64)> = Vec::new();
    for l in &labels {
        all.extend(result.series(l));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {} {}" font-family="Helvetica, Arial, sans-serif" font-size="13">"#,
        opts.width, opts.height
    );
    let _ = writeln!(
        out,
        r#"<rect width="{}" height="{}" fill="white"/>"#,
        opts.width, opts.height
    );
    let _ = writeln!(
        out,
        r#"<text x="{}" y="24" text-anchor="middle" font-size="15">{}</text>"#,
        w / 2.0,
        esc(&format!("{} — {}", result.id, result.title))
    );

    if all.is_empty() {
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle">(no data)</text>"#,
            w / 2.0,
            h / 2.0
        );
        out.push_str("</svg>\n");
        return out;
    }

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (y_min, mut y_max) = (0.0_f64, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }
    y_max *= 1.06;

    let px = |x: f64| m + (x - x_min) / (x_max - x_min) * (w - 2.0 * m);
    let py = |y: f64| h - m - (y - y_min) / (y_max - y_min) * (h - 2.0 * m);

    // axes
    let _ = writeln!(
        out,
        r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        m,
        h - m,
        w - m,
        h - m
    );
    let _ = writeln!(
        out,
        r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        m,
        m,
        m,
        h - m
    );
    // ticks: min/mid/max on both axes
    for t in [0.0_f64, 0.5, 1.0] {
        let xv = x_min + t * (x_max - x_min);
        let yv = y_min + t * (y_max - y_min);
        let _ = writeln!(
            out,
            r#"<line x1="{0}" y1="{1}" x2="{0}" y2="{2}" stroke="black"/><text x="{0}" y="{3}" text-anchor="middle">{4:.4}</text>"#,
            px(xv),
            h - m,
            h - m + 5.0,
            h - m + 20.0,
            xv
        );
        let _ = writeln!(
            out,
            r#"<line x1="{0}" y1="{1}" x2="{2}" y2="{1}" stroke="black"/><text x="{3}" y="{4}" text-anchor="end">{5:.4}</text>"#,
            m - 5.0,
            py(yv),
            m,
            m - 8.0,
            py(yv) + 4.0,
            yv
        );
    }
    // axis labels
    let _ = writeln!(
        out,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        w / 2.0,
        h - 12.0,
        esc(&result.x_label)
    );
    let _ = writeln!(
        out,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        h / 2.0,
        h / 2.0,
        esc(&result.y_label)
    );

    // series
    for (si, label) in labels.iter().enumerate() {
        let colour = PALETTE[si % PALETTE.len()];
        let dash = DASHES[si % DASHES.len()];
        let pts = result.series(label);
        let path: Vec<String> = pts
            .iter()
            .map(|&(x, y)| format!("{:.2},{:.2}", px(x), py(y)))
            .collect();
        let dash_attr = if dash.is_empty() {
            String::new()
        } else {
            format!(r#" stroke-dasharray="{dash}""#)
        };
        let _ = writeln!(
            out,
            r#"<polyline fill="none" stroke="{colour}" stroke-width="2"{dash_attr} points="{}"/>"#,
            path.join(" ")
        );
        for &(x, y) in &pts {
            let _ = writeln!(
                out,
                r#"<circle cx="{:.2}" cy="{:.2}" r="3" fill="{colour}"/>"#,
                px(x),
                py(y)
            );
        }
        // legend entry
        let ly = m + 18.0 * si as f64;
        let _ = writeln!(
            out,
            r#"<line x1="{0}" y1="{1}" x2="{2}" y2="{1}" stroke="{colour}" stroke-width="2"{dash_attr}/><text x="{3}" y="{4}">{5}</text>"#,
            m + 12.0,
            ly,
            m + 44.0,
            m + 50.0,
            ly + 4.0,
            esc(label)
        );
    }

    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SweepPoint;
    use oml_sim::metrics::MetricsRow;
    use std::collections::BTreeMap;

    fn row(v: f64) -> MetricsRow {
        MetricsRow {
            comm_time: v,
            call_time: 0.0,
            migration_time: 0.0,
            control_time: 0.0,
            ci_half_width: None,
            calls: 1,
            denial_rate: 0.0,
            mean_closure: 1.0,
            transfer_load: 0.0,
            call_p95: 0.0,
        }
    }

    fn sample() -> ExperimentResult {
        let mut points = Vec::new();
        for x in 0..5 {
            let mut series = BTreeMap::new();
            series.insert("a & b".to_owned(), row(x as f64));
            series.insert("flat".to_owned(), row(2.0));
            points.push(SweepPoint {
                x: x as f64,
                series,
            });
        }
        ExperimentResult {
            id: "svg-test".into(),
            title: "shapes <ok>".into(),
            x_label: "clients".into(),
            y_label: "time".into(),
            points,
        }
    }

    #[test]
    fn produces_wellformed_svg_with_all_series() {
        let svg = render_svg(&sample(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        // 2 series × 5 points of markers, plus no stray circles
        assert_eq!(svg.matches("<circle").count(), 10);
        assert!(svg.contains("clients"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let svg = render_svg(&sample(), &SvgOptions::default());
        assert!(svg.contains("a &amp; b"));
        assert!(svg.contains("shapes &lt;ok&gt;"));
        assert!(!svg.contains("shapes <ok>"));
    }

    #[test]
    fn empty_result_renders_placeholder() {
        let empty = ExperimentResult {
            id: "empty".into(),
            title: String::new(),
            x_label: "x".into(),
            y_label: "y".into(),
            points: Vec::new(),
        };
        let svg = render_svg(&empty, &SvgOptions::default());
        assert!(svg.contains("no data"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    #[should_panic(expected = "no plotting area")]
    fn degenerate_geometry_rejected() {
        let opts = SvgOptions {
            width: 100,
            height: 100,
            margin: 64,
        };
        let _ = render_svg(&sample(), &opts);
    }
}
