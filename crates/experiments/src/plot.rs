//! A terminal (character-cell) plot renderer for experiment results.
//!
//! Good enough to eyeball the *shape* of a reproduced figure — monotonicity,
//! crossovers, orderings — directly in the terminal, the way the paper's
//! plots are read.

use crate::result::ExperimentResult;
use std::fmt::Write as _;

const MARKERS: &[char] = &['*', '+', 'x', 'o', '#', '%', '@', '&'];

/// Renders the headline metric of every series as a character plot.
///
/// `width`/`height` size the plotting area (axes and legend come on top).
/// Series are assigned markers in label order; overlapping points keep the
/// first series' marker.
///
/// # Panics
///
/// Panics if `width` or `height` is smaller than 8 cells.
#[must_use]
pub fn render_plot(result: &ExperimentResult, width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 8, "plot area too small");

    let labels = result.labels();
    let mut all: Vec<(f64, f64)> = Vec::new();
    for l in &labels {
        all.extend(result.series(l));
    }
    if all.is_empty() {
        return format!("# {} — (no data)\n", result.id);
    }

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (0.0_f64, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }
    // a little headroom so the top curve is not glued to the frame
    y_max *= 1.05;

    let mut grid = vec![vec![' '; width]; height];
    let col = |x: f64| -> usize {
        (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize
    };
    let row = |y: f64| -> usize {
        let r = ((y - y_min) / (y_max - y_min)) * (height - 1) as f64;
        height - 1 - r.round() as usize
    };

    for (si, l) in labels.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for (x, y) in result.series(l) {
            let (c, r) = (col(x), row(y));
            if grid[r][c] == ' ' {
                grid[r][c] = marker;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "# {} — {}", result.id, result.title);
    for (si, l) in labels.iter().enumerate() {
        let _ = writeln!(out, "#   {}  {}", MARKERS[si % MARKERS.len()], l);
    }
    let _ = writeln!(out, "{y_max:>9.2} ┬{}", "─".repeat(width));
    for (i, line) in grid.iter().enumerate() {
        let label = if i == height / 2 {
            format!("{:>9.9}", result.y_label)
        } else {
            " ".repeat(9)
        };
        let _ = writeln!(out, "{label} │{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "{y_min:>9.2} ┴{}", "─".repeat(width));
    let _ = writeln!(
        out,
        "{:>10}{x_min:<8.1}{:>pad$}{x_max:>8.1}  ({})",
        "",
        "",
        result.x_label,
        pad = width.saturating_sub(16)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::SweepPoint;
    use oml_sim::metrics::MetricsRow;
    use std::collections::BTreeMap;

    fn row(v: f64) -> MetricsRow {
        MetricsRow {
            comm_time: v,
            call_time: 0.0,
            migration_time: 0.0,
            control_time: 0.0,
            ci_half_width: None,
            calls: 1,
            denial_rate: 0.0,
            mean_closure: 1.0,
            transfer_load: 0.0,
            call_p95: 0.0,
        }
    }

    fn sample() -> ExperimentResult {
        let mut points = Vec::new();
        for x in 0..10 {
            let mut series = BTreeMap::new();
            series.insert("rising".to_owned(), row(x as f64));
            series.insert("flat".to_owned(), row(4.0));
            points.push(SweepPoint {
                x: x as f64,
                series,
            });
        }
        ExperimentResult {
            id: "plot-test".into(),
            title: "a test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            points,
        }
    }

    #[test]
    fn renders_markers_and_legend() {
        let s = render_plot(&sample(), 40, 12);
        assert!(s.contains("plot-test"));
        // both series' markers appear (order: flat='*', rising='+')
        assert!(s.contains("*  flat"));
        assert!(s.contains("+  rising"));
        assert!(s.matches('+').count() >= 8, "rising series drawn");
    }

    #[test]
    fn rising_series_rises() {
        let s = render_plot(&sample(), 40, 12);
        // the rising series reaches the top band (the very first row may be
        // headroom) and starts at the bottom row
        let rows: Vec<&str> = s.lines().filter(|l| l.contains('│')).collect();
        assert!(
            rows[0].contains('+') || rows[1].contains('+'),
            "top band must hold the rising series:\n{s}"
        );
        assert!(rows.last().unwrap().contains('+'), "{s}");
    }

    #[test]
    fn empty_result_is_graceful() {
        let empty = ExperimentResult {
            id: "empty".into(),
            title: String::new(),
            x_label: "x".into(),
            y_label: "y".into(),
            points: Vec::new(),
        };
        assert!(render_plot(&empty, 40, 12).contains("no data"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let _ = render_plot(&sample(), 4, 4);
    }
}
