//! Same-seed regression guard for the simulation's numeric output.
//!
//! One small Fig. 16 sweep point (4 clients, seed `0x5eed`, a fixed 6 000
//! sample budget) is run through the public API for three policy × mode
//! combinations, and every `MetricsRow` field is compared against values
//! recorded from the pre-arena seed implementation (commit `966c926`,
//! BTreeMap adjacency + allocating BFS closure + HashMap world state).
//!
//! The dense-arena/incremental-closure rework is required to be a pure
//! representation change: same seed, same event order, same floating-point
//! summation order, same numbers. If a future change breaks any of those
//! invariants — a reordered closure, a stray RNG draw, a resequenced event —
//! this test names the exact metric that moved.
//!
//! Floats are compared to 1e-9 relative tolerance (not bit-exact) so the
//! guard survives cross-platform `libm` differences in `ln`; integer fields
//! are exact.

use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_sim::metrics::MetricsRow;
use oml_workload::{run_scenario, run_scenario_replicated, ScenarioConfig};

/// `(comm_time, call_time, migration_time, control_time, calls, denial_rate,
/// mean_closure, transfer_load, call_p95, events)` recorded from the
/// pre-rework implementation.
struct Golden {
    label: &'static str,
    policy: PolicyKind,
    mode: AttachmentMode,
    comm_time: f64,
    call_time: f64,
    migration_time: f64,
    control_time: f64,
    calls: u64,
    denial_rate: f64,
    mean_closure: f64,
    transfer_load: f64,
    call_p95: f64,
    events: u64,
}

const GOLDENS: [Golden; 3] = [
    Golden {
        label: "migration + unrestricted",
        policy: PolicyKind::ConventionalMigration,
        mode: AttachmentMode::Unrestricted,
        comm_time: 2.632590649757688,
        call_time: 1.7313376632292397,
        migration_time: 0.8146917068306465,
        control_time: 0.08656127969780174,
        calls: 6017,
        denial_rate: 0.0,
        mean_closure: 12.0,
        transfer_load: 9.776300481967757,
        call_p95: 8.773824616700834,
        events: 35212,
    },
    Golden {
        label: "placement + a-transitive",
        policy: PolicyKind::TransientPlacement,
        mode: AttachmentMode::ATransitive,
        comm_time: 1.4753841615520191,
        call_time: 0.7415070233862038,
        migration_time: 0.5975020815986678,
        control_time: 0.13637505656714755,
        calls: 6005,
        denial_rate: 0.12879581151832462,
        mean_closure: 2.702341137123746,
        transfer_load: 1.614654454621149,
        call_p95: 4.085677217615149,
        events: 35345,
    },
    Golden {
        label: "migration + exclusive",
        policy: PolicyKind::ConventionalMigration,
        mode: AttachmentMode::Exclusive,
        comm_time: 2.1561218332037453,
        call_time: 1.2538955076933436,
        migration_time: 0.777,
        control_time: 0.12522632551040197,
        calls: 6000,
        denial_rate: 0.0,
        mean_closure: 2.01029601029601,
        transfer_load: 1.562,
        call_p95: 5.36340540466812,
        events: 35179,
    },
];

fn assert_close(label: &str, field: &str, got: f64, want: f64) {
    let tol = 1e-9 * (1.0 + want.abs());
    assert!(
        (got - want).abs() <= tol,
        "{label}: {field} drifted from the recorded golden value: got {got:?}, want {want:?}"
    );
}

#[test]
fn fig16_point_reproduces_pre_rework_metrics() {
    let rule = StoppingRule {
        relative_precision: 1e-9,
        confidence: 0.99,
        min_batches: u64::MAX,
        max_samples: 6_000,
    };
    for g in &GOLDENS {
        let out = run_scenario(&ScenarioConfig::fig16(4), g.policy, g.mode, rule, 0x5eed);
        let row = MetricsRow::from(&out.metrics);
        assert_eq!(row.calls, g.calls, "{}: calls", g.label);
        assert_eq!(out.events, g.events, "{}: events", g.label);
        assert_close(g.label, "comm_time", row.comm_time, g.comm_time);
        assert_close(g.label, "call_time", row.call_time, g.call_time);
        assert_close(
            g.label,
            "migration_time",
            row.migration_time,
            g.migration_time,
        );
        assert_close(g.label, "control_time", row.control_time, g.control_time);
        assert_close(g.label, "denial_rate", row.denial_rate, g.denial_rate);
        assert_close(g.label, "mean_closure", row.mean_closure, g.mean_closure);
        assert_close(g.label, "transfer_load", row.transfer_load, g.transfer_load);
        assert_close(g.label, "call_p95", row.call_p95, g.call_p95);
    }
}

/// The parallel replication runner must be a pure scheduling change: the
/// thread count picks which worker runs each replication, never what any
/// replication computes or the order results merge in. Every aggregate
/// field — floats included — is compared **bit-exact** between a
/// single-threaded and a multi-threaded run of the same goldens.
#[test]
fn replicated_fig16_point_is_bit_identical_across_thread_counts() {
    let rule = StoppingRule {
        relative_precision: 1e-9,
        confidence: 0.99,
        min_batches: u64::MAX,
        max_samples: 6_000,
    };
    for g in &GOLDENS {
        let config = ScenarioConfig::fig16(4);
        let seq = run_scenario_replicated(&config, g.policy, g.mode, rule, 0x5eed, 1);
        for threads in [2, 4] {
            let par = run_scenario_replicated(&config, g.policy, g.mode, rule, 0x5eed, threads);
            assert_eq!(par.events, seq.events, "{}: events @{threads}", g.label);
            assert_eq!(
                par.replications, seq.replications,
                "{}: replications @{threads}",
                g.label
            );
            assert_eq!(
                par.sample_count(),
                seq.sample_count(),
                "{}: samples @{threads}",
                g.label
            );
            let (a, b) = (par.row(), seq.row());
            for (field, got, want) in [
                ("comm_time", a.comm_time, b.comm_time),
                ("call_time", a.call_time, b.call_time),
                ("migration_time", a.migration_time, b.migration_time),
                ("control_time", a.control_time, b.control_time),
                ("denial_rate", a.denial_rate, b.denial_rate),
                ("transfer_load", a.transfer_load, b.transfer_load),
                ("call_p95", a.call_p95, b.call_p95),
                (
                    "ci_half_width",
                    a.ci_half_width.unwrap_or(-1.0),
                    b.ci_half_width.unwrap_or(-1.0),
                ),
            ] {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{}: {field} not bit-identical at {threads} threads: {got:?} vs {want:?}",
                    g.label
                );
            }
        }
    }
}
