//! End-to-end tests of the `repro` command-line interface.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn table1_prints_the_glossary() {
    let out = repro().arg("table1").output().expect("repro runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"));
    assert!(stdout.contains("Migration duration for servers"));
    assert!(stdout.contains("mean(8)"));
}

#[test]
fn fig4_is_analytic_and_instant() {
    let out = repro()
        .args(["fig4", "--quick"])
        .output()
        .expect("repro runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("placement saves M+C"));
    assert!(stdout.contains("transient placement"));
}

#[test]
fn fig4_plot_flag_draws_a_chart() {
    let out = repro()
        .args(["fig4", "--quick", "--plot"])
        .output()
        .expect("repro runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains('┬'), "plot frame present");
    assert!(stdout.contains("calls N"), "x label present");
}

#[test]
fn fig4_svg_flag_writes_a_file() {
    let dir = std::env::temp_dir().join(format!("oml-cli-test-{}", std::process::id()));
    let out = repro()
        .args(["fig4", "--quick", "--svg", dir.to_str().unwrap()])
        .output()
        .expect("repro runs");
    assert!(out.status.success());
    let svg = std::fs::read_to_string(dir.join("fig4.svg")).expect("svg written");
    assert!(svg.starts_with("<svg"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let out = repro().arg("fig99").output().expect("repro runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment"));
}

#[test]
fn missing_experiment_fails_with_usage() {
    let out = repro().output().expect("repro runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn bad_flag_is_reported() {
    let out = repro()
        .args(["fig4", "--frobnicate"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unexpected argument"));
}

#[test]
fn custom_without_scenario_is_an_error() {
    let out = repro()
        .args(["custom", "--quick"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--scenario"));
}

#[test]
fn replot_of_missing_file_is_an_error() {
    let out = repro()
        .args(["does-not-exist.csv", "--quick"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success());
}

#[test]
fn check_clean_paths_exit_zero() {
    // the exit-code contract: every clean verification path exits zero —
    // for --seeds alone and with --recovery / --durability stacked on
    for args in [
        &["check", "--seeds", "2"][..],
        &["check", "--seeds", "2", "--recovery"][..],
        &["check", "--seeds", "2", "--durability"][..],
    ] {
        let out = repro().args(args).output().expect("repro runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "{args:?} exited {:?}:\n{stdout}\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains("all invariants hold"),
            "{args:?} did not report success:\n{stdout}"
        );
    }
}

#[test]
fn check_negative_path_exits_nonzero() {
    let out = repro()
        .args(["check", "--negative"])
        .output()
        .expect("repro runs");
    assert!(
        !out.status.success(),
        "the negative-control path must exit nonzero (violations are present by construction)"
    );
    // nonzero because the rigged violations were *found*, not because the
    // tooling broke
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.matches("flagged as expected").count(),
        3,
        "expected all three negative controls flagged:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn explore_replay_of_garbage_exits_nonzero() {
    let dir = std::env::temp_dir().join(format!("oml-cli-explore-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.schedule");
    std::fs::write(
        &path,
        "# oml-check counterexample schedule v1\nnot a field\n",
    )
    .unwrap();
    let out = repro()
        .args(["explore", "--replay", path.to_str().unwrap()])
        .output()
        .expect("repro runs");
    assert!(!out.status.success(), "garbage schedule must not verify");
    let _ = std::fs::remove_dir_all(&dir);
}
