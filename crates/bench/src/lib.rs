//! # oml-bench — Criterion benchmarks for the oml workspace
//!
//! One bench target per paper table/figure plus design ablations:
//!
//! | Target | Measures |
//! |---|---|
//! | `fig08_usage_frequency` | one Fig. 8 sweep point per policy |
//! | `fig12_client_scaling` | one Fig. 12 sweep point per policy |
//! | `fig14_dynamic_policies` | one Fig. 14 sweep point per strategy |
//! | `fig16_attachments` | one Fig. 16 sweep point per policy × attachment mode |
//! | `cost_model` | the §3.2 closed forms and attachment-closure queries |
//! | `ablation_topology` | latency sampling and a sim point across topologies |
//! | `engine_throughput` | raw event-queue, RNG and statistics throughput |
//! | `closure_maintenance` | incremental closure queries vs the BFS oracle |
//!
//! The benches time *fixed-size* simulation slices (capped sample budgets),
//! so their numbers are comparable across commits; regenerating the paper's
//! actual curves is the `repro` binary's job.

use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_des::stats::StoppingRule;
use oml_sim::metrics::SimOutcome;
use oml_workload::{run_scenario, ScenarioConfig};

/// A stopping rule sized for benchmarking: fixed sample budget, precision
/// effectively disabled so every run does the same amount of work.
#[must_use]
pub fn bench_rule(samples: u64) -> StoppingRule {
    StoppingRule {
        relative_precision: 1e-9,
        confidence: 0.99,
        min_batches: u64::MAX,
        max_samples: samples,
    }
}

/// Runs one scenario under the bench rule.
#[must_use]
pub fn bench_point(
    config: &ScenarioConfig,
    policy: PolicyKind,
    mode: AttachmentMode,
    samples: u64,
    seed: u64,
) -> SimOutcome {
    run_scenario(config, policy, mode, bench_rule(samples), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_rule_runs_exactly_to_the_cap() {
        let out = bench_point(
            &ScenarioConfig::fig8(10.0),
            PolicyKind::TransientPlacement,
            AttachmentMode::Unrestricted,
            2_000,
            1,
        );
        assert!(out.metrics.samples.sample_count() >= 2_000);
        assert!(!out.converged);
    }
}
