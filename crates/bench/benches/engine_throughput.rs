//! Raw substrate throughput: event queue, engine dispatch, RNG, statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oml_des::stats::BatchMeans;
use oml_des::{Engine, EventHandler, EventQueue, Scheduler, SimRng, SimTime};

struct Relay {
    remaining: u64,
}

impl EventHandler for Relay {
    type Event = ();
    fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_in(1.0, ());
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for n in [10_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_function(BenchmarkId::new("queue_push_pop", n), |b| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.push(SimTime::new((i % 97) as f64), i);
                }
                let mut acc = 0u64;
                while let Some(ev) = q.pop() {
                    acc = acc.wrapping_add(ev.event);
                }
                std::hint::black_box(acc)
            })
        });
        // The simulator's actual queue pattern: a small steady-state pending
        // set with one push per pop, not a bulk fill-then-drain.
        group.bench_function(BenchmarkId::new("queue_churn_30_pending", n), |b| {
            b.iter(|| {
                let mut q = EventQueue::new();
                let mut rng = SimRng::seed_from(5);
                for i in 0..30u64 {
                    q.push(SimTime::new(i as f64), i);
                }
                let mut acc = 0u64;
                for _ in 0..n {
                    let ev = q.pop().expect("queue stays primed");
                    acc = acc.wrapping_add(ev.event);
                    q.push(ev.time + rng.unit(), ev.event);
                }
                std::hint::black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new("engine_relay", n), |b| {
            b.iter(|| {
                let mut e = Engine::new(Relay { remaining: n });
                e.scheduler_mut().schedule_at(SimTime::ZERO, ());
                e.run_to_completion();
                std::hint::black_box(e.events_handled())
            })
        });
    }

    group.bench_function("rng_exp_100k", |b| {
        let mut rng = SimRng::seed_from(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.exp(1.0);
            }
            std::hint::black_box(acc)
        })
    });

    group.bench_function("batch_means_100k", |b| {
        b.iter(|| {
            let mut bm = BatchMeans::new(500);
            for i in 0..100_000u64 {
                bm.push((i % 13) as f64);
            }
            std::hint::black_box(bm.confidence_interval(0.99))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
