//! Fig. 16 (attachment modes): one contended point per policy × mode,
//! including the §3.4 exclusive extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oml_bench::bench_point;
use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_workload::ScenarioConfig;

fn bench(c: &mut Criterion) {
    let config = ScenarioConfig::fig16(8);
    let mut group = c.benchmark_group("fig16_C=8");
    group.sample_size(10);
    let policies = [
        ("migration", PolicyKind::ConventionalMigration),
        ("placement", PolicyKind::TransientPlacement),
    ];
    let modes = [
        ("unrestricted", AttachmentMode::Unrestricted),
        ("a-transitive", AttachmentMode::ATransitive),
        ("exclusive", AttachmentMode::Exclusive),
    ];
    for (plabel, policy) in policies {
        for (mlabel, mode) in modes {
            group.bench_function(BenchmarkId::new(plabel, mlabel), |b| {
                b.iter(|| std::hint::black_box(bench_point(&config, policy, mode, 4_000, 17)))
            });
        }
    }
    // The heaviest sweep point: every client contends on one 12-object
    // component, so each granted move drags the full unrestricted closure.
    let heavy = ScenarioConfig::fig16(12);
    group.bench_function("migration/unrestricted_C=12", |b| {
        b.iter(|| {
            std::hint::black_box(bench_point(
                &heavy,
                PolicyKind::ConventionalMigration,
                AttachmentMode::Unrestricted,
                4_000,
                17,
            ))
        })
    });
    group.bench_function("sedentary", |b| {
        b.iter(|| {
            std::hint::black_box(bench_point(
                &config,
                PolicyKind::Sedentary,
                AttachmentMode::Unrestricted,
                4_000,
                17,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
