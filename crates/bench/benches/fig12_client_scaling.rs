//! Fig. 12 (client scaling): the high-contention point per policy, plus a
//! scaling series for the winning policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oml_bench::bench_point;
use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_workload::ScenarioConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    let config = ScenarioConfig::fig12(12);
    for (label, policy) in [
        ("sedentary", PolicyKind::Sedentary),
        ("migration", PolicyKind::ConventionalMigration),
        ("placement", PolicyKind::TransientPlacement),
    ] {
        group.bench_function(BenchmarkId::new("C=12", label), |b| {
            b.iter(|| {
                std::hint::black_box(bench_point(
                    &config,
                    policy,
                    AttachmentMode::Unrestricted,
                    5_000,
                    11,
                ))
            })
        });
    }
    // how the simulator itself scales with the client count
    for clients in [4u32, 12, 25] {
        let config = ScenarioConfig::fig12(clients);
        group.bench_function(BenchmarkId::new("placement/clients", clients), |b| {
            b.iter(|| {
                std::hint::black_box(bench_point(
                    &config,
                    PolicyKind::TransientPlacement,
                    AttachmentMode::Unrestricted,
                    5_000,
                    11,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
