//! Fig. 14 (dynamic strategies): one contended point per placement variant.

use criterion::{criterion_group, criterion_main, Criterion};
use oml_bench::bench_point;
use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_workload::ScenarioConfig;

fn bench(c: &mut Criterion) {
    let config = ScenarioConfig::fig14(12);
    let mut group = c.benchmark_group("fig14_C=12");
    group.sample_size(10);
    for (label, policy) in [
        ("placement", PolicyKind::TransientPlacement),
        ("compare-nodes", PolicyKind::CompareNodes),
        ("compare-reinstantiate", PolicyKind::CompareAndReinstantiate),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                std::hint::black_box(bench_point(
                    &config,
                    policy,
                    AttachmentMode::Unrestricted,
                    5_000,
                    13,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
