//! Fig. 8 (usage-frequency sweep): one representative point per policy.

use criterion::{criterion_group, criterion_main, Criterion};
use oml_bench::bench_point;
use oml_core::attach::AttachmentMode;
use oml_core::policy::PolicyKind;
use oml_workload::ScenarioConfig;

fn bench(c: &mut Criterion) {
    let config = ScenarioConfig::fig8(30.0);
    let mut group = c.benchmark_group("fig08_t_m=30");
    group.sample_size(10);
    for (label, policy) in [
        ("sedentary", PolicyKind::Sedentary),
        ("migration", PolicyKind::ConventionalMigration),
        ("placement", PolicyKind::TransientPlacement),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                std::hint::black_box(bench_point(
                    &config,
                    policy,
                    AttachmentMode::Unrestricted,
                    5_000,
                    7,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
