//! §4.1 robustness ablation: the same workload point over different network
//! structures — and the raw cost of routing in each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oml_core::ids::NodeId;
use oml_core::policy::PolicyKind;
use oml_des::SimRng;
use oml_net::{LatencyModel, Network, Topology};
use oml_sim::{BlockParams, SimulationBuilder};

fn sim_point(topology: Topology) -> f64 {
    let net = Network::new(topology, LatencyModel::Exponential { mean: 1.0 });
    let mut b = SimulationBuilder::new(net)
        .policy(PolicyKind::TransientPlacement)
        .stopping(oml_bench::bench_rule(4_000))
        .warmup(100.0)
        .seed(23);
    let servers: Vec<_> = (0..3).map(|j| b.add_object(NodeId::new(2 - j))).collect();
    for i in 0..3 {
        b.add_client(NodeId::new(i), servers.clone(), BlockParams::paper(30.0));
    }
    b.build().run().metrics.comm_time_per_call()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    group.sample_size(10);
    let topologies: [(&str, Topology); 4] = [
        ("full_mesh", Topology::FullMesh { nodes: 3 }),
        ("star", Topology::Star { nodes: 3 }),
        ("ring", Topology::Ring { nodes: 3 }),
        ("line", Topology::Line { nodes: 3 }),
    ];
    for (label, topo) in &topologies {
        let topo = topo.clone();
        group.bench_function(BenchmarkId::new("sim_point", label), |b| {
            b.iter(|| std::hint::black_box(sim_point(topo.clone())))
        });
    }

    // raw per-message sampling cost, including hop computation
    for (label, topo) in &topologies {
        let net =
            Network::new(topo.clone(), LatencyModel::Exponential { mean: 1.0 }).with_hop_scaling();
        group.bench_function(BenchmarkId::new("message_delay", label), |b| {
            let mut rng = SimRng::seed_from(1);
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..3u32 {
                    for j in 0..3u32 {
                        acc += net.message_delay(NodeId::new(i), NodeId::new(j), &mut rng);
                    }
                }
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
