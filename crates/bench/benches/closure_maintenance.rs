//! Closure maintenance: incremental union-find queries vs the BFS oracle,
//! across component shapes and attachment modes, plus the detach-triggered
//! lazy-rebuild path.
//!
//! This is the micro-level view of the dense-arena rework: `steady_query`
//! measures the allocation-free `migration_closure_into` on a clean
//! component (a pure member-cycle walk), `bfs_oracle` the from-scratch
//! traversal it replaced, and `detach_rebuild` the worst case where every
//! query is preceded by a detach that dirties the component.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oml_core::attach::{AttachmentGraph, AttachmentMode, ClosureScratch, Traversal};
use oml_core::ids::{AllianceId, ObjectId};

/// Builds one connected chain of `n` objects (worst-case closure size).
fn chain(mode: AttachmentMode, n: u32, ctx: Option<AllianceId>) -> AttachmentGraph {
    let mut g = AttachmentGraph::new(mode);
    for i in 1..n {
        let _ = g.attach(ObjectId::new(i - 1), ObjectId::new(i), ctx);
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure_maintenance");
    let modes = [
        ("unrestricted", AttachmentMode::Unrestricted, None),
        (
            "a-transitive",
            AttachmentMode::ATransitive,
            Some(AllianceId::new(1)),
        ),
    ];

    for n in [8u32, 64, 512] {
        group.throughput(Throughput::Elements(u64::from(n)));
        for &(label, mode, ctx) in &modes {
            let mut g = chain(mode, n, ctx);
            let mut scratch = ClosureScratch::new();
            group.bench_function(BenchmarkId::new(format!("steady_query/{label}"), n), |b| {
                b.iter(|| {
                    g.migration_closure_into(ObjectId::new(n / 2), ctx, &mut scratch);
                    std::hint::black_box(scratch.members().len())
                })
            });

            let g = chain(mode, n, ctx);
            group.bench_function(BenchmarkId::new(format!("bfs_oracle/{label}"), n), |b| {
                b.iter(|| {
                    std::hint::black_box(g.closure(ObjectId::new(n / 2), Traversal::AllEdges))
                })
            });
        }

        // Worst case for the incremental structure: detach an edge (dirtying
        // the whole component), re-attach it, then query — every iteration
        // pays one full lazy rebuild.
        let mut g = chain(AttachmentMode::Unrestricted, n, None);
        let mut scratch = ClosureScratch::new();
        group.bench_function(BenchmarkId::new("detach_rebuild", n), |b| {
            b.iter(|| {
                g.detach(ObjectId::new(0), ObjectId::new(1));
                let _ = g.attach(ObjectId::new(0), ObjectId::new(1), None);
                g.migration_closure_into(ObjectId::new(n / 2), None, &mut scratch);
                std::hint::black_box(scratch.members().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
