//! The §3.2 analytic model and the attachment-closure queries underlying
//! every migration decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oml_core::attach::{AttachmentGraph, AttachmentMode, Traversal};
use oml_core::cost::CostModel;
use oml_core::ids::{AllianceId, ObjectId};

fn ring_graph(n: u32, tagged: bool) -> AttachmentGraph {
    let mode = if tagged {
        AttachmentMode::ATransitive
    } else {
        AttachmentMode::Unrestricted
    };
    let mut g = AttachmentGraph::new(mode);
    for i in 0..n {
        let ctx = tagged.then(|| AllianceId::new(i % 8));
        g.attach(ObjectId::new(i), ObjectId::new((i + 1) % n), ctx)
            .expect("ring edge");
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    group.bench_function("closed_forms", |b| {
        let model = CostModel::paper();
        b.iter(|| {
            let mut acc = 0.0;
            for n in 1..128u64 {
                acc += model.placement_conflict(n) + model.conventional_conflict_worst(n);
            }
            std::hint::black_box(acc)
        })
    });

    for n in [64u32, 512, 4096] {
        let g = ring_graph(n, false);
        group.bench_function(BenchmarkId::new("unrestricted_closure", n), |b| {
            b.iter(|| std::hint::black_box(g.closure(ObjectId::new(0), Traversal::AllEdges)))
        });
        let tagged = ring_graph(n, true);
        group.bench_function(BenchmarkId::new("a_transitive_closure", n), |b| {
            b.iter(|| {
                std::hint::black_box(
                    tagged.migration_closure(ObjectId::new(0), Some(AllianceId::new(0))),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
