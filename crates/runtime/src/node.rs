//! The per-node worker: a thread owning the objects hosted at that node.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use oml_check::event::{EventKind, ReleaseCause};
use oml_core::ids::{AllianceId, BlockId, NodeId, ObjectId};
use oml_core::policy::{EndAction, EndRequest, MoveDecision, MovePolicy, MoveRequest};

use crate::cluster::Shared;
use crate::error::RuntimeError;
use crate::fault;
use crate::message::{Envelope, Message, MoveReply, MAX_HOPS};
use crate::object::MobileObject;

// How long a worker waits for a message before running its maintenance
// tick (lease sweeps) is a scheduling decision: the installed
// [`crate::schedule::ScheduleSource`] supplies it, defaulting to 25 ms.
// Reads treat expired leases as free immediately, so the tick only affects
// garbage collection, never grant/deny outcomes.

pub(crate) struct NodeWorker {
    id: NodeId,
    shared: Arc<Shared>,
    rx: Receiver<Envelope>,
    /// The incarnation this worker was spawned under; stamped on every
    /// message it sends. A worker whose node has a newer incarnation is a
    /// zombie and (when fencing is on) exits instead of acting.
    epoch: u64,
    /// Objects installed at this node.
    objects: HashMap<ObjectId, Box<dyn MobileObject>>,
    /// Messages for objects the directory says are headed here but whose
    /// `Install` has not arrived yet — the run-time blocking of calls on
    /// in-transit objects (§4.1).
    awaiting: HashMap<ObjectId, Vec<Message>>,
}

impl NodeWorker {
    pub(crate) fn new(id: NodeId, shared: Arc<Shared>, rx: Receiver<Envelope>, epoch: u64) -> Self {
        NodeWorker {
            id,
            shared,
            rx,
            epoch,
            objects: HashMap::new(),
            awaiting: HashMap::new(),
        }
    }

    pub(crate) fn run(mut self) {
        if self.is_fenced() {
            // a newer incarnation of this node exists: touch nothing
            return;
        }
        self.reclaim_stash();
        loop {
            if self.is_fenced() {
                // fenced while running (the node was declared dead behind
                // this worker's back): exit without stashing — the cluster
                // has already reinstantiated what it owned
                return;
            }
            self.shared.beat(self.id, self.epoch);
            match self.rx.recv_timeout(self.shared.schedule.tick(self.id)) {
                Ok(env) => {
                    self.note_recv(&env);
                    if self.reject_stale(&env) {
                        continue;
                    }
                    match env.msg {
                        Message::Shutdown => {
                            self.drain_for_shutdown();
                            break;
                        }
                        Message::Crash => {
                            self.stash_for_crash();
                            break;
                        }
                        // replica traffic needs the envelope's sender for the
                        // ack round-trip, so it is handled here, after the
                        // incarnation fence
                        Message::CheckpointPut { object, frame } => {
                            self.shared.apply_checkpoint_put(
                                self.id, self.epoch, object, &frame, env.from, true,
                            );
                        }
                        Message::CheckpointAck {
                            object,
                            object_epoch,
                            seq,
                            replica,
                        } => {
                            self.shared.checkpoint_ack(
                                object,
                                object_epoch,
                                seq,
                                replica,
                                self.id.as_u32(),
                            );
                        }
                        msg => self.handle(msg),
                    }
                }
                Err(RecvTimeoutError::Timeout) => self.sweep_leases(),
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    /// Whether a newer incarnation of this node has been installed (fencing
    /// on): this worker is a zombie and must not act.
    fn is_fenced(&self) -> bool {
        self.shared.fenced() && self.shared.incarnation(self.id.as_u32()) > self.epoch
    }

    /// Epoch fencing on receive: a message stamped with an incarnation older
    /// than the latest known for its sender is from a dead incarnation (a
    /// delayed duplicate, or a zombie) and is dropped. Client messages are
    /// never fenced. The `Recv` was already noted — the physical dequeue
    /// happened; the *drop* is this node's local decision.
    fn reject_stale(&self, env: &Envelope) -> bool {
        if !self.shared.fenced() || env.from == fault::CLIENT {
            return false;
        }
        if env.epoch < self.shared.incarnation(env.from) {
            self.shared
                .counters
                .fenced_stale
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.shared.trace.emit(
                self.id.as_u32(),
                EventKind::FencedStale { epoch: env.epoch },
            );
            return true;
        }
        false
    }

    /// Records the dequeue of a traced message — the receive half of the
    /// happens-before edge its `Send` event opened.
    fn note_recv(&self, env: &Envelope) {
        if env.trace_id != 0 {
            self.shared.trace.emit(
                self.id.as_u32(),
                EventKind::Recv {
                    msg_id: env.trace_id,
                },
            );
        }
    }

    /// On (re)start: adopt any objects a previous incarnation of this node
    /// stashed when it crashed. The stash guard is dropped before the
    /// directory updates so the stash lock never nests around another.
    ///
    /// With fencing active, entries whose object epoch is older than the
    /// current one are discarded instead of reclaimed: the object was
    /// reinstantiated elsewhere while this node was down, and the stashed
    /// copy belongs to a fenced incarnation.
    fn reclaim_stash(&mut self) {
        let mine: Vec<(ObjectId, Box<dyn MobileObject>, u64)> = {
            let mut stash = self.shared.stash.lock();
            let mut rest = Vec::new();
            let mut mine = Vec::new();
            for (node, object, instance, epoch) in stash.drain(..) {
                if node == self.id {
                    mine.push((object, instance, epoch));
                } else {
                    rest.push((node, object, instance, epoch));
                }
            }
            *stash = rest;
            mine
        };
        let mine: Vec<(ObjectId, Box<dyn MobileObject>, u64)> = match &self.shared.recovery {
            Some(rec) if rec.fenced => {
                // filtered under the epoch lock so a concurrent declare-dead
                // either bumped the epochs before we read them (entry
                // dropped) or runs after and reinstantiates from checkpoints
                // while we reclaim — it will abort on seeing the node alive
                let _guard = rec.epoch_lock.lock();
                let epochs = rec.object_epochs.read();
                mine.into_iter()
                    .filter(|(object, _, stashed_epoch)| {
                        *stashed_epoch >= epochs.get(object).copied().unwrap_or(0)
                    })
                    .collect()
            }
            _ => mine,
        };
        for (object, instance, _) in mine {
            self.objects.insert(object, instance);
            self.shared.directory_set(object, self.id);
            // a reclaim is a refresh of the same residency, not a second
            // replica — the object never left this node
            self.shared
                .trace
                .emit(self.id.as_u32(), EventKind::Install { object });
        }
    }

    /// Injected crash: park the hosted objects for a later restart (they
    /// survive the "machine", like disk state) and vanish without draining
    /// the queue. Parked `awaiting` messages are dropped — their reply
    /// channels disconnect and the callers see their deadlines out.
    fn stash_for_crash(&mut self) {
        // object epochs are read before the stash lock so the two Ordered
        // locks never nest
        let epochs: HashMap<ObjectId, u64> = self
            .objects
            .keys()
            .map(|&object| (object, self.shared.object_epoch(object)))
            .collect();
        // the detector learns the worker is gone before the objects land in
        // the stash; death is only declared after the suspicion window, long
        // after the join() in crash_node ordered this stashing
        self.shared.mark_crashed(self.id);
        let mut stash = self.shared.stash.lock();
        for (object, instance) in self.objects.drain() {
            let epoch = epochs.get(&object).copied().unwrap_or(0);
            stash.push((self.id, object, instance, epoch));
        }
    }

    /// Graceful shutdown: drain the queue so already-sent end-requests are
    /// processed (locks released) and still-blocked callers get an explicit
    /// `ShuttingDown` instead of a silent timeout.
    fn drain_for_shutdown(&mut self) {
        while let Ok(env) = self.rx.try_recv() {
            self.note_recv(&env);
            match env.msg {
                msg @ (Message::EndRequest { .. } | Message::Install { .. }) => self.handle(msg),
                Message::Create { reply, .. } => {
                    let _ = reply.try_send(Err(RuntimeError::ShuttingDown));
                }
                Message::Invoke { reply, .. } => {
                    let _ = reply.try_send(Err(RuntimeError::ShuttingDown));
                }
                Message::MoveRequest { reply, .. } => {
                    let _ = reply.try_send(Err(RuntimeError::ShuttingDown));
                }
                Message::CheckpointPut { object, frame } => {
                    // still apply queued replica writes (acks suppressed —
                    // the refresher is shutting down too) so the final
                    // replica stores reflect everything that was sent
                    self.shared.apply_checkpoint_put(
                        self.id,
                        self.epoch,
                        object,
                        &frame,
                        fault::CLIENT,
                        false,
                    );
                }
                Message::CheckpointAck {
                    object,
                    object_epoch,
                    seq,
                    replica,
                } => {
                    self.shared.checkpoint_ack(
                        object,
                        object_epoch,
                        seq,
                        replica,
                        self.id.as_u32(),
                    );
                }
                Message::Surrender { .. } | Message::Shutdown | Message::Crash => {}
            }
        }
        for (_, queued) in self.awaiting.drain() {
            for msg in queued {
                match msg {
                    Message::Create { reply, .. } => {
                        let _ = reply.try_send(Err(RuntimeError::ShuttingDown));
                    }
                    Message::Invoke { reply, .. } => {
                        let _ = reply.try_send(Err(RuntimeError::ShuttingDown));
                    }
                    Message::MoveRequest { reply, .. } => {
                        let _ = reply.try_send(Err(RuntimeError::ShuttingDown));
                    }
                    _ => {}
                }
            }
        }
    }

    /// Maintenance tick: release placement locks whose leases ran out. The
    /// expiry events are emitted under the policy guard — lock-state events
    /// are ordered by the policy mutex (see [`NodeWorker::emit_lock_acquired`]).
    fn sweep_leases(&mut self) {
        let now = self.shared.now_ms();
        let expired = {
            let mut policy = self.shared.policy.lock();
            let expired = policy.expire_leases(now);
            for &(object, block) in &expired {
                self.shared.trace.emit(
                    self.id.as_u32(),
                    EventKind::LockReleased {
                        object,
                        block,
                        cause: ReleaseCause::LeaseExpiry,
                    },
                );
            }
            expired
        };
        if !expired.is_empty() {
            self.shared
                .counters
                .leases_expired
                .fetch_add(expired.len() as u64, std::sync::atomic::Ordering::Relaxed);
            // a lease expiry is a consistency point: refresh the checkpoints
            // of the expired objects hosted here while their state is in hand
            if self.shared.detector_enabled() {
                for &(object, _) in &expired {
                    if let Some(instance) = self.objects.get(&object) {
                        self.shared.checkpoint_refresh(
                            object,
                            instance.type_tag(),
                            Bytes::from(instance.linearize()),
                            self.id,
                            self.epoch,
                        );
                    }
                }
            }
        }
    }

    fn handle(&mut self, msg: Message) {
        match msg {
            Message::Create {
                object,
                instance,
                reply,
            } => {
                self.objects.insert(object, instance);
                self.shared.directory_set(object, self.id);
                self.shared
                    .trace
                    .emit(self.id.as_u32(), EventKind::Install { object });
                let _ = reply.try_send(Ok(()));
                self.drain_awaiting(object);
            }
            Message::Invoke { .. } => self.handle_invoke(msg),
            Message::MoveRequest { .. } => self.handle_move(msg),
            Message::Install {
                object,
                type_tag,
                state,
                object_epoch,
                install_for,
            } => self.handle_install(object, &type_tag, &state, object_epoch, install_for),
            Message::Surrender { object, to } => {
                // Double-checked at the host: the object may have moved on.
                if self.objects.contains_key(&object) {
                    self.ship(object, to, None);
                }
            }
            Message::EndRequest { .. } => self.handle_end(msg),
            Message::CheckpointPut { .. }
            | Message::CheckpointAck { .. }
            | Message::Shutdown
            | Message::Crash => unreachable!("handled in run()"),
        }
    }

    // ------------------------------------------------------------------
    // routing
    // ------------------------------------------------------------------

    /// Routes a message for an object that is not installed here: queue it
    /// if the object is in flight towards this node, forward it to the
    /// directory location otherwise.
    ///
    /// Returns the message back if it must be failed by the caller.
    fn route_elsewhere(&mut self, object: ObjectId, msg: Message) -> Result<(), Message> {
        match self.shared.directory_get(object) {
            Some(n) if n == self.id => {
                // headed here; park until the Install arrives
                self.awaiting.entry(object).or_default().push(msg);
                Ok(())
            }
            Some(n) => {
                let hops = match &msg {
                    Message::Invoke { hops, .. }
                    | Message::MoveRequest { hops, .. }
                    | Message::EndRequest { hops, .. } => *hops,
                    _ => MAX_HOPS,
                };
                if hops == 0 {
                    return Err(msg);
                }
                let msg = decrement_hops(msg);
                self.shared
                    .counters
                    .forwards
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let _ = self.shared.send_from(Some((self.id, self.epoch)), n, msg);
                Ok(())
            }
            None => Err(msg),
        }
    }

    fn drain_awaiting(&mut self, object: ObjectId) {
        if let Some(queued) = self.awaiting.remove(&object) {
            for msg in queued {
                self.handle(msg);
            }
        }
    }

    // ------------------------------------------------------------------
    // invocations
    // ------------------------------------------------------------------

    fn handle_invoke(&mut self, msg: Message) {
        let Message::Invoke {
            object,
            method,
            payload,
            hops,
            reply,
        } = msg
        else {
            unreachable!()
        };
        if let Some(instance) = self.objects.get_mut(&object) {
            let result = instance
                .invoke(&method, &payload)
                .map(Bytes::from)
                .map_err(|message| RuntimeError::MethodFailed { object, message });
            self.shared
                .counters
                .invocations
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // activity inside a granted block keeps its placement lease alive
            let now = self.shared.now_ms();
            {
                let mut policy = self.shared.policy.lock();
                policy.renew_lease(object, now);
                if self.shared.trace.is_enabled()
                    && policy.held_locks().iter().any(|&(o, _)| o == object)
                {
                    self.shared.trace.emit(
                        self.id.as_u32(),
                        EventKind::LeaseRenewed {
                            object,
                            now_ms: now,
                        },
                    );
                }
            }
            let _ = reply.try_send(result);
            return;
        }
        let msg = Message::Invoke {
            object,
            method,
            payload,
            hops,
            reply,
        };
        if let Err(failed) = self.route_elsewhere(object, msg) {
            let Message::Invoke { reply, .. } = failed else {
                unreachable!()
            };
            let err = if self.shared.directory_get(object).is_none() {
                RuntimeError::UnknownObject(object)
            } else {
                RuntimeError::TooManyHops(object)
            };
            let _ = reply.try_send(Err(err));
        }
    }

    // ------------------------------------------------------------------
    // migration control
    // ------------------------------------------------------------------

    fn handle_move(&mut self, msg: Message) {
        let Message::MoveRequest {
            object,
            to,
            block,
            context,
            hops,
            expires,
            reply,
        } = msg
        else {
            unreachable!()
        };
        if Instant::now() >= expires {
            // The requester's deadline passed while this request sat in a
            // queue (typically across a crash/restart of this node). It has
            // timed out, dropped its reply channel and moved on; granting now
            // would take a lock no end-request will ever release and ship the
            // object concurrently with whatever the requester does next —
            // which would also make seeded fault schedules unreplayable.
            // Deny without forwarding: an abandoned request chases nothing.
            self.shared
                .counters
                .moves_denied
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.shared
                .trace
                .emit(self.id.as_u32(), EventKind::MoveDenied { object, block });
            let _ = reply.try_send(Ok(false));
            return;
        }
        if !self.objects.contains_key(&object) {
            let msg = Message::MoveRequest {
                object,
                to,
                block,
                context,
                hops,
                expires,
                reply,
            };
            if let Err(failed) = self.route_elsewhere(object, msg) {
                let Message::MoveRequest { reply, .. } = failed else {
                    unreachable!()
                };
                let err = if self.shared.directory_get(object).is_none() {
                    RuntimeError::UnknownObject(object)
                } else {
                    RuntimeError::TooManyHops(object)
                };
                let _ = reply.try_send(Err(err));
            }
            return;
        }

        let movable = self.shared.is_movable(object);
        let decision = if movable {
            self.shared.policy.lock().on_move(&MoveRequest {
                object,
                at: self.id,
                from: to,
                block,
            })
        } else {
            MoveDecision::Deny
        };

        match &decision {
            MoveDecision::Grant => {
                self.shared
                    .counters
                    .moves_granted
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.shared
                    .trace
                    .emit(self.id.as_u32(), EventKind::MoveGranted { object, block });
            }
            MoveDecision::Deny => {
                self.shared
                    .counters
                    .moves_denied
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.shared
                    .trace
                    .emit(self.id.as_u32(), EventKind::MoveDenied { object, block });
            }
        }
        match decision {
            MoveDecision::Grant if to == self.id => {
                // already local: install (lock) in place
                {
                    let mut policy = self.shared.policy.lock();
                    policy.on_installed(object, self.id, block);
                    self.emit_lock_acquired(&**policy, object, block);
                }
                let _ = reply.try_send(Ok(true));
            }
            MoveDecision::Grant => self.migrate_closure(object, to, context, Some((block, reply))),
            MoveDecision::Deny => {
                let _ = reply.try_send(Ok(false));
            }
        }
    }

    /// Emits `LockAcquired` if the policy now holds `(object, block)` — the
    /// policy decides whether an installation locks, so the trace mirrors
    /// its actual lock table. MUST be called with the policy guard held:
    /// lock-state events are ordered by the policy mutex, and emitting
    /// outside it would let a concurrent release/acquire pair reach the
    /// collector in swapped order (a false overlap for the checker).
    fn emit_lock_acquired(&self, policy: &dyn MovePolicy, object: ObjectId, block: BlockId) {
        if !self.shared.trace.is_enabled() {
            return;
        }
        if policy
            .held_locks()
            .iter()
            .any(|&(o, b)| o == object && b == block)
        {
            self.shared.trace.emit(
                self.id.as_u32(),
                EventKind::LockAcquired {
                    object,
                    block,
                    now_ms: self.shared.now_ms(),
                    ttl_ms: policy.lease_ttl_ms(),
                },
            );
        }
    }

    /// Migrates `main` and its (mode- and context-dependent) attachment
    /// closure towards `to`. Locally hosted members ship directly; members
    /// hosted elsewhere receive `Surrender` requests. The members are
    /// classified before anything moves, so the `ClosureBegin` event names
    /// exactly the set this node commits to ship.
    fn migrate_closure(
        &mut self,
        main: ObjectId,
        to: NodeId,
        context: Option<AllianceId>,
        install_for: Option<(BlockId, MoveReply)>,
    ) {
        let closure = self
            .shared
            .attachments
            .lock()
            .migration_closure(main, context);
        let mut local = Vec::new();
        let mut remote = Vec::new();
        for &member in &closure {
            if member == main {
                continue;
            }
            if !self.shared.is_movable(member) || self.shared.policy.lock().is_pinned(member) {
                continue;
            }
            if self.objects.contains_key(&member) {
                local.push(member);
            } else if let Some(host) = self.shared.directory_get(member) {
                if host != to {
                    remote.push((member, host));
                }
            }
        }
        if !(local.is_empty() && remote.is_empty()) {
            self.shared.trace.emit(
                self.id.as_u32(),
                EventKind::ClosureBegin {
                    main,
                    to,
                    members: local.clone(),
                },
            );
        }
        for &member in &local {
            self.ship(member, to, None);
        }
        for &(member, host) in &remote {
            self.shared.trace.emit(
                self.id.as_u32(),
                EventKind::SurrenderRequested { member, to },
            );
            let _ = self.shared.send_from(
                Some((self.id, self.epoch)),
                host,
                Message::Surrender { object: member, to },
            );
        }
        self.ship(main, to, install_for);
    }

    /// Linearizes a locally hosted object and sends it to `to`. The
    /// directory is updated here, atomically with the removal, so calls are
    /// routed (and parked) at the destination from this instant on.
    fn ship(&mut self, object: ObjectId, to: NodeId, install_for: Option<(BlockId, MoveReply)>) {
        let Some(instance) = self.objects.get(&object) else {
            return;
        };
        let type_tag = instance.type_tag().to_owned();
        if self.shared.registry.get(&type_tag).is_none() {
            // No delinearizer: shipping would lose the object. Refuse the
            // migration instead (the requester, if any, learns of the
            // failure).
            if let Some((_, reply)) = install_for {
                let _ = reply.try_send(Err(RuntimeError::UnknownType(type_tag)));
            }
            return;
        }
        let instance = self.objects.remove(&object).expect("checked above");
        self.shared
            .counters
            .objects_migrated
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.shared
            .trace
            .emit(self.id.as_u32(), EventKind::Ship { object, to });
        let state = Bytes::from(instance.linearize());
        let object_epoch = self.shared.object_epoch(object);
        self.shared.directory_set(object, to);
        if to == self.id {
            // degenerate self-migration: reinstall immediately
            self.handle_install(object, &type_tag, &state, object_epoch, install_for);
        } else {
            let _ = self.shared.send_from(
                Some((self.id, self.epoch)),
                to,
                Message::Install {
                    object,
                    type_tag,
                    state,
                    object_epoch,
                    install_for,
                },
            );
        }
    }

    fn handle_install(
        &mut self,
        object: ObjectId,
        type_tag: &str,
        state: &Bytes,
        object_epoch: u64,
        install_for: Option<(BlockId, MoveReply)>,
    ) {
        if self.shared.fenced() && object_epoch < self.shared.object_epoch(object) {
            // a pre-crash install queued (or delayed) behind a
            // reinstantiation: the state it carries belongs to a fenced
            // incarnation of the object. Drop it without replying — the
            // requester, if any, sees its deadline out.
            self.shared
                .counters
                .fenced_stale
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.shared.trace.emit(
                self.id.as_u32(),
                EventKind::FencedStale {
                    epoch: object_epoch,
                },
            );
            return;
        }
        let Some(delinearize) = self.shared.registry.get(type_tag) else {
            // The sender checked, but the registry is shared and mutable;
            // fail the requester rather than panic the node.
            if let Some((_, reply)) = install_for {
                let _ = reply.try_send(Err(RuntimeError::UnknownType(type_tag.to_owned())));
            }
            return;
        };
        self.objects.insert(object, delinearize(state));
        self.shared.directory_set(object, self.id);
        self.shared
            .trace
            .emit(self.id.as_u32(), EventKind::Install { object });
        // an install is a natural checkpoint: the linearized state is in hand
        self.shared
            .checkpoint_refresh(object, type_tag, state.clone(), self.id, self.epoch);
        {
            let mut policy = self.shared.policy.lock();
            policy.on_arrival(object, self.id);
            if let Some((block, _)) = &install_for {
                policy.on_installed(object, self.id, *block);
                self.emit_lock_acquired(&**policy, object, *block);
            }
        }
        if let Some((_, reply)) = install_for {
            let _ = reply.try_send(Ok(true));
        }
        self.drain_awaiting(object);
    }

    fn handle_end(&mut self, msg: Message) {
        let Message::EndRequest {
            object,
            block,
            from,
            was_granted,
            context,
            hops,
        } = msg
        else {
            unreachable!()
        };
        if !self.objects.contains_key(&object) {
            let msg = Message::EndRequest {
                object,
                block,
                from,
                was_granted,
                context,
                hops,
            };
            // ends on vanished objects are dropped (nothing to unlock —
            // the object's new host processes queued messages in order)
            let _ = self.route_elsewhere(object, msg);
            return;
        }
        // the end of a block is a consistency point: refresh the replicated
        // checkpoint before the policy possibly migrates the object away
        if self.shared.detector_enabled() {
            if let Some(instance) = self.objects.get(&object) {
                self.shared.checkpoint_refresh(
                    object,
                    instance.type_tag(),
                    Bytes::from(instance.linearize()),
                    self.id,
                    self.epoch,
                );
            }
        }
        let action = {
            let mut policy = self.shared.policy.lock();
            let held_before = self.shared.trace.is_enabled()
                && policy
                    .held_locks()
                    .iter()
                    .any(|&(o, b)| o == object && b == block);
            let action = policy.on_end(&EndRequest {
                object,
                at: self.id,
                from,
                block,
                was_granted,
            });
            if held_before
                && !policy
                    .held_locks()
                    .iter()
                    .any(|&(o, b)| o == object && b == block)
            {
                self.shared.trace.emit(
                    self.id.as_u32(),
                    EventKind::LockReleased {
                        object,
                        block,
                        cause: ReleaseCause::End,
                    },
                );
            }
            action
        };
        if let EndAction::Migrate(target) = action {
            if target != self.id {
                self.migrate_closure(object, target, context, None);
            }
        }
    }
}

fn decrement_hops(msg: Message) -> Message {
    match msg {
        Message::Invoke {
            object,
            method,
            payload,
            hops,
            reply,
        } => Message::Invoke {
            object,
            method,
            payload,
            hops: hops - 1,
            reply,
        },
        Message::MoveRequest {
            object,
            to,
            block,
            context,
            hops,
            expires,
            reply,
        } => Message::MoveRequest {
            object,
            to,
            block,
            context,
            hops: hops - 1,
            expires,
            reply,
        },
        Message::EndRequest {
            object,
            block,
            from,
            was_granted,
            context,
            hops,
        } => Message::EndRequest {
            object,
            block,
            from,
            was_granted,
            context,
            hops: hops - 1,
        },
        other => other,
    }
}
